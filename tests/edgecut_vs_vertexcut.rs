//! The paper's §II-C motivation, measured: "traditional balanced edge-cut
//! partitioning performs poorly on power-law graphs [while] power-law graphs
//! have good vertex-cuts". These tests compare the two families on the same
//! graphs.

use clugp::clugp::Clugp;
use clugp::edgecut::{
    vertex_stream_from_graph, EdgeCutQuality, Fennel, HashVertex, Ldg, VertexPartitioner,
};
use clugp::metrics::PartitionQuality;
use clugp::partitioner::Partitioner;
use clugp_graph::csr::CsrGraph;
use clugp_graph::gen::{generate_ba, BaConfig};
use clugp_graph::order::{ordered_edges, StreamOrder};
use clugp_graph::stream::InMemoryStream;
use clugp_repro::test_web_graph;

fn edgecut_fraction(g: &CsrGraph, p: &mut dyn VertexPartitioner, k: u32) -> f64 {
    let mut s = vertex_stream_from_graph(g);
    let part = p.partition(&mut s, k).unwrap();
    EdgeCutQuality::compute(g, &part).cut_fraction
}

/// On a heavy-tailed social graph, even the best streaming edge-cut
/// heuristics leave a large fraction of edges cut — the §II-C failure mode.
#[test]
fn edge_cut_struggles_on_power_law_graphs() {
    let g = generate_ba(&BaConfig {
        vertices: 10_000,
        edges_per_vertex: 8,
        seed: 42,
    });
    let k = 16;
    let ldg = edgecut_fraction(&g, &mut Ldg, k);
    let fennel = edgecut_fraction(&g, &mut Fennel::default(), k);
    // Hubs touch every partition, so a large share of edges must cross.
    assert!(
        ldg > 0.3 && fennel > 0.3,
        "expected high cut on BA graph: ldg={ldg:.2} fennel={fennel:.2}"
    );
}

/// On the same power-law graph, the vertex-cut family keeps the
/// communication proxy small: CLUGP's mirrors per edge stay well below the
/// edge-cut fraction's implied communication.
#[test]
fn vertex_cut_handles_power_law_better() {
    let g = generate_ba(&BaConfig {
        vertices: 10_000,
        edges_per_vertex: 8,
        seed: 42,
    });
    let k = 16;
    let edges = ordered_edges(&g, StreamOrder::Bfs);
    let mut stream = InMemoryStream::new(g.num_vertices(), edges.clone());
    let run = Clugp::default().partition(&mut stream, k).unwrap();
    let q = PartitionQuality::compute(&edges, &run.partitioning);
    // Communication proxies: vertex-cut syncs (RF−1)·|V| values; edge-cut
    // sends one message per cut edge. Normalize both per edge.
    let vertex_cut_cost =
        (q.replication_factor - 1.0) * g.num_vertices() as f64 / g.num_edges() as f64;
    let edge_cut_cost = edgecut_fraction(&g, &mut Ldg, k);
    assert!(
        vertex_cut_cost < edge_cut_cost,
        "vertex-cut {vertex_cut_cost:.3} should beat edge-cut {edge_cut_cost:.3} on power-law"
    );
}

/// Edge-cut heuristics do fine on locality-rich web crawls — the contrast
/// that makes §II-C about *power-law tails*, not about streaming per se.
#[test]
fn edge_cut_is_fine_on_web_crawls() {
    let (n, edges) = test_web_graph(10_000, 33);
    let g = CsrGraph::from_edges(n, &edges).unwrap();
    let ldg = edgecut_fraction(&g, &mut Ldg, 16);
    let hash = edgecut_fraction(&g, &mut HashVertex, 16);
    assert!(
        ldg < 0.7 * hash,
        "LDG {ldg:.2} should clearly beat hash {hash:.2} on a crawl"
    );
}

/// Both LDG and FENNEL respect their balance guarantees across k.
#[test]
fn edge_cut_balance_guarantees() {
    let (n, edges) = test_web_graph(5_000, 34);
    let g = CsrGraph::from_edges(n, &edges).unwrap();
    for k in [2u32, 8, 32] {
        let mut s = vertex_stream_from_graph(&g);
        let ldg = Ldg.partition(&mut s, k).unwrap();
        let ql = EdgeCutQuality::compute(&g, &ldg);
        assert!(
            ql.relative_balance <= 1.35,
            "LDG k={k}: {}",
            ql.relative_balance
        );
        let fennel = Fennel::default().partition(&mut s, k).unwrap();
        let qf = EdgeCutQuality::compute(&g, &fennel);
        assert!(
            qf.relative_balance <= 1.11,
            "FENNEL k={k}: {}",
            qf.relative_balance
        );
    }
}
