//! I/O and streaming integration: file-backed restreaming must be
//! indistinguishable (in results) from in-memory streaming, and the formats
//! must round-trip.

use clugp::clugp::Clugp;
use clugp::partitioner::Partitioner;
use clugp_graph::io::binary::{read_binary_graph, write_binary_graph, FileEdgeStream};
use clugp_graph::io::edge_list::{read_edge_list, write_edge_list};
use clugp_graph::stream::{collect_stream, InMemoryStream, TimedStream};
use clugp_repro::test_web_graph;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("clugp_io_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn file_stream_partition_equals_memory_stream_partition() {
    let (n, edges) = test_web_graph(3_000, 21);
    let path = tmp("equal.bin");
    write_binary_graph(&path, n, &edges).unwrap();

    let mut mem = InMemoryStream::new(n, edges.clone());
    let mem_run = Clugp::default().partition(&mut mem, 16).unwrap();

    let mut file = FileEdgeStream::open(&path).unwrap();
    let file_run = Clugp::default().partition(&mut file, 16).unwrap();

    assert_eq!(
        mem_run.partitioning.assignments,
        file_run.partitioning.assignments
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn binary_round_trip_at_scale() {
    let (n, edges) = test_web_graph(5_000, 22);
    let path = tmp("roundtrip.bin");
    write_binary_graph(&path, n, &edges).unwrap();
    let (n2, edges2) = read_binary_graph(&path).unwrap();
    assert_eq!(n, n2);
    assert_eq!(edges, edges2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn text_round_trip_preserves_multiset() {
    let (_, edges) = test_web_graph(500, 23);
    let path = tmp("roundtrip.txt");
    write_edge_list(&path, &edges).unwrap();
    let edges2 = read_edge_list(&path).unwrap();
    assert_eq!(edges, edges2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn timed_stream_measures_file_io() {
    let (n, edges) = test_web_graph(2_000, 24);
    let path = tmp("timed.bin");
    write_binary_graph(&path, n, &edges).unwrap();
    let file = FileEdgeStream::open(&path).unwrap();
    let mut timed = TimedStream::new(file);
    let collected = collect_stream(&mut timed);
    assert_eq!(collected, edges);
    assert!(timed.io_time().as_nanos() > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn three_pass_restreaming_reads_file_three_times() {
    let (n, edges) = test_web_graph(2_000, 25);
    let path = tmp("threepass.bin");
    write_binary_graph(&path, n, &edges).unwrap();
    // One pass of plain collection for a baseline I/O time.
    let file = FileEdgeStream::open(&path).unwrap();
    let mut once = TimedStream::new(file);
    let _ = collect_stream(&mut once);
    let one_pass = once.io_time();

    let file = FileEdgeStream::open(&path).unwrap();
    let mut timed = TimedStream::new(file);
    let _ = Clugp::default().partition(&mut timed, 8).unwrap();
    // CLUGP must have consumed the stream three times: its I/O time should
    // be well above a single pass (use 1.5x to stay robust to cache warmth).
    assert!(
        timed.io_time().as_secs_f64() > 1.5 * one_pass.as_secs_f64(),
        "3-pass io {:?} vs 1-pass {:?}",
        timed.io_time(),
        one_pass
    );
    std::fs::remove_file(&path).ok();
}
