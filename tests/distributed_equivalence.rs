//! Distributed-vs-monolith equivalence: the coordinator/worker engine must
//! produce byte-identical partitions to the monolithic partitioners — for
//! CLUGP (and ablations) plus all six vertex-cut baselines, at every worker
//! count, over either transport, at any streaming chunk size. This is the
//! correctness anchor of the AMPC engine: sharding the state tables and
//! sequencing the stream across workers is a pure refactoring of the
//! placement pipeline, never a semantic change.

use clugp::ampc::coordinator::DistAlgo;
use clugp::ampc::table::{Layout, MergeOp, StateShard};
use clugp::ampc::{run_distributed, AmpcMode, DistConfig, DistInput, TransportKind};
use clugp::baselines::{Dbh, Greedy, Grid, Hashing, Hdrf, Mint, MintConfig};
use clugp::clugp::{Clugp, ClugpConfig, ClusterAssignMode};
use clugp::partitioner::Partitioner;
use clugp_graph::stream::InMemoryStream;
use clugp_repro::test_web_graph;

/// Monolith/distributed pairs under test.
fn roster() -> Vec<(&'static str, Box<dyn Partitioner>, DistAlgo)> {
    vec![
        (
            "Hashing",
            Box::new(Hashing::default()) as Box<dyn Partitioner>,
            DistAlgo::hashing(),
        ),
        ("Grid", Box::new(Grid::default()), DistAlgo::grid()),
        ("DBH", Box::new(Dbh::default()), DistAlgo::dbh()),
        ("Greedy", Box::new(Greedy::new()), DistAlgo::greedy()),
        ("HDRF", Box::new(Hdrf::default()), DistAlgo::hdrf()),
        // Small batches so wave boundaries cross worker-range boundaries.
        (
            "Mint",
            Box::new(Mint::new(MintConfig {
                batch_size: 97,
                ..Default::default()
            })),
            DistAlgo::Mint(MintConfig {
                batch_size: 97,
                ..Default::default()
            }),
        ),
        ("CLUGP", Box::new(Clugp::default()), DistAlgo::clugp()),
        (
            "CLUGP-S",
            Box::new(Clugp::new(ClugpConfig {
                splitting: false,
                ..Default::default()
            })),
            DistAlgo::Clugp(ClugpConfig {
                splitting: false,
                ..Default::default()
            }),
        ),
        (
            "CLUGP-G",
            Box::new(Clugp::new(ClugpConfig {
                assign_mode: ClusterAssignMode::Greedy,
                ..Default::default()
            })),
            DistAlgo::Clugp(ClugpConfig {
                assign_mode: ClusterAssignMode::Greedy,
                ..Default::default()
            }),
        ),
    ]
}

fn monolith(
    p: &mut dyn Partitioner,
    n: u64,
    edges: &[clugp_graph::types::Edge],
    k: u32,
) -> (Vec<u32>, Vec<u64>, u64) {
    let mut s = InMemoryStream::new(n, edges.to_vec());
    let run = p.partition(&mut s, k).expect("monolith partition");
    (
        run.partitioning.assignments,
        run.partitioning.loads,
        run.partitioning.num_vertices,
    )
}

#[test]
fn every_algorithm_is_bit_identical_across_workers_transports_and_chunks() {
    let (n, edges) = test_web_graph(1_500, 41);
    let k = 8;
    for (name, mut p, algo) in roster() {
        let reference = monolith(p.as_mut(), n, &edges, k);
        for workers in [1u32, 2, 4] {
            for transport in [TransportKind::Channel, TransportKind::Unix] {
                for chunk_edges in [0usize, 173] {
                    let cfg = DistConfig {
                        workers,
                        transport,
                        chunk_edges,
                        ..Default::default()
                    };
                    let out = run_distributed(
                        &algo,
                        DistInput::Edges {
                            num_vertices: n,
                            edges: &edges,
                        },
                        k,
                        &cfg,
                    )
                    .unwrap_or_else(|e| {
                        panic!("{name}: {workers}w/{transport:?}/chunk {chunk_edges}: {e}")
                    });
                    assert_eq!(out.workers, workers, "{name}: wrong worker count");
                    assert_eq!(
                        (
                            out.partitioning.assignments,
                            out.partitioning.loads,
                            out.partitioning.num_vertices
                        ),
                        reference,
                        "{name}: {workers} workers / {transport:?} / chunk {chunk_edges} \
                         diverged from the monolith"
                    );
                }
            }
        }
    }
}

#[test]
fn multi_worker_runs_actually_exchange_state() {
    // Sanity that the equivalence above is not vacuous: a 4-worker CLUGP run
    // must route real state traffic through the coordinator.
    let (n, edges) = test_web_graph(1_000, 42);
    let out = run_distributed(
        &DistAlgo::clugp(),
        DistInput::Edges {
            num_vertices: n,
            edges: &edges,
        },
        8,
        &DistConfig {
            workers: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        out.net.bytes_sent > 0 && out.net.frames_sent > 0,
        "4-worker run exchanged no state: {:?}",
        out.net
    );
}

#[test]
fn pack_input_matches_monolith_on_the_same_pack_stream() {
    // Pack streams replay the canonical (src, dst) order, so the monolith
    // reference must run over the same pack stream.
    use clugp_graph::pack::{write_pack, PackOptions, PackedEdgeStream};
    let (n, edges) = test_web_graph(1_200, 43);
    let dir = std::env::temp_dir().join("clugp_dist_equiv");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dist.clugpz");
    // Small blocks so 4 workers get non-trivial block ranges.
    write_pack(
        &path,
        n,
        &edges,
        &PackOptions {
            block_bytes: 2048,
            ..Default::default()
        },
    )
    .unwrap();

    for (name, mut p, algo) in roster() {
        let mut packed = PackedEdgeStream::open(&path).unwrap();
        let run = p.partition(&mut packed, 8).expect("monolith over pack");
        for workers in [1u32, 4] {
            let out = run_distributed(
                &algo,
                DistInput::Pack(&path),
                8,
                &DistConfig {
                    workers,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{name}: {workers}w over pack: {e}"));
            assert_eq!(
                (out.partitioning.assignments, out.partitioning.loads),
                (
                    run.partitioning.assignments.clone(),
                    run.partitioning.loads.clone()
                ),
                "{name}: {workers}-worker pack run diverged from the monolith"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn pack_input_with_pipelined_decode_matches_serial_decode() {
    // The AMPC worker's pack source honors the process-wide decode
    // options: with pipeline workers enabled, every worker decodes its
    // block range ahead of its stages — and the partitions must stay
    // bit-identical to the serial-decode run.
    use clugp_graph::pack::{
        set_decode_options, write_pack, ChecksumPolicy, DecodeOptions, PackOptions,
    };
    let (n, edges) = test_web_graph(1_000, 47);
    let dir = std::env::temp_dir().join("clugp_dist_equiv_pipelined");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("piped.clugpz");
    write_pack(
        &path,
        n,
        &edges,
        &PackOptions {
            block_bytes: 1024,
            ..Default::default()
        },
    )
    .unwrap();

    for (name, _, algo) in roster() {
        let config = DistConfig {
            workers: 3,
            ..Default::default()
        };
        set_decode_options(DecodeOptions::default()); // serial reference
        let serial = run_distributed(&algo, DistInput::Pack(&path), 8, &config)
            .unwrap_or_else(|e| panic!("{name}: serial decode: {e}"));
        set_decode_options(DecodeOptions {
            threads: 2,
            prefetch: 2,
            checksums: ChecksumPolicy::Full,
        });
        let piped = run_distributed(&algo, DistInput::Pack(&path), 8, &config)
            .unwrap_or_else(|e| panic!("{name}: pipelined decode: {e}"));
        set_decode_options(DecodeOptions::default());
        assert_eq!(
            (piped.partitioning.assignments, piped.partitioning.loads),
            (serial.partitioning.assignments, serial.partitioning.loads),
            "{name}: pipelined worker decode diverged from serial"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn invalid_parameters_fail_like_the_monolith() {
    let (n, edges) = test_web_graph(200, 44);
    let input = DistInput::Edges {
        num_vertices: n,
        edges: &edges,
    };
    let cfg = DistConfig::default();
    let err = run_distributed(&DistAlgo::clugp(), input, 0, &cfg).unwrap_err();
    assert!(err.to_string().contains("k must be at least 1"), "{err}");
    let err = run_distributed(
        &DistAlgo::Clugp(ClugpConfig {
            tau: 0.5,
            ..Default::default()
        }),
        input,
        4,
        &cfg,
    )
    .unwrap_err();
    assert!(err.to_string().contains("tau"), "{err}");
    let err = run_distributed(
        &DistAlgo::Mint(MintConfig {
            batch_size: 0,
            ..Default::default()
        }),
        input,
        4,
        &cfg,
    )
    .unwrap_err();
    assert!(err.to_string().contains("batch_size"), "{err}");
    let err = run_distributed(
        &DistAlgo::clugp(),
        input,
        4,
        &DistConfig {
            workers: 0,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(err.to_string().contains("worker count"), "{err}");
}

#[test]
fn empty_stream_matches_monolith_at_any_worker_count() {
    for (name, mut p, algo) in roster() {
        let reference = monolith(p.as_mut(), 0, &[], 4);
        for workers in [1u32, 3] {
            let out = run_distributed(
                &algo,
                DistInput::Edges {
                    num_vertices: 0,
                    edges: &[],
                },
                4,
                &DistConfig {
                    workers,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{name}: empty stream, {workers} workers: {e}"));
            assert_eq!(
                (
                    out.partitioning.assignments,
                    out.partitioning.loads,
                    out.partitioning.num_vertices
                ),
                reference,
                "{name}: empty stream diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn corrupt_pack_is_a_fatal_park_error_not_a_retry() {
    // A corrupt pack block is a *deterministic* input error: the worker
    // that hits the CRC mismatch reports it, and supervision must fail the
    // run with the same kind of error the monolith parks — never burn the
    // retry budget replaying a pass that can only fail again.
    use clugp::ampc::SuperviseConfig;
    use clugp_graph::pack::{crc32, write_pack, PackOptions, PackedEdgeStream, ShardedPackReader};

    let (n, edges) = test_web_graph(900, 45);
    let dir = std::env::temp_dir().join("clugp_dist_corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt.clugpz");
    write_pack(
        &path,
        n,
        &edges,
        &PackOptions {
            block_bytes: 2048,
            ..Default::default()
        },
    )
    .unwrap();
    // Flip a payload byte of the middle block; metadata stays valid so the
    // pack opens fine and dies mid-stream, on a worker.
    let reader = ShardedPackReader::open(&path).unwrap();
    let entries = reader.index().entries().to_vec();
    drop(reader);
    assert!(entries.len() >= 3, "need a multi-block pack");
    let mid = &entries[entries.len() / 2];
    let mut data = std::fs::read(&path).unwrap();
    data[mid.byte_offset as usize] ^= 0xFF;
    assert_ne!(
        crc32(&data[mid.byte_offset as usize..][..mid.byte_len as usize]),
        mid.crc,
        "corruption must be CRC-visible"
    );
    std::fs::write(&path, &data).unwrap();

    let mut s = PackedEdgeStream::open(&path).unwrap();
    let monolith_err = Clugp::default().partition(&mut s, 8).unwrap_err();
    assert!(
        monolith_err.to_string().contains("checksum"),
        "{monolith_err}"
    );

    let cfg = DistConfig {
        workers: 2,
        supervise: SuperviseConfig {
            worker_timeout: Some(std::time::Duration::from_secs(5)),
            max_retries: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let dist_err = run_distributed(&DistAlgo::clugp(), DistInput::Pack(&path), 8, &cfg)
        .expect_err("a corrupt block must fail the distributed run");
    assert!(
        dist_err.to_string().contains("checksum"),
        "distributed run must surface the same park error as the monolith \
         ({monolith_err}), got: {dist_err}"
    );
    assert!(
        !dist_err.is_retryable(),
        "a deterministic input error must not be classified retryable: {dist_err}"
    );
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Relaxed concurrent mode: workers stream concurrently against local tables
// and reconcile at epoch barriers. The contract is weaker than sequenced —
// not bit-identity with the monolith, but (a) determinism for a fixed worker
// count, (b) exact equality for stateless placement, and (c) bounded quality
// drift with internally consistent outputs.
// ---------------------------------------------------------------------------

fn relaxed_cfg(workers: u32) -> DistConfig {
    DistConfig {
        workers,
        mode: AmpcMode::Relaxed,
        // Small chunks + short epochs force many reconciliation rounds.
        chunk_edges: 173,
        epoch_chunks: 2,
        ..Default::default()
    }
}

#[test]
fn relaxed_mode_is_deterministic_and_transport_independent() {
    // Relaxed mode trades bit-identity with the monolith for concurrency,
    // but it must stay a *function* of (algorithm, input, worker count,
    // epoch length): repeated runs and both transports yield the same bits.
    let (n, edges) = test_web_graph(1_500, 46);
    let k = 8;
    for (name, _, algo) in roster() {
        let input = DistInput::Edges {
            num_vertices: n,
            edges: &edges,
        };
        let first = run_distributed(&algo, input, k, &relaxed_cfg(4))
            .unwrap_or_else(|e| panic!("{name}: relaxed run 1: {e}"));
        let again = run_distributed(&algo, input, k, &relaxed_cfg(4))
            .unwrap_or_else(|e| panic!("{name}: relaxed run 2: {e}"));
        assert_eq!(
            (
                &first.partitioning.assignments,
                &first.partitioning.loads,
                first.partitioning.num_vertices
            ),
            (
                &again.partitioning.assignments,
                &again.partitioning.loads,
                again.partitioning.num_vertices
            ),
            "{name}: relaxed mode is nondeterministic across identical runs"
        );
        let unix = run_distributed(
            &algo,
            input,
            k,
            &DistConfig {
                transport: TransportKind::Unix,
                ..relaxed_cfg(4)
            },
        )
        .unwrap_or_else(|e| panic!("{name}: relaxed unix run: {e}"));
        assert_eq!(
            first.partitioning.assignments, unix.partitioning.assignments,
            "{name}: relaxed output depends on the transport"
        );
    }
}

#[test]
fn relaxed_hashing_is_bit_identical_to_sequenced() {
    // Stateless placement consults no shared tables, so the consistency
    // dial must not move it at all.
    let (n, edges) = test_web_graph(1_200, 48);
    let k = 8;
    let reference = monolith(&mut Hashing::default(), n, &edges, k);
    for workers in [1u32, 2, 4] {
        let out = run_distributed(
            &DistAlgo::hashing(),
            DistInput::Edges {
                num_vertices: n,
                edges: &edges,
            },
            k,
            &relaxed_cfg(workers),
        )
        .unwrap_or_else(|e| panic!("relaxed hashing, {workers} workers: {e}"));
        assert_eq!(
            (
                out.partitioning.assignments,
                out.partitioning.loads,
                out.partitioning.num_vertices
            ),
            reference,
            "relaxed hashing diverged from sequenced at {workers} workers"
        );
    }
}

#[test]
fn relaxed_mode_drift_is_bounded_and_outputs_are_consistent() {
    // Every relaxed run must still be a *valid* partition of the full edge
    // stream — every edge placed, loads exactly the assignment histogram —
    // and its replication factor must stay within 2x of the monolith's.
    use clugp::metrics::PartitionQuality;
    let (n, edges) = test_web_graph(1_500, 49);
    let k = 8;
    for (name, mut p, algo) in roster() {
        let (ref_assign, _, ref_vertices) = monolith(p.as_mut(), n, &edges, k);
        let ref_quality = PartitionQuality::compute(
            &edges,
            &clugp::partition::Partitioning {
                k,
                num_vertices: ref_vertices,
                assignments: ref_assign,
                loads: vec![0; k as usize],
            },
        );
        let out = run_distributed(
            &algo,
            DistInput::Edges {
                num_vertices: n,
                edges: &edges,
            },
            k,
            &relaxed_cfg(4),
        )
        .unwrap_or_else(|e| panic!("{name}: relaxed run: {e}"));
        let part = &out.partitioning;
        assert_eq!(
            part.assignments.len(),
            edges.len(),
            "{name}: relaxed run dropped edges"
        );
        let mut histogram = vec![0u64; k as usize];
        for &p in &part.assignments {
            assert!(p < k, "{name}: assignment {p} out of range");
            histogram[p as usize] += 1;
        }
        assert_eq!(
            part.loads, histogram,
            "{name}: relaxed loads disagree with the assignment histogram"
        );
        assert_eq!(
            part.num_vertices, ref_vertices,
            "{name}: relaxed vertex count drifted"
        );
        let quality = PartitionQuality::compute(&edges, part);
        eprintln!(
            "{name}: relaxed rf {:.3} vs sequenced rf {:.3}",
            quality.replication_factor, ref_quality.replication_factor
        );
        // Epoch-stale replica views inflate replication: workers duplicate
        // placements the sequenced run would have shared. 3x is the sanity
        // ceiling; the experiments quantify the real per-algorithm drift.
        assert!(
            quality.replication_factor <= ref_quality.replication_factor * 3.0,
            "{name}: relaxed replication factor {:.3} drifted beyond 3x the \
             sequenced {:.3}",
            quality.replication_factor,
            ref_quality.replication_factor
        );
    }
}

/// Splitmix-style generator so the permutation property test is seeded and
/// reproducible without external crates.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.0 = x;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
    }
}

#[test]
fn commutative_upsert_batch_order_cannot_change_table_state() {
    // Property: for the commutative merge ops the engine uses for
    // cross-worker accumulation (Add / Max / BitOr), the order in which
    // upsert batches land on a shard must not change the final table — so
    // any interleaving of worker state traffic yields the same scan.
    let mut rng = XorShift(0xA11CE5);
    for trial in 0..50 {
        for merge in [MergeOp::Add, MergeOp::Max, MergeOp::BitOr] {
            for layout in [Layout::Range { span: 64 }, Layout::Striped { stripe: 8 }] {
                // A batch workload of (key, row) updates over a small keyspace
                // so collisions are common.
                let batches: Vec<(Vec<u64>, Vec<u64>)> = (0..12)
                    .map(|_| {
                        let keys: Vec<u64> = (0..(1 + rng.next() % 16))
                            .map(|_| rng.next() % 256)
                            .collect();
                        let rows: Vec<u64> =
                            (0..keys.len() * 2).map(|_| rng.next() % 1024).collect();
                        (keys, rows)
                    })
                    .collect();
                let build = |order: &[usize]| {
                    let mut shard = match layout {
                        Layout::Range { .. } => StateShard::range(0, 2),
                        Layout::Striped { .. } => StateShard::striped(2),
                    };
                    for &b in order {
                        let (keys, rows) = &batches[b];
                        shard.upsert_batch(merge, keys, rows);
                    }
                    let mut out = Vec::new();
                    shard.scan(|key, row| {
                        out.push((key, row.to_vec()));
                    });
                    out
                };
                let forward: Vec<usize> = (0..batches.len()).collect();
                let reference = build(&forward);
                let mut shuffled = forward.clone();
                rng.shuffle(&mut shuffled);
                assert_eq!(
                    build(&shuffled),
                    reference,
                    "trial {trial}: {merge:?}/{layout:?}: batch order changed the table"
                );
            }
        }
    }
}
