//! Fault tolerance of the AMPC engine: scripted transport faults, barrier
//! checkpoints, and end-to-end crash recovery must never change a
//! partition. A recovered run is *bit-identical* to an undisturbed
//! monolith run; a fault the retry budget cannot absorb terminates with a
//! typed [`PartitionError::Fault`] within the deadline — no hangs, no
//! zombies. The multi-process tests drive the real `clugp-part` binary
//! with worker processes over Unix sockets, kill one mid-pass, and diff
//! the recovered TSV byte-for-byte.

use clugp::ampc::coordinator::DistAlgo;
use clugp::ampc::{
    run_distributed, AmpcMode, DistConfig, DistInput, FaultAction, FaultPlan, FaultScript,
    SuperviseConfig, TransportKind,
};
use clugp::clugp::Clugp;
use clugp::error::PartitionError;
use clugp::partitioner::Partitioner;
use clugp_graph::stream::InMemoryStream;
use clugp_graph::types::Edge;
use clugp_repro::test_web_graph;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

type Reference = (Vec<u32>, Vec<u64>, u64);

fn monolith(p: &mut dyn Partitioner, n: u64, edges: &[Edge], k: u32) -> Reference {
    let mut s = InMemoryStream::new(n, edges.to_vec());
    let run = p.partition(&mut s, k).expect("monolith partition");
    (
        run.partitioning.assignments,
        run.partitioning.loads,
        run.partitioning.num_vertices,
    )
}

/// A tight supervision policy for tests: short deadline, fast back-off.
fn supervised(timeout_ms: u64, retries: u32) -> SuperviseConfig {
    SuperviseConfig {
        worker_timeout: Some(Duration::from_millis(timeout_ms)),
        max_retries: retries,
        backoff: Duration::from_millis(10),
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("clugp_fault_tolerance")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn scripted_faults_recover_bit_identically() {
    let (n, edges) = test_web_graph(800, 51);
    let k = 8;
    let reference = monolith(&mut Clugp::default(), n, &edges, k);

    // (case, faulted worker, script, minimum recoveries). Ordinal 0 on
    // either direction is the Configure/ConfigureOk exchange; every script
    // here fires later, i.e. mid-flow, after the first barrier committed.
    let cases: Vec<(&str, u32, FaultScript, u32)> = vec![
        (
            "link severed while the coordinator sends",
            1,
            FaultScript::disconnect_at_send(3),
            1,
        ),
        (
            "link severed while the coordinator receives",
            2,
            FaultScript {
                on_recv: vec![(1, FaultAction::Disconnect)],
                on_send: Vec::new(),
            },
            1,
        ),
        (
            "inbound frame corrupted in flight",
            0,
            FaultScript {
                on_recv: vec![(1, FaultAction::CorruptFrame)],
                on_send: Vec::new(),
            },
            1,
        ),
        (
            "inbound frame swallowed (surfaces as a deadline timeout)",
            1,
            FaultScript {
                on_recv: vec![(1, FaultAction::DropFrame)],
                on_send: Vec::new(),
            },
            1,
        ),
        (
            "frame merely delayed (no recovery needed)",
            0,
            FaultScript {
                on_send: vec![(2, FaultAction::Delay(Duration::from_millis(30)))],
                on_recv: Vec::new(),
            },
            0,
        ),
    ];

    for (case, worker, script, min_recoveries) in cases {
        let mut faults = FaultPlan::none();
        faults.push(worker, 0, script);
        let cfg = DistConfig {
            workers: 3,
            supervise: supervised(600, 3),
            faults,
            ..Default::default()
        };
        let out = run_distributed(
            &DistAlgo::clugp(),
            DistInput::Edges {
                num_vertices: n,
                edges: &edges,
            },
            k,
            &cfg,
        )
        .unwrap_or_else(|e| panic!("{case}: run failed: {e}"));
        assert!(
            out.recoveries >= min_recoveries,
            "{case}: expected >= {min_recoveries} recoveries, saw {}",
            out.recoveries
        );
        if min_recoveries == 0 {
            assert_eq!(out.recoveries, 0, "{case}: spurious recovery");
        }
        assert_eq!(
            (
                out.partitioning.assignments,
                out.partitioning.loads,
                out.partitioning.num_vertices
            ),
            reference,
            "{case}: recovered run diverged from the monolith"
        );
    }
}

#[test]
fn every_incarnation_faulty_exhausts_retries_into_typed_error() {
    let (n, edges) = test_web_graph(400, 52);
    // Worker 1's link dies on every incarnation — the one it starts with
    // and both respawns — so max_retries = 2 must exhaust into a typed
    // fault, not a hang and not a panic.
    let mut faults = FaultPlan::none();
    for incarnation in 0..=2 {
        faults.push(1, incarnation, FaultScript::disconnect_at_send(1));
    }
    let cfg = DistConfig {
        workers: 3,
        supervise: supervised(500, 2),
        faults,
        ..Default::default()
    };
    let err = run_distributed(
        &DistAlgo::clugp(),
        DistInput::Edges {
            num_vertices: n,
            edges: &edges,
        },
        8,
        &cfg,
    )
    .expect_err("a permanently faulty link must fail the run");
    assert!(
        matches!(err, PartitionError::Fault { .. }),
        "retry exhaustion must surface the transport fault, got: {err}"
    );
    assert!(
        err.is_retryable(),
        "the terminal error keeps its fault type"
    );
}

#[test]
fn seeded_fault_plans_recover_or_fail_typed_never_hang() {
    // Randomized-but-deterministic single-fault plans: whatever the fault
    // is (drop, delay, corrupt, disconnect — either direction), the run
    // either recovers bit-identically or terminates with a typed error.
    // The deadline keeps "terminates" bounded; the test finishing at all
    // is the no-hang assertion.
    let (n, edges) = test_web_graph(500, 53);
    let k = 8;
    let reference = monolith(&mut Clugp::default(), n, &edges, k);
    for seed in 1..=10u64 {
        let cfg = DistConfig {
            workers: 3,
            supervise: supervised(600, 2),
            faults: FaultPlan::seeded(seed, 3),
            ..Default::default()
        };
        match run_distributed(
            &DistAlgo::clugp(),
            DistInput::Edges {
                num_vertices: n,
                edges: &edges,
            },
            k,
            &cfg,
        ) {
            Ok(out) => assert_eq!(
                (
                    out.partitioning.assignments,
                    out.partitioning.loads,
                    out.partitioning.num_vertices
                ),
                reference,
                "seed {seed}: recovered run diverged from the monolith"
            ),
            // A corrupt coordinator->worker frame is reported back by the
            // worker and stays fatal (deterministic errors are not
            // retried); anything else must be a typed transport fault.
            Err(PartitionError::Fault { .. }) | Err(PartitionError::InvalidParam(_)) => {}
            Err(other) => panic!("seed {seed}: untyped failure: {other}"),
        }
    }
}

#[test]
fn faults_recover_over_unix_sockets_too() {
    // Same engine, socket framing instead of channels: severing a link
    // mid-pass recovers bit-identically there as well.
    let (n, edges) = test_web_graph(600, 54);
    let k = 8;
    let reference = monolith(&mut Clugp::default(), n, &edges, k);
    let mut faults = FaultPlan::none();
    faults.push(0, 0, FaultScript::disconnect_at_send(2));
    let cfg = DistConfig {
        workers: 2,
        transport: TransportKind::Unix,
        supervise: supervised(600, 2),
        faults,
        ..Default::default()
    };
    let out = run_distributed(
        &DistAlgo::clugp(),
        DistInput::Edges {
            num_vertices: n,
            edges: &edges,
        },
        k,
        &cfg,
    )
    .expect("unix-transport run must recover");
    assert!(out.recoveries >= 1, "fault did not trigger a recovery");
    assert_eq!(
        (
            out.partitioning.assignments,
            out.partitioning.loads,
            out.partitioning.num_vertices
        ),
        reference,
        "unix-transport recovery diverged from the monolith"
    );
}

#[test]
fn baseline_algorithms_recover_too() {
    // The single-barrier baseline flow shares the recovery machinery.
    use clugp::baselines::Hdrf;
    let (n, edges) = test_web_graph(500, 55);
    let k = 8;
    let reference = monolith(&mut Hdrf::default(), n, &edges, k);
    let mut faults = FaultPlan::none();
    faults.push(1, 0, FaultScript::disconnect_at_send(2));
    let cfg = DistConfig {
        workers: 3,
        supervise: supervised(600, 2),
        faults,
        ..Default::default()
    };
    let out = run_distributed(
        &DistAlgo::hdrf(),
        DistInput::Edges {
            num_vertices: n,
            edges: &edges,
        },
        k,
        &cfg,
    )
    .expect("HDRF run must recover");
    assert!(out.recoveries >= 1);
    assert_eq!(
        (
            out.partitioning.assignments,
            out.partitioning.loads,
            out.partitioning.num_vertices
        ),
        reference,
        "recovered HDRF run diverged from the monolith"
    );
}

#[test]
fn relaxed_mode_recovers_to_the_undisturbed_relaxed_result() {
    // Relaxed mode is deterministic for a fixed worker count, so crash
    // recovery has a precise convergence target: the fault-free relaxed
    // run. A severed link mid-stage must replay the segment and land on
    // those exact bits — for the epoch-synchronized baseline flow and for
    // the multi-barrier CLUGP flow alike.
    let (n, edges) = test_web_graph(900, 61);
    let k = 8;
    let algos = [("HDRF", DistAlgo::hdrf()), ("CLUGP", DistAlgo::clugp())];
    for (name, algo) in algos {
        let cfg = |faults: FaultPlan| DistConfig {
            workers: 3,
            mode: AmpcMode::Relaxed,
            chunk_edges: 64,
            epoch_chunks: 2,
            supervise: supervised(600, 3),
            faults,
            ..Default::default()
        };
        let reference = run_distributed(
            &algo,
            DistInput::Edges {
                num_vertices: n,
                edges: &edges,
            },
            k,
            &cfg(FaultPlan::none()),
        )
        .unwrap_or_else(|e| panic!("{name}: fault-free relaxed run: {e}"));
        for (case, worker, script) in [
            (
                "link severed mid-send",
                1,
                FaultScript::disconnect_at_send(4),
            ),
            (
                "inbound frame swallowed",
                2,
                FaultScript {
                    on_recv: vec![(3, FaultAction::DropFrame)],
                    on_send: Vec::new(),
                },
            ),
        ] {
            let mut faults = FaultPlan::none();
            faults.push(worker, 0, script);
            let out = run_distributed(
                &algo,
                DistInput::Edges {
                    num_vertices: n,
                    edges: &edges,
                },
                k,
                &cfg(faults),
            )
            .unwrap_or_else(|e| panic!("{name}/{case}: relaxed run did not recover: {e}"));
            assert!(
                out.recoveries >= 1,
                "{name}/{case}: the scripted fault never fired"
            );
            assert_eq!(
                (
                    out.partitioning.assignments,
                    out.partitioning.loads,
                    out.partitioning.num_vertices
                ),
                (
                    reference.partitioning.assignments.clone(),
                    reference.partitioning.loads.clone(),
                    reference.partitioning.num_vertices
                ),
                "{name}/{case}: recovered relaxed run diverged from the \
                 undisturbed relaxed run"
            );
        }
    }
}

#[test]
fn checkpoints_persist_and_resume_bit_identically() {
    let (n, edges) = test_web_graph(700, 56);
    let k = 8;
    let reference = monolith(&mut Clugp::default(), n, &edges, k);
    let dir = tmp("resume");
    let input = DistInput::Edges {
        num_vertices: n,
        edges: &edges,
    };

    // A full run persists one CLUGPCK1 file per barrier (CLUGP has 3).
    let cfg = DistConfig {
        workers: 2,
        checkpoint_dir: Some(dir.clone()),
        ..Default::default()
    };
    let out = run_distributed(&DistAlgo::clugp(), input, k, &cfg).expect("checkpointed run");
    assert_eq!(
        (
            out.partitioning.assignments,
            out.partitioning.loads,
            out.partitioning.num_vertices
        ),
        reference
    );
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "clugpck"))
        .collect();
    files.sort();
    assert_eq!(files.len(), 3, "CLUGP commits 3 barriers: {files:?}");

    // Resuming replays only the last segment and lands on the same bits.
    let resume_cfg = DistConfig {
        workers: 2,
        checkpoint_dir: Some(dir.clone()),
        resume: true,
        ..Default::default()
    };
    let out = run_distributed(&DistAlgo::clugp(), input, k, &resume_cfg).expect("resumed run");
    assert_eq!(out.recoveries, 0);
    assert_eq!(
        (
            out.partitioning.assignments,
            out.partitioning.loads,
            out.partitioning.num_vertices
        ),
        reference,
        "resumed run diverged from the monolith"
    );

    // Tear the newest checkpoint (truncate mid-body) and drop a garbage
    // file with a higher sequence number: both must be skipped, the run
    // resumes from the newest *valid* barrier, still bit-identical.
    let newest = files.last().unwrap();
    let bytes = std::fs::read(newest).unwrap();
    std::fs::write(newest, &bytes[..bytes.len() / 2]).unwrap();
    std::fs::write(dir.join("ckpt-00999.clugpck"), b"not a checkpoint").unwrap();
    let out = run_distributed(&DistAlgo::clugp(), input, k, &resume_cfg)
        .expect("resume over a torn checkpoint");
    assert_eq!(
        (
            out.partitioning.assignments,
            out.partitioning.loads,
            out.partitioning.num_vertices
        ),
        reference,
        "resume after checkpoint corruption diverged"
    );

    // Resume against an empty directory degrades to a fresh run.
    let empty = tmp("resume_empty");
    let cfg = DistConfig {
        workers: 2,
        checkpoint_dir: Some(empty),
        resume: true,
        ..Default::default()
    };
    let out = run_distributed(&DistAlgo::clugp(), input, k, &cfg).expect("fresh run under resume");
    assert_eq!(out.partitioning.assignments, reference.0);

    // Resume without a directory is a usage error, not a hang.
    let cfg = DistConfig {
        workers: 2,
        resume: true,
        ..Default::default()
    };
    let err = run_distributed(&DistAlgo::clugp(), input, k, &cfg).unwrap_err();
    assert!(
        err.to_string().contains("checkpoint directory"),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traced_faulted_run_records_recovery_events_and_stays_bit_identical() {
    // Tracing is an observer: with recording on, a faulted run still
    // recovers to the monolith's exact bits, and the merged trace carries
    // the recovery story — retry/respawn instants, timed checkpoint
    // restore — in a Chrome trace that passes the JSON validator.
    let (n, edges) = test_web_graph(600, 62);
    let k = 8;
    let reference = monolith(&mut Clugp::default(), n, &edges, k);
    let dir = tmp("traced_fault");
    let mut faults = FaultPlan::none();
    faults.push(1, 0, FaultScript::disconnect_at_send(3));
    let cfg = DistConfig {
        workers: 2,
        supervise: supervised(600, 2),
        faults,
        checkpoint_dir: Some(dir.clone()),
        trace: true,
        ..Default::default()
    };
    let out = run_distributed(
        &DistAlgo::clugp(),
        DistInput::Edges {
            num_vertices: n,
            edges: &edges,
        },
        k,
        &cfg,
    )
    .expect("traced faulted run must recover");
    assert!(out.recoveries >= 1, "the scripted fault never fired");
    assert_eq!(
        (
            out.partitioning.assignments,
            out.partitioning.loads,
            out.partitioning.num_vertices
        ),
        reference,
        "traced recovery diverged from the monolith"
    );

    let trace = &out.trace;
    assert!(
        trace.count("retry") >= 1,
        "recovery must leave a retry instant in the coordinator lane"
    );
    assert!(
        trace.count("respawn") >= 1,
        "worker respawn must be recorded"
    );
    assert!(
        trace.count("checkpoint:restore") >= 1,
        "recovery from a persisted barrier must record a restore span"
    );
    assert!(
        trace.count("checkpoint:write") >= 1,
        "barrier commits must record write spans"
    );
    assert!(
        out.ckpt_writes >= 1 && out.ckpt_restores >= 1,
        "checkpoint timings must be accounted: writes={} restores={}",
        out.ckpt_writes,
        out.ckpt_restores
    );
    // Worker-lane events survive the respawn: at least one stage span from
    // some worker incarnation must have been shipped and absorbed.
    assert!(
        trace.count("stage:pass1") + trace.count("stage:baseline") >= 1,
        "no worker stage spans were absorbed"
    );

    let json = clugp::obs::export::chrome_trace(trace, out.workers, None);
    clugp::obs::json::validate(&json)
        .unwrap_or_else(|e| panic!("fault-run trace is not valid JSON: {e}"));
    for needle in ["\"retry\"", "\"respawn\"", "\"checkpoint:restore\""] {
        assert!(json.contains(needle), "exported trace missing {needle}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_recovery_works_with_a_checkpoint_directory() {
    // Supervision and on-disk checkpoints compose: a mid-run fault with a
    // checkpoint directory configured recovers from the persisted barrier.
    let (n, edges) = test_web_graph(600, 57);
    let k = 8;
    let reference = monolith(&mut Clugp::default(), n, &edges, k);
    let dir = tmp("crash_ckpt");
    let mut faults = FaultPlan::none();
    faults.push(1, 0, FaultScript::disconnect_at_send(3));
    let cfg = DistConfig {
        workers: 2,
        supervise: supervised(600, 2),
        faults,
        checkpoint_dir: Some(dir.clone()),
        ..Default::default()
    };
    let out = run_distributed(
        &DistAlgo::clugp(),
        DistInput::Edges {
            num_vertices: n,
            edges: &edges,
        },
        k,
        &cfg,
    )
    .expect("checkpointed run must recover");
    assert!(out.recoveries >= 1);
    assert_eq!(
        (
            out.partitioning.assignments,
            out.partitioning.loads,
            out.partitioning.num_vertices
        ),
        reference,
        "checkpoint-backed recovery diverged from the monolith"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Multi-process tests: the real `clugp-part` binary, worker processes over
// Unix sockets. Located relative to the test binary; when only this test
// target was built (`cargo test --test fault_tolerance` before any build of
// the bins) the tests skip with a note instead of failing.
// ---------------------------------------------------------------------------

fn clugp_part_exe() -> Option<PathBuf> {
    let mut dir = std::env::current_exe().ok()?;
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let exe = dir.join(format!("clugp-part{}", std::env::consts::EXE_SUFFIX));
    exe.exists().then_some(exe)
}

fn write_edge_fixture(dir: &std::path::Path, vertices: u64, seed: u64) -> PathBuf {
    let (_, edges) = test_web_graph(vertices, seed);
    let mut text = String::with_capacity(edges.len() * 12);
    for e in &edges {
        text.push_str(&format!("{} {}\n", e.src, e.dst));
    }
    let path = dir.join("graph.txt");
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn killed_unix_worker_process_recovers_bit_identically() {
    let Some(exe) = clugp_part_exe() else {
        eprintln!("skipping: clugp-part binary not built");
        return;
    };
    let dir = tmp("sigkill");
    let graph = write_edge_fixture(&dir, 1_200, 58);
    let ref_tsv = dir.join("ref.tsv");
    let kill_tsv = dir.join("kill.tsv");
    let common = |out: &PathBuf| {
        vec![
            graph.to_string_lossy().into_owned(),
            "--k".into(),
            "8".into(),
            "--order".into(),
            "asis".into(),
            // Small chunks => many state-exchange rounds, so the kill
            // ordinal below lands mid-pass.
            "--chunk-size".into(),
            "64".into(),
            "--output".into(),
            out.to_string_lossy().into_owned(),
        ]
    };

    // Monolithic reference.
    let status = Command::new(&exe)
        .args(common(&ref_tsv))
        .output()
        .expect("spawn clugp-part");
    assert!(
        status.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );

    // 4 worker processes; worker 1 is armed to die abruptly (SIGABRT, no
    // goodbye frame — indistinguishable from SIGKILL on the link) after
    // its 40th received frame, deterministically mid-pass.
    let out = Command::new(&exe)
        .args(common(&kill_tsv))
        .args(["--workers", "4", "--transport", "unix"])
        .args(["--socket-dir", &dir.join("socks").to_string_lossy()])
        .env("CLUGP_AMPC_KILL_AT", "1:40")
        .output()
        .expect("spawn clugp-part");
    assert!(
        out.status.success(),
        "killed-worker run did not recover:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let recoveries: u32 = stdout
        .lines()
        .find_map(|l| {
            l.strip_prefix("recoveries")?
                .trim_start_matches(['=', ' '])
                .trim()
                .parse()
                .ok()
        })
        .unwrap_or_else(|| panic!("no recoveries line in:\n{stdout}"));
    assert!(recoveries >= 1, "the armed kill never fired:\n{stdout}");

    let reference = std::fs::read(&ref_tsv).expect("reference TSV");
    let recovered = std::fs::read(&kill_tsv).expect("recovered TSV");
    assert_eq!(
        reference, recovered,
        "recovered multi-process run is not byte-identical to the monolith"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_spawn_failure_exits_nonzero_naming_the_worker() {
    let Some(exe) = clugp_part_exe() else {
        eprintln!("skipping: clugp-part binary not built");
        return;
    };
    let dir = tmp("spawnfail");
    let graph = write_edge_fixture(&dir, 200, 59);
    let out = Command::new(&exe)
        .arg(&graph)
        .args(["--k", "4", "--workers", "2", "--transport", "unix"])
        .args(["--socket-dir", &dir.join("socks").to_string_lossy()])
        .env("CLUGP_AMPC_WORKER_EXE", "/nonexistent/clugp-ampc-worker")
        .output()
        .expect("spawn clugp-part");
    assert!(
        !out.status.success(),
        "run must fail when workers cannot spawn"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("worker 0"),
        "stderr must name the worker that failed to spawn:\n{stderr}"
    );
    assert!(
        stderr.contains("/nonexistent/clugp-ampc-worker"),
        "stderr must name the cause:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_checkpoint_dir_and_resume_roundtrip() {
    let Some(exe) = clugp_part_exe() else {
        eprintln!("skipping: clugp-part binary not built");
        return;
    };
    let dir = tmp("cli_resume");
    let graph = write_edge_fixture(&dir, 600, 60);
    let ckpt = dir.join("ckpts");
    let first = dir.join("first.tsv");
    let second = dir.join("second.tsv");
    let run = |output: &PathBuf, resume: bool| {
        let mut cmd = Command::new(&exe);
        cmd.arg(&graph)
            .args(["--k", "8", "--workers", "2", "--order", "asis"])
            .args(["--checkpoint-dir", &ckpt.to_string_lossy()])
            .args(["--output", &output.to_string_lossy()]);
        if resume {
            cmd.arg("--resume");
        }
        let out = cmd.output().expect("spawn clugp-part");
        assert!(
            out.status.success(),
            "run failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    run(&first, false);
    let ckpts = std::fs::read_dir(&ckpt)
        .expect("checkpoint dir exists")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "clugpck")
        })
        .count();
    assert!(ckpts >= 1, "no checkpoint files were persisted");
    run(&second, true);
    assert_eq!(
        std::fs::read(&first).unwrap(),
        std::fs::read(&second).unwrap(),
        "resumed CLI run diverged from the fresh run"
    );
    std::fs::remove_dir_all(&dir).ok();
}
