//! Property-based tests (proptest) over the core invariants: arbitrary edge
//! multisets through every layer of the stack.

use clugp::baselines::{Dbh, Greedy, Hashing, Hdrf, Mint};
use clugp::clugp::{solve_game, stream_clustering, Clugp, ClugpConfig, ClusterGraph};
use clugp::metrics::PartitionQuality;
use clugp::partitioner::Partitioner;
use clugp_graph::csr::CsrGraph;
use clugp_graph::idmap::{IdMap, RawInMemoryStream, RemappedStream};
use clugp_graph::order::{bfs_edge_order, bfs_ranks};
use clugp_graph::sampling::compact;
use clugp_graph::stream::{EdgeStream, InMemoryStream, RestreamableStream};
use clugp_graph::types::{Edge, RawEdge};
use proptest::prelude::*;

/// Arbitrary small edge lists over up to 64 vertices (self-loops and
/// duplicates included on purpose).
fn arb_edges() -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0u32..64, 0u32..64), 1..200)
        .prop_map(|pairs| pairs.into_iter().map(|(a, b)| Edge::new(a, b)).collect())
}

/// Arbitrary raw edge lists over sparse 64-bit external ids: a small pool of
/// huge ids (so edges share endpoints, exercising the interning fast path)
/// mixed with fully random ids.
fn arb_raw_edges() -> impl Strategy<Value = Vec<RawEdge>> {
    prop::collection::vec((0u64..40, 0u64..u64::MAX), 1..200).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(pool, wild)| {
                // Endpoint 1 from a pool of 40 scrambled huge ids; endpoint 2
                // anywhere in u64.
                RawEdge::new(clugp_graph::idmap::scramble_id(pool), wild)
            })
            .collect()
    })
}

/// Edge lists whose ids hug `u32::MAX` (mixed with small ids), including
/// empty lists: the extreme-gap regime of the pack format's varint coding.
fn arb_extreme_edges() -> impl Strategy<Value = Vec<Edge>> {
    // Draw from 0..16 and fold the top half onto u32::MAX-adjacent ids, so
    // every list mixes tiny ids with ids at the very top of the range.
    let fold = |v: u32| if v < 8 { v } else { u32::MAX - (v - 8) };
    prop::collection::vec((0u32..16, 0u32..16), 0..60).prop_map(move |pairs| {
        pairs
            .into_iter()
            .map(|(a, b)| Edge::new(fold(a), fold(b)))
            .collect()
    })
}

/// Packs `edges` under a 1-edge-per-block and a multi-edge-block regime,
/// then decodes every raw block twice — batched production decoder vs the
/// scalar reference — and asserts record-for-record equality.
fn assert_decoders_agree(edges: &[Edge], tag: &str) {
    use clugp_graph::pack::{write_pack, BlockDecoder, PackOptions, ShardedPackReader};
    let dir = std::env::temp_dir().join("clugp_prop_decoder");
    std::fs::create_dir_all(&dir).unwrap();
    let decoder = BlockDecoder;
    for block_bytes in [1usize, 48] {
        let path = dir.join(format!("{tag}{}_{block_bytes}.clugpz", edges.len()));
        write_pack(
            &path,
            0,
            edges,
            &PackOptions {
                block_bytes,
                ..Default::default()
            },
        )
        .unwrap();
        let reader = ShardedPackReader::open(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        let (mut fast, mut slow) = (Vec::new(), Vec::new());
        for entry in reader.index().entries() {
            let start = entry.byte_offset as usize;
            let payload = &data[start..start + entry.byte_len as usize];
            decoder.decode(payload, entry, &mut fast).unwrap();
            decoder.decode_scalar(payload, entry, &mut slow).unwrap();
            assert_eq!(fast, slow, "decoders diverged (block_bytes={block_bytes})");
        }
        std::fs::remove_file(&path).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every partitioner assigns every edge exactly once with in-range ids.
    #[test]
    fn partitioners_assign_all_edges(edges in arb_edges(), k in 1u32..12) {
        let mut stream = InMemoryStream::from_edges(edges.clone());
        let mut algos: Vec<Box<dyn Partitioner>> = vec![
            Box::new(Hashing::default()),
            Box::new(Dbh::default()),
            Box::new(Greedy::new()),
            Box::new(Hdrf::default()),
            Box::new(Mint::default()),
            Box::new(Clugp::default()),
        ];
        for algo in algos.iter_mut() {
            let run = algo.partition(&mut stream, k).unwrap();
            prop_assert_eq!(run.partitioning.assignments.len(), edges.len());
            prop_assert!(run.partitioning.validate().is_ok());
        }
    }

    /// RF bounds: 1 ≤ RF ≤ min(k, max |P(v)| possible).
    #[test]
    fn replication_factor_in_range(edges in arb_edges(), k in 1u32..12) {
        let mut stream = InMemoryStream::from_edges(edges.clone());
        let run = Clugp::default().partition(&mut stream, k).unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        prop_assert!(q.replication_factor >= 1.0 - 1e-12);
        prop_assert!(q.replication_factor <= f64::from(k) + 1e-12);
    }

    /// CLUGP's balance cap holds for arbitrary inputs.
    #[test]
    fn clugp_cap_holds(edges in arb_edges(), k in 1u32..12) {
        let mut stream = InMemoryStream::from_edges(edges.clone());
        let run = Clugp::default().partition(&mut stream, k).unwrap();
        let lmax = (edges.len() as f64 / f64::from(k)).ceil() as u64;
        prop_assert!(run.partitioning.loads.iter().all(|&l| l <= lmax));
    }

    /// Clustering invariant: tracked cluster volumes equal the sum of member
    /// degrees, and every touched vertex has a dense cluster id.
    #[test]
    fn clustering_volume_invariant(edges in arb_edges(), vmax in 2u64..64) {
        let mut stream = InMemoryStream::from_edges(edges.clone());
        let r = stream_clustering(&mut stream, vmax, true).unwrap();
        let mut recomputed = vec![0u64; r.num_clusters as usize];
        for (v, &c) in r.cluster_of.as_slice().iter().enumerate() {
            if c != u32::MAX {
                recomputed[c as usize] += u64::from(r.degree[v as u32]);
            }
        }
        prop_assert_eq!(recomputed, r.volumes.clone());
        // Degrees double-count each edge.
        let total: u64 = r.degree.iter().map(|&d| u64::from(d)).sum();
        prop_assert_eq!(total, 2 * edges.len() as u64);
    }

    /// Cluster graph conservation: intra + inter = |E| for any input.
    #[test]
    fn cluster_graph_conserves_edges(edges in arb_edges(), vmax in 2u64..64) {
        let mut stream = InMemoryStream::from_edges(edges.clone());
        let clustering = stream_clustering(&mut stream, vmax, true).unwrap();
        stream.reset().unwrap();
        let cg = ClusterGraph::build(&mut stream, &clustering);
        prop_assert_eq!(cg.total_intra() + cg.total_inter_edges(), edges.len() as u64);
        prop_assert_eq!(cg.total_size(), 2 * edges.len() as u64);
    }

    /// The game never increases the exact potential relative to its random
    /// initial profile (single batch, full visibility).
    #[test]
    fn game_potential_never_increases(edges in arb_edges(), k in 2u32..8) {
        let mut stream = InMemoryStream::from_edges(edges.clone());
        let clustering = stream_clustering(&mut stream, 16, true).unwrap();
        stream.reset().unwrap();
        let cg = ClusterGraph::build(&mut stream, &clustering);
        let cfg = ClugpConfig { batch_size: 0, threads: 1, ..Default::default() };
        let outcome = solve_game(&cg, k, &cfg).unwrap();
        prop_assert!(outcome.final_potential <= outcome.initial_potential + 1e-6);
    }

    /// Id-map round trip: external → internal → external is the identity on
    /// every interned id, internal ids are dense first-appearance order, and
    /// distinct externals get distinct internals (bijectivity).
    #[test]
    fn idmap_round_trip_is_bijective(raw in arb_raw_edges()) {
        let mut map = IdMap::remap();
        let mut firsts: Vec<u64> = Vec::new();
        for e in &raw {
            for ext in [e.src, e.dst] {
                let before = map.len();
                let internal = map.intern(ext).unwrap();
                if !firsts.contains(&ext) {
                    // New id: interned densely in appearance order.
                    prop_assert_eq!(u64::from(internal), before);
                    firsts.push(ext);
                } else {
                    prop_assert_eq!(map.len(), before);
                }
                prop_assert_eq!(map.external_of(internal), ext);
                prop_assert_eq!(map.resolve(ext), Some(internal));
            }
        }
        prop_assert_eq!(map.len() as usize, firsts.len());
    }

    /// Partitioning sparse external ids through the remap layer equals
    /// partitioning the pre-relabeled dense graph bit-for-bit, and the
    /// remapped stream restreams identically (CLUGP's three passes).
    #[test]
    fn remapped_partitions_equal_dense_relabeled_partitions(raw in arb_raw_edges(), k in 1u32..8) {
        // Dense reference: intern in stream order = first-appearance relabel.
        let mut map = IdMap::remap();
        let dense: Vec<Edge> = raw
            .iter()
            .map(|e| Edge::new(map.intern(e.src).unwrap(), map.intern(e.dst).unwrap()))
            .collect();
        let mut dense_stream = InMemoryStream::new(map.len(), dense);
        let mut sparse_stream = RemappedStream::remap(RawInMemoryStream::new(raw)).unwrap();
        prop_assert_eq!(sparse_stream.num_vertices_hint(), Some(map.len()));
        let mut algos: Vec<Box<dyn Partitioner>> = vec![
            Box::new(Hashing::default()),
            Box::new(Hdrf::default()),
            Box::new(Clugp::default()),
        ];
        for algo in algos.iter_mut() {
            let a = algo.partition(&mut sparse_stream, k).unwrap();
            let b = algo.partition(&mut dense_stream, k).unwrap();
            prop_assert_eq!(
                a.partitioning.assignments,
                b.partitioning.assignments
            );
            prop_assert_eq!(a.partitioning.loads, b.partitioning.loads);
        }
    }

    /// BFS stream order is a permutation of the edge multiset, and BFS ranks
    /// are a bijection.
    #[test]
    fn bfs_order_is_permutation(edges in arb_edges()) {
        let g = CsrGraph::from_edges_auto(&edges);
        let mut bfs = bfs_edge_order(&g);
        let mut orig = g.edge_vec();
        bfs.sort();
        orig.sort();
        prop_assert_eq!(bfs, orig);
        let ranks = bfs_ranks(&g);
        let mut seen = vec![false; ranks.len()];
        for &r in &ranks {
            prop_assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
    }

    /// CSR round-trips arbitrary edge lists (as multisets grouped by
    /// source).
    #[test]
    fn csr_round_trip(edges in arb_edges()) {
        let g = CsrGraph::from_edges_auto(&edges);
        prop_assert_eq!(g.num_edges(), edges.len() as u64);
        let mut out = g.edge_vec();
        let mut inp = edges.clone();
        out.sort();
        inp.sort();
        prop_assert_eq!(out, inp);
    }

    /// Compaction preserves edge count and produces dense ids.
    #[test]
    fn compaction_is_dense(edges in arb_edges()) {
        let g = compact(&edges);
        prop_assert_eq!(g.num_edges(), edges.len() as u64);
        // All vertices touched: no isolated vertex can exist after compact.
        let degrees = g.total_degrees();
        prop_assert!(degrees.iter().all(|&d| d > 0));
    }

    /// Pack round trip: for arbitrary edge multisets (self-loops and
    /// duplicates included) and every block-size regime — ~1 edge per
    /// block, a few edges per block, and the default — `pack →
    /// PackedEdgeStream → edges` yields exactly the canonical (src, dst)
    /// ordering of the input, restreams identically, and verifies.
    #[test]
    fn pack_round_trip_across_block_sizes(edges in arb_edges()) {
        use clugp_graph::pack::{
            canonical_order, verify_pack, write_pack, PackOptions, PackedEdgeStream,
            DEFAULT_BLOCK_BYTES,
        };
        use clugp_graph::stream::collect_stream;
        let want = canonical_order(&edges);
        let dir = std::env::temp_dir().join("clugp_prop_pack");
        std::fs::create_dir_all(&dir).unwrap();
        for block_bytes in [1usize, 24, DEFAULT_BLOCK_BYTES] {
            let path = dir.join(format!("g{}_{block_bytes}.clugpz", edges.len()));
            let stats = write_pack(&path, 64, &edges, &PackOptions {
                block_bytes,
                ..Default::default()
            }).unwrap();
            prop_assert_eq!(stats.num_edges, edges.len() as u64);
            let mut s = PackedEdgeStream::open(&path).unwrap();
            prop_assert_eq!(s.len_hint(), Some(edges.len() as u64));
            prop_assert_eq!(s.num_vertices_hint(), Some(64));
            let first = collect_stream(&mut s);
            prop_assert_eq!(&first, &want);
            s.reset().unwrap();
            prop_assert_eq!(&collect_stream(&mut s), &want);
            prop_assert_eq!(verify_pack(&path).unwrap(), edges.len() as u64);
            std::fs::remove_file(&path).ok();
        }
    }

    /// Pack round trip at the hostile end of the id space: ids adjacent to
    /// `u32::MAX` (the varint wide-gap regime) survive every block size.
    #[test]
    fn pack_round_trip_near_u32_max(edges in arb_extreme_edges()) {
        use clugp_graph::pack::{canonical_order, write_pack, PackOptions, PackedEdgeStream};
        use clugp_graph::stream::collect_stream;
        let want = canonical_order(&edges);
        let dir = std::env::temp_dir().join("clugp_prop_pack_extreme");
        std::fs::create_dir_all(&dir).unwrap();
        for block_bytes in [1usize, 64] {
            let path = dir.join(format!("x{}_{block_bytes}.clugpz", edges.len()));
            write_pack(&path, 0, &edges, &PackOptions {
                block_bytes,
                ..Default::default()
            }).unwrap();
            let mut s = PackedEdgeStream::open(&path).unwrap();
            prop_assert_eq!(&collect_stream(&mut s), &want);
            std::fs::remove_file(&path).ok();
        }
    }

    /// The batched production block decoder is record-for-record identical
    /// to the scalar reference decoder on every block a real pack produces,
    /// across the 1-edge-per-block and multi-edge-block regimes.
    #[test]
    fn batched_block_decoder_matches_scalar(edges in arb_edges()) {
        assert_decoders_agree(&edges, "a");
    }

    /// Same equivalence at the hostile end of the id space: ids adjacent
    /// to `u32::MAX` exercise the widest varint gaps in both decoders.
    #[test]
    fn batched_block_decoder_matches_scalar_near_u32_max(edges in arb_extreme_edges()) {
        assert_decoders_agree(&edges, "x");
    }

    /// The external-sort spill path produces byte-identical packs to the
    /// in-memory path for any input order.
    #[test]
    fn pack_spill_path_equals_in_memory_path(edges in arb_edges()) {
        use clugp_graph::pack::{write_pack, PackOptions};
        let dir = std::env::temp_dir().join("clugp_prop_pack_spill");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join(format!("mem{}.clugpz", edges.len()));
        let b = dir.join(format!("spill{}.clugpz", edges.len()));
        write_pack(&a, 64, &edges, &PackOptions::default()).unwrap();
        write_pack(&b, 64, &edges, &PackOptions {
            spill_edges: 3,
            ..Default::default()
        }).unwrap();
        let fa = std::fs::read(&a).unwrap();
        let fb = std::fs::read(&b).unwrap();
        prop_assert_eq!(fa, fb);
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    /// Binary I/O round-trips arbitrary graphs.
    #[test]
    fn binary_io_round_trip(edges in arb_edges()) {
        use clugp_graph::io::binary::{read_binary_graph, write_binary_graph};
        let dir = std::env::temp_dir().join("clugp_prop_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("g{}.bin", edges.len()));
        write_binary_graph(&path, 64, &edges).unwrap();
        let (n, back) = read_binary_graph(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(n, 64);
        prop_assert_eq!(back, edges);
    }

    /// Engine PageRank conservation-ish property: all ranks ≥ the base
    /// (1 − d) and finite, regardless of partitioning.
    #[test]
    fn engine_pagerank_sane(edges in arb_edges(), k in 1u32..6) {
        use clugp_engine::apps::PageRank;
        use clugp_engine::{DistributedGraph, Engine};
        let mut stream = InMemoryStream::from_edges(edges.clone());
        let run = Hashing::default().partition(&mut stream, k).unwrap();
        let placed = DistributedGraph::place(&edges, &run.partitioning);
        let (ranks, _) = Engine::new(&placed).run(&PageRank::default());
        for r in ranks {
            prop_assert!(r.is_finite());
            prop_assert!(r >= 0.15 - 1e-12);
        }
    }

    /// Grid's replication bound `|P(v)| ≤ 2⌈√k⌉ − 1` holds for arbitrary
    /// inputs.
    #[test]
    fn grid_replication_bound(edges in arb_edges(), k in 1u32..20) {
        use clugp::baselines::Grid;
        let mut stream = InMemoryStream::from_edges(edges.clone());
        let run = Grid::default().partition(&mut stream, k).unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        let r = (f64::from(k)).sqrt().ceil();
        prop_assert!(q.replication_factor <= 2.0 * r - 1.0 + 1e-9);
    }

    /// Edge-cut partitioners assign every streamed vertex and the cut
    /// fraction is a valid probability.
    #[test]
    fn edgecut_assigns_everything(edges in arb_edges(), k in 1u32..8) {
        use clugp::edgecut::{vertex_stream_from_graph, EdgeCutQuality, Fennel, Ldg, VertexPartitioner};
        let g = CsrGraph::from_edges_auto(&edges);
        let mut s = vertex_stream_from_graph(&g);
        for p in [&mut Ldg as &mut dyn VertexPartitioner, &mut Fennel::default()] {
            let part = p.partition(&mut s, k).unwrap();
            prop_assert!(part.assignment.iter().all(|&a| a < k), "{}", p.name());
            let q = EdgeCutQuality::compute(&g, &part);
            prop_assert!((0.0..=1.0).contains(&q.cut_fraction));
        }
    }

    /// Partitioning snapshots round-trip through the binary format.
    #[test]
    fn partitioning_snapshot_round_trip(edges in arb_edges(), k in 1u32..8) {
        use clugp::partition_io::{read_partitioning, write_partitioning};
        let mut stream = InMemoryStream::from_edges(edges.clone());
        let run = Hashing::default().partition(&mut stream, k).unwrap();
        let dir = std::env::temp_dir().join("clugp_prop_part_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("p{}_{}.part", edges.len(), k));
        write_partitioning(&path, &run.partitioning).unwrap();
        let back = read_partitioning(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.assignments, run.partitioning.assignments);
        prop_assert_eq!(back.loads, run.partitioning.loads);
    }

    /// METIS write/read round-trips the undirected simple graph underlying
    /// arbitrary edge lists.
    #[test]
    fn metis_round_trip(edges in arb_edges()) {
        use clugp_graph::io::metis::{read_metis, write_metis};
        let g = CsrGraph::from_edges_auto(&edges);
        let dir = std::env::temp_dir().join("clugp_prop_metis");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("g{}.graph", edges.len()));
        write_metis(&path, &g).unwrap();
        let back = read_metis(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // The canonical undirected simple edge set must be preserved.
        let canon = |g: &CsrGraph| {
            let mut set: Vec<(u32, u32)> = g
                .edges()
                .filter(|e| !e.is_self_loop())
                .map(|e| e.canonical())
                .collect();
            set.sort_unstable();
            set.dedup();
            set
        };
        prop_assert_eq!(canon(&g), canon(&back));
    }
}
