//! Cross-thread determinism: with the vendored rayon running real worker
//! threads, every parallel consumer must produce **bit-identical** results
//! for any thread count. The guarantees under test: batch games are seeded
//! by `(seed, batch_index)` (so no dependence on scheduling), the pool's
//! `collect` preserves input order, and `ThreadPool::install` scopes the
//! ambient pool without changing semantics.
//!
//! A regression back to nondeterministic (or secretly sequential-but-
//! reordered) execution fails these tests; CI runs them on every push.

use clugp::baselines::{Mint, MintConfig};
use clugp::clugp::{solve_game, stream_clustering, Clugp, ClugpConfig, ClusterGraph, ShardedClugp};
use clugp::partitioner::Partitioner;
use clugp_graph::stream::{InMemoryStream, RestreamableStream};
use clugp_repro::test_web_graph;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn web_cluster_graph(vertices: u64, seed: u64, vmax: u64) -> ClusterGraph {
    let (n, edges) = test_web_graph(vertices, seed);
    let mut s = InMemoryStream::new(n, edges);
    let clustering = stream_clustering(&mut s, vmax, true).unwrap();
    s.reset().unwrap();
    ClusterGraph::build(&mut s, &clustering)
}

#[test]
fn solve_game_is_bit_identical_across_thread_counts() {
    let cg = web_cluster_graph(3_000, 42, 120);
    let solve = |threads: usize| {
        solve_game(
            &cg,
            16,
            &ClugpConfig {
                batch_size: 32,
                threads,
                ..Default::default()
            },
        )
        .unwrap()
        .partition_of
    };
    let baseline = solve(1);
    assert!(!baseline.is_empty());
    for threads in THREAD_COUNTS {
        assert_eq!(solve(threads), baseline, "threads={threads}");
    }
    // threads = 0 (ambient pool, machine-dependent width) must also agree.
    assert_eq!(solve(0), baseline, "threads=0 (default pool)");
}

#[test]
fn full_clugp_pipeline_is_bit_identical_across_thread_counts() {
    let (n, edges) = test_web_graph(3_000, 7);
    let mut s = InMemoryStream::new(n, edges);
    let run = |threads: usize, s: &mut InMemoryStream| {
        Clugp::new(ClugpConfig {
            batch_size: 64,
            threads,
            ..Default::default()
        })
        .partition(s, 8)
        .unwrap()
        .partitioning
        .assignments
    };
    let baseline = run(1, &mut s);
    for threads in THREAD_COUNTS {
        assert_eq!(run(threads, &mut s), baseline, "threads={threads}");
    }
}

#[test]
fn sharded_clugp_is_bit_identical_across_pool_widths() {
    // The shard fan-out (`par_chunks`) uses the ambient pool; scope it to
    // each width with `ThreadPool::install` and demand identical output.
    let (n, edges) = test_web_graph(3_000, 11);
    let mut s = InMemoryStream::new(n, edges);
    let run = |threads: usize, s: &mut InMemoryStream| {
        let mut algo = ShardedClugp::new(ClugpConfig::default(), 4);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| algo.partition(s, 8).unwrap().partitioning.assignments)
    };
    let baseline = run(1, &mut s);
    for threads in THREAD_COUNTS {
        assert_eq!(run(threads, &mut s), baseline, "pool width {threads}");
    }
}

#[test]
fn mint_is_bit_identical_across_thread_counts() {
    // Small batches force many multi-batch waves; `threads` bounds the
    // worker pool only (the wave width is a separate, fixed knob).
    let (n, edges) = test_web_graph(3_000, 23);
    let mut s = InMemoryStream::new(n, edges);
    let run = |threads: usize, s: &mut InMemoryStream| {
        Mint::new(MintConfig {
            batch_size: 101,
            threads,
            ..Default::default()
        })
        .partition(s, 8)
        .unwrap()
        .partitioning
        .assignments
    };
    let baseline = run(1, &mut s);
    for threads in THREAD_COUNTS {
        assert_eq!(run(threads, &mut s), baseline, "threads={threads}");
    }
}
