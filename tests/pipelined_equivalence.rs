//! Pipelined-vs-serial decode equivalence: the staged decode pipeline
//! (`PipelinedPackStream`) must be *bit-identical* to the serial pack
//! reader from every consumer's point of view — same edges, same chunk
//! boundaries, same partitions — at every decode-thread count, prefetch
//! depth, and source chunk granularity. Concurrency is allowed to change
//! wall-clock time and nothing else.
//!
//! Also pins the failure contract across threads: a CRC mismatch hit by a
//! decode *worker* parks on the consumer exactly like a serial mid-stream
//! error — ordered prefix delivered, early end, error reported by the next
//! `reset`.

use clugp::baselines::{Dbh, Greedy, Grid, Hashing, Hdrf, Mint, MintConfig};
use clugp::clugp::{Clugp, ClugpConfig, ClusterAssignMode};
use clugp::partitioner::Partitioner;
use clugp_graph::pack::{
    crc32, write_pack, ChecksumPolicy, DecodeOptions, PackOptions, PackedEdgeStream,
    PipelinedPackStream, ShardedPackReader,
};
use clugp_graph::stream::{collect_stream, ChunkLimited, EdgeStream, RestreamableStream};
use clugp_repro::test_web_graph;
use std::path::PathBuf;

/// CLUGP (+ablations) and every vertex-cut baseline.
fn roster() -> Vec<(&'static str, Box<dyn Partitioner>)> {
    vec![
        ("Hashing", Box::new(Hashing::default())),
        ("DBH", Box::new(Dbh::default())),
        ("Grid", Box::new(Grid::default())),
        ("Greedy", Box::new(Greedy::new())),
        ("HDRF", Box::new(Hdrf::default())),
        (
            "Mint",
            Box::new(Mint::new(MintConfig {
                batch_size: 97,
                ..Default::default()
            })),
        ),
        ("CLUGP", Box::new(Clugp::default())),
        (
            "CLUGP-S",
            Box::new(Clugp::new(ClugpConfig {
                splitting: false,
                ..Default::default()
            })),
        ),
        (
            "CLUGP-G",
            Box::new(Clugp::new(ClugpConfig {
                assign_mode: ClusterAssignMode::Greedy,
                ..Default::default()
            })),
        ),
    ]
}

fn opts(threads: usize, prefetch: usize) -> DecodeOptions {
    DecodeOptions {
        threads,
        prefetch,
        checksums: ChecksumPolicy::Full,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("clugp_pipelined_equiv");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A many-block pack of a web-like graph (small blocks keep block
/// boundaries — and therefore pipeline hand-offs — in play).
fn write_test_pack(name: &str, vertices: u64, seed: u64) -> PathBuf {
    let (n, edges) = test_web_graph(vertices, seed);
    let path = tmp(name);
    write_pack(
        &path,
        n,
        &edges,
        &PackOptions {
            block_bytes: 1024,
            ..Default::default()
        },
    )
    .unwrap();
    path
}

fn run(
    p: &mut dyn Partitioner,
    stream: &mut dyn RestreamableStream,
    k: u32,
) -> (Vec<u32>, Vec<u64>) {
    let run = p.partition(stream, k).expect("partition");
    (run.partitioning.assignments, run.partitioning.loads)
}

#[test]
fn edge_and_chunk_sequences_match_serial_at_every_thread_count() {
    let path = write_test_pack("chunks.clugpz", 1_200, 41);
    let mut serial = PackedEdgeStream::open(&path).unwrap();
    let want = collect_stream(&mut serial);
    assert!(!want.is_empty());
    for threads in [1usize, 2, 4] {
        for prefetch in [1usize, 4] {
            // Whole-stream equality, twice (reset must restart the pipeline).
            let mut s = PipelinedPackStream::open(&path, opts(threads, prefetch)).unwrap();
            assert_eq!(
                collect_stream(&mut s),
                want,
                "threads={threads} prefetch={prefetch}"
            );
            s.reset().unwrap();
            assert_eq!(collect_stream(&mut s), want, "second pass");

            // Chunk-for-chunk equality against the serial reader at odd
            // caps: boundaries are part of the bit-identity contract.
            for cap in [1usize, 7, 333] {
                let mut serial = PackedEdgeStream::open(&path).unwrap();
                let mut piped = PipelinedPackStream::open(&path, opts(threads, prefetch)).unwrap();
                let (mut a, mut b) = (Vec::new(), Vec::new());
                loop {
                    let na = serial.next_chunk(&mut a, cap);
                    let nb = piped.next_chunk(&mut b, cap);
                    assert_eq!(
                        (na, &a),
                        (nb, &b),
                        "chunk diverged: threads={threads} prefetch={prefetch} cap={cap}"
                    );
                    if na == 0 {
                        break;
                    }
                }
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_partitioner_is_bit_identical_on_the_pipelined_stream() {
    let path = write_test_pack("partition.clugpz", 1_500, 42);
    let k = 8;
    for (name, mut p) in roster() {
        let mut serial = PackedEdgeStream::open(&path).unwrap();
        let reference = run(p.as_mut(), &mut serial, k);
        for threads in [1usize, 2, 4] {
            for prefetch in [1usize, 4] {
                let mut piped = PipelinedPackStream::open(&path, opts(threads, prefetch)).unwrap();
                assert_eq!(
                    run(p.as_mut(), &mut piped, k),
                    reference,
                    "{name}: pipelined (threads={threads}, prefetch={prefetch}) \
                     diverged from serial"
                );
            }
        }
        // Source chunk granularity on top of the pipeline changes nothing.
        for limit in [1usize, 7, 4096] {
            let mut limited =
                ChunkLimited::new(PipelinedPackStream::open(&path, opts(2, 4)).unwrap(), limit);
            assert_eq!(
                run(p.as_mut(), &mut limited, k),
                reference,
                "{name}: chunk limit {limit} over the pipeline diverged"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn pipelined_shards_cover_the_pack_identically_to_serial_shards() {
    let path = write_test_pack("shards.clugpz", 1_000, 43);
    let reader = ShardedPackReader::open(&path).unwrap();
    for want in [2usize, 3] {
        for spec in reader.shards(want) {
            let mut serial = reader.open_shard(&spec).unwrap();
            let mut piped = reader.open_pipelined_shard(&spec, opts(2, 2)).unwrap();
            assert_eq!(
                collect_stream(&mut serial),
                collect_stream(&mut piped),
                "shard {spec:?} diverged"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Corrupts the payload of the middle block and returns (pack path, edges
/// of the blocks before it). Metadata stays valid, so the pack opens fine
/// and dies mid-stream — on a decode *worker* in pipelined mode.
fn corrupt_middle_block(name: &str) -> (PathBuf, usize) {
    let path = write_test_pack(name, 900, 44);
    let reader = ShardedPackReader::open(&path).unwrap();
    let entries = reader.index().entries().to_vec();
    assert!(entries.len() >= 3, "need a multi-block pack");
    let mid = &entries[entries.len() / 2];
    let mut data = std::fs::read(&path).unwrap();
    data[mid.byte_offset as usize] ^= 0xFF;
    assert_ne!(
        crc32(&data[mid.byte_offset as usize..][..mid.byte_len as usize]),
        mid.crc,
        "corruption must be CRC-visible"
    );
    std::fs::write(&path, &data).unwrap();
    (path, mid.edge_offset as usize)
}

#[test]
fn worker_thread_crc_error_parks_exactly_like_the_serial_reader() {
    let (path, good_prefix) = corrupt_middle_block("corrupt.clugpz");
    for threads in [1usize, 4] {
        let mut s = PipelinedPackStream::open(&path, opts(threads, 4)).unwrap();
        // Ordered prefix up to the damaged block, then clean early end.
        let delivered = collect_stream(&mut s);
        assert_eq!(
            delivered.len(),
            good_prefix,
            "threads={threads}: prefix must end exactly at the damaged block"
        );
        let err = s.reset().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // The error is cleared by reporting; a restream repeats the prefix.
        assert_eq!(collect_stream(&mut s).len(), good_prefix);
        assert!(s.reset().is_err(), "second pass parks the same error");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn multi_pass_partitioner_surfaces_a_worker_thread_error() {
    // CLUGP resets its stream between passes, so a parked worker-thread
    // error turns into a partition error instead of a silent truncation.
    let (path, _) = corrupt_middle_block("corrupt_clugp.clugpz");
    let mut s = PipelinedPackStream::open(&path, opts(4, 4)).unwrap();
    let err = Clugp::default().partition(&mut s, 8).unwrap_err();
    assert!(err.to_string().contains("checksum"), "{err}");
    std::fs::remove_file(&path).ok();
}
