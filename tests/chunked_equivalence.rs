//! Chunked-vs-per-edge equivalence: every partitioner must produce
//! byte-identical `PartitionRun` assignments whether its stream is drained
//! through the zero-copy slice fast path, the legacy per-edge pull path, or
//! chunk granularities of 1, 7, and 4096 edges — and the empty stream must
//! behave the same everywhere. This is the contract that lets the chunked
//! ABI claim "same partitions, fewer virtual dispatches".

use clugp::baselines::{Dbh, Greedy, Grid, Hashing, Hdrf, Mint, MintConfig};
use clugp::clugp::{Clugp, ClugpConfig, ClusterAssignMode};
use clugp::partitioner::Partitioner;
use clugp_graph::stream::{
    ChunkLimited, EdgeStream, InMemoryStream, PerEdgeStream, RestreamableStream,
};
use clugp_graph::types::Edge;
use clugp_repro::test_web_graph;

/// The roster under test: CLUGP (+ablations) and every vertex-cut baseline.
fn roster() -> Vec<(&'static str, Box<dyn Partitioner>)> {
    vec![
        ("Hashing", Box::new(Hashing::default())),
        ("DBH", Box::new(Dbh::default())),
        ("Grid", Box::new(Grid::default())),
        ("Greedy", Box::new(Greedy::new())),
        ("HDRF", Box::new(Hdrf::default())),
        // Small batches so batch boundaries interleave with chunk limits.
        (
            "Mint",
            Box::new(Mint::new(MintConfig {
                batch_size: 97,
                ..Default::default()
            })),
        ),
        ("CLUGP", Box::new(Clugp::default())),
        (
            "CLUGP-S",
            Box::new(Clugp::new(ClugpConfig {
                splitting: false,
                ..Default::default()
            })),
        ),
        (
            "CLUGP-G",
            Box::new(Clugp::new(ClugpConfig {
                assign_mode: ClusterAssignMode::Greedy,
                ..Default::default()
            })),
        ),
    ]
}

fn run(
    p: &mut dyn Partitioner,
    stream: &mut dyn RestreamableStream,
    k: u32,
) -> (Vec<u32>, Vec<u64>) {
    let run = p.partition(stream, k).expect("partition");
    (run.partitioning.assignments, run.partitioning.loads)
}

#[test]
fn per_edge_and_chunked_paths_are_bit_identical() {
    let (n, edges) = test_web_graph(2_000, 31);
    let k = 8;
    for (name, mut p) in roster() {
        // Reference: the native zero-copy slice path.
        let mut native = InMemoryStream::new(n, edges.clone());
        let reference = run(p.as_mut(), &mut native, k);
        assert_eq!(reference.0.len(), edges.len(), "{name}: wrong edge count");

        // Legacy per-edge pull path (one virtual dispatch per edge).
        let mut per_edge = PerEdgeStream::new(InMemoryStream::new(n, edges.clone()));
        assert_eq!(
            run(p.as_mut(), &mut per_edge, k),
            reference,
            "{name}: per-edge path diverged from the slice path"
        );

        // Arbitrary source chunk granularities.
        for limit in [1usize, 7, 4096] {
            let mut limited = ChunkLimited::new(InMemoryStream::new(n, edges.clone()), limit);
            assert_eq!(
                run(p.as_mut(), &mut limited, k),
                reference,
                "{name}: chunk limit {limit} changed the partition"
            );
        }
    }
}

#[test]
fn empty_stream_is_identical_on_every_path() {
    for (name, mut p) in roster() {
        let mut native = InMemoryStream::new(0, vec![]);
        let reference = run(p.as_mut(), &mut native, 4);
        assert!(
            reference.0.is_empty(),
            "{name}: empty stream assigned edges"
        );
        assert_eq!(reference.1, vec![0; 4], "{name}: empty stream has load");

        let mut per_edge = PerEdgeStream::new(InMemoryStream::new(0, vec![]));
        assert_eq!(run(p.as_mut(), &mut per_edge, 4), reference, "{name}");
        for limit in [1usize, 7, 4096] {
            let mut limited = ChunkLimited::new(InMemoryStream::new(0, vec![]), limit);
            assert_eq!(run(p.as_mut(), &mut limited, 4), reference, "{name}");
        }
    }
}

#[test]
fn mint_batch_boundaries_survive_any_chunking() {
    // Mint is the one consumer whose *semantics* depend on how many edges it
    // groups per batch: if chunk granularity leaked into batch boundaries,
    // equilibria would change. Exercise batch sizes that are coprime with
    // the chunk limits.
    let (n, edges) = test_web_graph(1_500, 32);
    for batch_size in [37usize, 64, 1000] {
        let mut reference_stream = InMemoryStream::new(n, edges.clone());
        let reference = Mint::new(MintConfig {
            batch_size,
            ..Default::default()
        })
        .partition(&mut reference_stream, 8)
        .unwrap()
        .partitioning
        .assignments;
        for limit in [1usize, 7, 4096] {
            let mut s = ChunkLimited::new(InMemoryStream::new(n, edges.clone()), limit);
            let got = Mint::new(MintConfig {
                batch_size,
                ..Default::default()
            })
            .partition(&mut s, 8)
            .unwrap()
            .partitioning
            .assignments;
            assert_eq!(
                got, reference,
                "batch_size={batch_size} limit={limit} changed Mint's equilibria"
            );
        }
    }
}

#[test]
fn packed_input_partitions_bit_identical_to_flat_binary() {
    // The storage contract of the CLUGPZ pack: for the same logical edge
    // sequence (a pack stores the canonical (src, dst) order), every
    // partitioner — CLUGP with ablations and all six baselines — must
    // produce byte-identical partitions whether it streams the flat binary
    // file or decodes the compressed pack, at any source chunk granularity.
    use clugp_graph::io::binary::{write_binary_graph, FileEdgeStream};
    use clugp_graph::pack::{canonical_order, write_pack, PackOptions, PackedEdgeStream};
    let (n, edges) = test_web_graph(1_500, 36);
    let canonical = canonical_order(&edges);
    let dir = std::env::temp_dir().join("clugp_packed_equiv");
    std::fs::create_dir_all(&dir).unwrap();
    let flat_path = dir.join("equiv.bin");
    let pack_path = dir.join("equiv.clugpz");
    write_binary_graph(&flat_path, n, &canonical).unwrap();
    // Pack from the *original* order: the writer's external sort must land
    // on the same canonical sequence. A small block size keeps many block
    // boundaries in play.
    write_pack(
        &pack_path,
        n,
        &edges,
        &PackOptions {
            block_bytes: 2048,
            ..Default::default()
        },
    )
    .unwrap();

    for (name, mut p) in roster() {
        let mut flat = FileEdgeStream::open(&flat_path).unwrap();
        let reference = run(p.as_mut(), &mut flat, 8);
        assert_eq!(reference.0.len(), edges.len(), "{name}: wrong edge count");

        let mut packed = PackedEdgeStream::open(&pack_path).unwrap();
        assert_eq!(
            run(p.as_mut(), &mut packed, 8),
            reference,
            "{name}: packed stream diverged from flat binary"
        );

        let mut per_edge = PerEdgeStream::new(PackedEdgeStream::open(&pack_path).unwrap());
        assert_eq!(
            run(p.as_mut(), &mut per_edge, 8),
            reference,
            "{name}: per-edge pull over the pack diverged"
        );

        for limit in [1usize, 7, 4096] {
            let mut limited = ChunkLimited::new(PackedEdgeStream::open(&pack_path).unwrap(), limit);
            assert_eq!(
                run(p.as_mut(), &mut limited, 8),
                reference,
                "{name}: chunk limit {limit} over the pack diverged"
            );
        }
    }
    std::fs::remove_file(&flat_path).ok();
    std::fs::remove_file(&pack_path).ok();
}

#[test]
fn file_backed_stream_matches_in_memory_chunked() {
    use clugp_graph::io::binary::{write_binary_graph, FileEdgeStream};
    let (n, edges) = test_web_graph(1_200, 33);
    let dir = std::env::temp_dir().join("clugp_chunked_equiv");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("equiv.bin");
    write_binary_graph(&path, n, &edges).unwrap();

    let mut mem = InMemoryStream::new(n, edges.clone());
    let mut file = FileEdgeStream::open(&path).unwrap();
    let mut clugp = Clugp::default();
    let a = run(&mut clugp, &mut mem, 8);
    let b = run(&mut clugp, &mut file, 8);
    assert_eq!(a, b, "block-read file stream diverged from memory stream");
    std::fs::remove_file(&path).ok();
}

#[test]
fn sparse_remapped_stream_matches_dense_relabeled_run_bit_for_bit() {
    // The id-space contract: partitioning a stream of sparse 64-bit hashed
    // ids through the remap layer must equal partitioning the equivalent
    // pre-relabeled dense graph (remap interns ids in first-appearance
    // order, which IS the dense relabeling of the stream) — for every
    // algorithm, on every pull path, at every source chunk granularity.
    use clugp_graph::idmap::{scramble_edges, IdMap, RawInMemoryStream, RemappedStream};
    let (_, edges) = test_web_graph(1_500, 35);
    let raw = scramble_edges(&edges);
    // Dense first-appearance relabeling of the same stream.
    let mut map = IdMap::remap();
    let relabeled: Vec<Edge> = edges
        .iter()
        .map(|e| {
            Edge::new(
                map.intern(u64::from(e.src)).unwrap(),
                map.intern(u64::from(e.dst)).unwrap(),
            )
        })
        .collect();
    let distinct = map.len();

    let remap = || RemappedStream::remap(RawInMemoryStream::new(raw.clone())).unwrap();
    for (name, mut p) in roster() {
        let mut dense = InMemoryStream::new(distinct, relabeled.clone());
        let reference = run(p.as_mut(), &mut dense, 8);
        let mut sparse = remap();
        assert_eq!(
            run(p.as_mut(), &mut sparse, 8),
            reference,
            "{name}: remapped sparse stream diverged from dense relabeling"
        );
        let mut per_edge = PerEdgeStream::new(remap());
        assert_eq!(
            run(p.as_mut(), &mut per_edge, 8),
            reference,
            "{name}: per-edge pull over the remap layer diverged"
        );
        for limit in [1usize, 7, 4096] {
            let mut limited = ChunkLimited::new(remap(), limit);
            assert_eq!(
                run(p.as_mut(), &mut limited, 8),
                reference,
                "{name}: chunk limit {limit} over the remap layer diverged"
            );
        }
    }
}

#[test]
fn sparse_ids_error_cleanly_without_the_remap_layer() {
    // The same sparse stream in identity mode (the seed-equivalent path)
    // must fail loudly on restream rather than silently truncating: the
    // out-of-cap id parks an error that the next reset reports, so CLUGP's
    // multi-pass pipeline surfaces it as a stream error.
    use clugp_graph::idmap::{RawInMemoryStream, RemappedStream};
    use clugp_graph::types::RawEdge;
    let raw = vec![RawEdge::new(0, 1), RawEdge::new(u64::MAX, 1)];
    let mut s = RemappedStream::identity(RawInMemoryStream::new(raw));
    let err = Clugp::default().partition(&mut s, 4).unwrap_err();
    assert!(
        err.to_string().contains("max_vertices"),
        "unexpected error: {err}"
    );
}

/// A third-party stream written against the *pre-chunking* trait surface:
/// only `next_edge` and the hints are implemented. It must compile unchanged
/// and partition identically to the native source — the default-impl
/// compatibility contract of `next_chunk`/`next_slice`.
struct LegacyStream {
    edges: Vec<Edge>,
    cursor: usize,
    n: u64,
}

impl EdgeStream for LegacyStream {
    fn next_edge(&mut self) -> Option<Edge> {
        let e = self.edges.get(self.cursor).copied();
        if e.is_some() {
            self.cursor += 1;
        }
        e
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.edges.len() as u64)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.n)
    }
}

impl RestreamableStream for LegacyStream {
    fn reset(&mut self) -> clugp_graph::Result<()> {
        self.cursor = 0;
        Ok(())
    }
}

#[test]
fn external_per_edge_implementor_still_works() {
    let (n, edges) = test_web_graph(1_000, 34);
    let mut legacy = LegacyStream {
        edges: edges.clone(),
        cursor: 0,
        n,
    };
    let mut native = InMemoryStream::new(n, edges);
    for (name, mut p) in roster() {
        let a = run(p.as_mut(), &mut legacy, 4);
        let b = run(p.as_mut(), &mut native, 4);
        assert_eq!(a, b, "{name}: legacy implementor diverged");
    }
}
