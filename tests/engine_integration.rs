//! Engine integration: the GAS simulator must compute *exactly* what a
//! sequential implementation computes, no matter which partitioner produced
//! the placement — partitioning may change performance, never results.

use clugp::baselines::{Dbh, Greedy, Hashing, Hdrf, Mint};
use clugp::clugp::Clugp;
use clugp::partitioner::Partitioner;
use clugp_engine::apps::{
    sequential_bfs_levels, sequential_components, sequential_pagerank, Bfs, ConnectedComponents,
    PageRank,
};
use clugp_engine::{CostModel, DistributedGraph, Engine};
use clugp_graph::csr::CsrGraph;
use clugp_graph::stream::InMemoryStream;
use clugp_repro::test_web_graph;

fn partitioners() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(Hashing::default()),
        Box::new(Dbh::default()),
        Box::new(Greedy::new()),
        Box::new(Hdrf::default()),
        Box::new(Mint::default()),
        Box::new(Clugp::default()),
    ]
}

#[test]
fn pagerank_is_partitioning_invariant() {
    let (n, edges) = test_web_graph(2_000, 11);
    let graph = CsrGraph::from_edges(n, &edges).unwrap();
    let reference = sequential_pagerank(&graph, 0.85, 10);
    let mut stream = InMemoryStream::new(n, edges.clone());
    for partitioner in partitioners().iter_mut() {
        let run = partitioner.partition(&mut stream, 8).unwrap();
        let placed = DistributedGraph::place(&edges, &run.partitioning);
        let (ranks, _) = Engine::new(&placed).run(&PageRank::default());
        for (v, (a, b)) in ranks.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "{} vertex {v}: {a} vs {b}",
                partitioner.name()
            );
        }
    }
}

#[test]
fn connected_components_match_union_find_exactly() {
    let (n, edges) = test_web_graph(2_000, 12);
    let graph = CsrGraph::from_edges(n, &edges).unwrap();
    let reference = sequential_components(&graph);
    let mut stream = InMemoryStream::new(n, edges.clone());
    for partitioner in partitioners().iter_mut() {
        let run = partitioner.partition(&mut stream, 8).unwrap();
        let placed = DistributedGraph::place(&edges, &run.partitioning);
        let (labels, _) = Engine::new(&placed).run(&ConnectedComponents::default());
        assert_eq!(labels, reference, "{}", partitioner.name());
    }
}

#[test]
fn bfs_levels_match_reference() {
    let (n, edges) = test_web_graph(1_500, 13);
    let graph = CsrGraph::from_edges(n, &edges).unwrap();
    let reference = sequential_bfs_levels(&graph, 0, true);
    let mut stream = InMemoryStream::new(n, edges.clone());
    let run = Clugp::default().partition(&mut stream, 8).unwrap();
    let placed = DistributedGraph::place(&edges, &run.partitioning);
    let (levels, _) = Engine::new(&placed).run(&Bfs::undirected(0));
    assert_eq!(levels, reference);
}

/// The paper's core systems claim (Fig. 8): fewer mirrors ⇒ fewer messages.
/// CLUGP's sync traffic must be below Hashing's on a web graph.
#[test]
fn better_partitioning_means_less_communication() {
    let (n, edges) = test_web_graph(5_000, 14);
    let mut stream = InMemoryStream::new(n, edges.clone());

    let runs: Vec<(String, u64)> = partitioners()
        .iter_mut()
        .map(|p| {
            let run = p.partition(&mut stream, 16).unwrap();
            let placed = DistributedGraph::place(&edges, &run.partitioning);
            let (_, stats) = Engine::new(&placed).run(&PageRank::default());
            (p.name().to_string(), stats.total_messages())
        })
        .collect();
    let messages = |name: &str| runs.iter().find(|(n, _)| n == name).unwrap().1;
    assert!(
        messages("CLUGP") < messages("Hashing"),
        "CLUGP {} vs Hashing {}",
        messages("CLUGP"),
        messages("Hashing")
    );
}

/// Placement invariants hold for every partitioner.
#[test]
fn placement_conserves_edges_and_replicas() {
    let (n, edges) = test_web_graph(2_000, 15);
    let mut stream = InMemoryStream::new(n, edges.clone());
    for partitioner in partitioners().iter_mut() {
        let run = partitioner.partition(&mut stream, 8).unwrap();
        let placed = DistributedGraph::place(&edges, &run.partitioning);
        assert_eq!(
            placed.total_edges(),
            edges.len() as u64,
            "{}",
            partitioner.name()
        );
        // Exactly one master per touched vertex.
        let q = clugp::metrics::PartitionQuality::compute(&edges, &run.partitioning);
        assert_eq!(
            placed.total_replicas(),
            q.total_replicas,
            "{}",
            partitioner.name()
        );
        assert_eq!(placed.total_mirrors(), q.mirrors, "{}", partitioner.name());
    }
}

/// Latency sweep monotonicity: higher RTT can only slow the estimate.
#[test]
fn cost_estimates_monotone_in_rtt() {
    let (n, edges) = test_web_graph(2_000, 16);
    let mut stream = InMemoryStream::new(n, edges.clone());
    let run = Clugp::default().partition(&mut stream, 8).unwrap();
    let placed = DistributedGraph::place(&edges, &run.partitioning);
    let (_, stats) = Engine::new(&placed).run(&PageRank::default());
    let mut last = 0.0;
    for ms in [1u64, 10, 50, 100] {
        let est = CostModel {
            rtt: std::time::Duration::from_millis(ms),
            ..Default::default()
        }
        .estimate(&stats);
        assert!(est.total_secs() >= last);
        last = est.total_secs();
    }
}
