//! Cross-crate integration tests: the full CLUGP pipeline against the graph
//! substrate and all baselines, exercising the invariants the paper's
//! problem statement demands (Problem 1, Eq. 1).

use clugp::baselines::{Dbh, Greedy, Hashing, Hdrf, Mint};
use clugp::clugp::{Clugp, ClugpConfig, ClusterAssignMode, MigrationPolicy};
use clugp::metrics::PartitionQuality;
use clugp::partitioner::Partitioner;
use clugp_graph::stream::InMemoryStream;
use clugp_graph::types::Edge;
use clugp_repro::test_web_graph;

fn all_partitioners() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(Hashing::default()),
        Box::new(Dbh::default()),
        Box::new(Greedy::new()),
        Box::new(Hdrf::default()),
        Box::new(Mint::default()),
        Box::new(Clugp::default()),
        Box::new(Clugp::new(ClugpConfig {
            splitting: false,
            ..Default::default()
        })),
        Box::new(Clugp::new(ClugpConfig {
            assign_mode: ClusterAssignMode::Greedy,
            ..Default::default()
        })),
    ]
}

/// Problem 1: every edge is assigned to exactly one partition, for every
/// algorithm, across several k.
#[test]
fn every_algorithm_partitions_every_edge_exactly_once() {
    let (n, edges) = test_web_graph(3_000, 1);
    let mut stream = InMemoryStream::new(n, edges.clone());
    for partitioner in all_partitioners().iter_mut() {
        for k in [1u32, 2, 7, 32] {
            let run = partitioner.partition(&mut stream, k).unwrap();
            assert_eq!(
                run.partitioning.assignments.len(),
                edges.len(),
                "{} k={k}: assignment count",
                partitioner.name()
            );
            run.partitioning
                .validate()
                .unwrap_or_else(|e| panic!("{} k={k}: {e}", partitioner.name()));
        }
    }
}

/// Replication factor is at least 1 and at most k for every algorithm.
#[test]
fn replication_factor_bounds() {
    let (n, edges) = test_web_graph(3_000, 2);
    let mut stream = InMemoryStream::new(n, edges.clone());
    for partitioner in all_partitioners().iter_mut() {
        let k = 16;
        let run = partitioner.partition(&mut stream, k).unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        assert!(
            q.replication_factor >= 1.0 && q.replication_factor <= f64::from(k),
            "{}: rf {}",
            partitioner.name(),
            q.replication_factor
        );
    }
}

/// CLUGP's τ cap (Algorithm 1): relative balance ≤ τ plus rounding slack.
#[test]
fn clugp_respects_tau_across_settings() {
    let (n, edges) = test_web_graph(4_000, 3);
    let m = edges.len() as f64;
    let mut stream = InMemoryStream::new(n, edges);
    for tau in [1.0f64, 1.05, 1.2] {
        for k in [4u32, 16, 64] {
            let mut clugp = Clugp::new(ClugpConfig {
                tau,
                ..Default::default()
            });
            let run = clugp.partition(&mut stream, k).unwrap();
            let lmax = (tau * m / f64::from(k)).ceil();
            let max_load = *run.partitioning.loads.iter().max().unwrap() as f64;
            assert!(
                max_load <= lmax,
                "tau={tau} k={k}: max load {max_load} > Lmax {lmax}"
            );
        }
    }
}

/// The paper's headline claim at our scale: CLUGP beats Hashing/DBH/Mint
/// decisively and is competitive with HDRF on web graphs. Each algorithm
/// gets its best stream order, as in the paper's setup (random for the
/// one-pass heuristics — HDRF degenerates on BFS order — BFS for
/// Mint/CLUGP).
#[test]
fn clugp_quality_ordering_on_web_graph() {
    use clugp_graph::csr::CsrGraph;
    use clugp_graph::order::{ordered_edges, StreamOrder};
    let (n, bfs_edges) = test_web_graph(20_000, 4);
    let graph = CsrGraph::from_edges(n, &bfs_edges).unwrap();
    let random_edges = ordered_edges(&graph, StreamOrder::Random(7));
    let k = 32;
    let rf = |p: &mut dyn Partitioner, edges: &[Edge]| {
        let mut stream = InMemoryStream::new(n, edges.to_vec());
        let run = p.partition(&mut stream, k).unwrap();
        PartitionQuality::compute(edges, &run.partitioning).replication_factor
    };
    let clugp = rf(&mut Clugp::default(), &bfs_edges);
    let mint = rf(&mut Mint::default(), &bfs_edges);
    let hashing = rf(&mut Hashing::default(), &random_edges);
    let dbh = rf(&mut Dbh::default(), &random_edges);
    let hdrf = rf(&mut Hdrf::default(), &random_edges);
    assert!(clugp < 0.6 * hashing, "CLUGP {clugp} vs Hashing {hashing}");
    assert!(clugp < 0.9 * dbh, "CLUGP {clugp} vs DBH {dbh}");
    assert!(clugp < 0.9 * mint, "CLUGP {clugp} vs Mint {mint}");
    assert!(clugp < 1.35 * hdrf, "CLUGP {clugp} vs HDRF {hdrf}");
}

/// Determinism: identical runs produce identical assignments for every
/// algorithm (fixed seeds end to end).
#[test]
fn all_algorithms_are_deterministic() {
    let (n, edges) = test_web_graph(2_000, 5);
    let mut stream = InMemoryStream::new(n, edges);
    for partitioner in all_partitioners().iter_mut() {
        let a = partitioner.partition(&mut stream, 8).unwrap();
        let b = partitioner.partition(&mut stream, 8).unwrap();
        assert_eq!(
            a.partitioning.assignments,
            b.partitioning.assignments,
            "{} must be deterministic",
            partitioner.name()
        );
    }
}

/// Self-loops and duplicate edges flow through every algorithm.
#[test]
fn degenerate_edges_are_handled() {
    let mut edges: Vec<Edge> = (0..50).map(|i| Edge::new(i % 5, (i + 1) % 5)).collect();
    edges.push(Edge::new(3, 3));
    edges.push(Edge::new(3, 3));
    edges.push(Edge::new(0, 1));
    let mut stream = InMemoryStream::new(5, edges.clone());
    for partitioner in all_partitioners().iter_mut() {
        let run = partitioner.partition(&mut stream, 4).unwrap();
        assert_eq!(
            run.partitioning.assignments.len(),
            edges.len(),
            "{}",
            partitioner.name()
        );
        run.partitioning.validate().unwrap();
    }
}

/// k = 1 is the trivial partitioning with RF exactly 1 for every algorithm.
#[test]
fn k_one_is_trivial_for_everyone() {
    let (n, edges) = test_web_graph(1_000, 6);
    let mut stream = InMemoryStream::new(n, edges.clone());
    for partitioner in all_partitioners().iter_mut() {
        let run = partitioner.partition(&mut stream, 1).unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        assert!(
            (q.replication_factor - 1.0).abs() < 1e-12,
            "{}: rf {}",
            partitioner.name(),
            q.replication_factor
        );
    }
}

/// k larger than |E|: every algorithm still terminates with a valid (sparse)
/// assignment.
#[test]
fn k_exceeding_edge_count() {
    let edges: Vec<Edge> = (0..6).map(|i| Edge::new(i, i + 1)).collect();
    let mut stream = InMemoryStream::new(7, edges.clone());
    for partitioner in all_partitioners().iter_mut() {
        let run = partitioner.partition(&mut stream, 64).unwrap();
        run.partitioning.validate().unwrap();
        assert_eq!(run.partitioning.assignments.len(), edges.len());
    }
}

/// Migration policies are all safe; the anchored default never does worse
/// than the verbatim-paper policy on a locality-rich crawl.
#[test]
fn migration_policy_comparison() {
    let (n, edges) = test_web_graph(10_000, 7);
    let mut stream = InMemoryStream::new(n, edges.clone());
    let rf_of = |policy: MigrationPolicy, stream: &mut InMemoryStream| {
        let mut clugp = Clugp::new(ClugpConfig {
            migration: policy,
            ..Default::default()
        });
        let run = clugp.partition(stream, 32).unwrap();
        PartitionQuality::compute(&edges, &run.partitioning).replication_factor
    };
    let anchored = rf_of(MigrationPolicy::Anchored, &mut stream);
    let paper = rf_of(MigrationPolicy::Paper, &mut stream);
    let headroom = rf_of(MigrationPolicy::Headroom, &mut stream);
    assert!(anchored >= 1.0 && paper >= 1.0 && headroom >= 1.0);
    assert!(
        anchored <= paper * 1.02,
        "anchored {anchored} should not lose to paper-verbatim {paper}"
    );
}
