//! Shootout: all six streaming partitioners on the same web graph — the
//! Table I / Figure 3 comparison in miniature.
//!
//! ```text
//! cargo run --release --example partitioner_shootout [vertices] [k]
//! ```

use clugp::baselines::{Dbh, Greedy, Hashing, Hdrf, Mint};
use clugp::clugp::Clugp;
use clugp::metrics::PartitionQuality;
use clugp::partitioner::Partitioner;
use clugp_graph::gen::{generate_web_crawl, WebCrawlConfig};
use clugp_graph::order::{ordered_edges, StreamOrder};
use clugp_graph::stream::InMemoryStream;

fn main() {
    let mut args = std::env::args().skip(1);
    let vertices: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let k: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);

    let graph = generate_web_crawl(&WebCrawlConfig {
        vertices,
        ..Default::default()
    });
    let bfs = ordered_edges(&graph, StreamOrder::Bfs);
    let random = ordered_edges(&graph, StreamOrder::Random(0x5EED));
    println!(
        "web graph: |V|={} |E|={} k={k}\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:<10} {:>6} {:>10} {:>9} {:>12} {:>12}",
        "algorithm", "order", "RF", "balance", "time", "memory(MiB)"
    );

    // Each algorithm gets its best stream order, as in the paper.
    let mut contenders: Vec<(Box<dyn Partitioner>, &[_])> = vec![
        (Box::new(Hdrf::default()), random.as_slice()),
        (Box::new(Greedy::new()), random.as_slice()),
        (Box::new(Hashing::default()), random.as_slice()),
        (Box::new(Dbh::default()), random.as_slice()),
        (Box::new(Mint::default()), bfs.as_slice()),
        (Box::new(Clugp::default()), bfs.as_slice()),
    ];

    for (partitioner, edges) in contenders.iter_mut() {
        let mut stream = InMemoryStream::new(graph.num_vertices(), edges.to_vec());
        let run = partitioner.partition(&mut stream, k).expect("run failed");
        let q = PartitionQuality::compute(edges, &run.partitioning);
        let order = if std::ptr::eq(edges.as_ptr(), bfs.as_ptr()) {
            "BFS"
        } else {
            "random"
        };
        println!(
            "{:<10} {:>6} {:>10.3} {:>9.3} {:>12?} {:>12.2}",
            partitioner.name(),
            order,
            q.replication_factor,
            q.relative_balance,
            run.timings.total,
            run.memory.total_bytes() as f64 / (1024.0 * 1024.0),
        );
    }
}
