//! Dataset analysis: generate each synthetic corpus analogue, verify the
//! power-law shape, then show how cluster quality explains partitioning
//! quality (the paper's §III intuition, measured).
//!
//! ```text
//! cargo run --release --example web_crawl_analysis
//! ```

use clugp::clugp::{stream_clustering, ClusterGraph};
use clugp_graph::analysis::{degree_histogram, estimate_power_law_alpha, summarize};
use clugp_graph::gen::{generate_ba, generate_web_crawl, BaConfig, WebCrawlConfig};
use clugp_graph::order::{ordered_edges, StreamOrder};
use clugp_graph::stream::{InMemoryStream, RestreamableStream};

fn main() {
    println!("=== corpus shape ===");
    let web = generate_web_crawl(&WebCrawlConfig {
        vertices: 60_000,
        ..Default::default()
    });
    let social = generate_ba(&BaConfig {
        vertices: 60_000,
        edges_per_vertex: 12,
        seed: 0x50C1A1,
    });

    for (name, g) in [("web-crawl", &web), ("social-BA", &social)] {
        let s = summarize(g);
        let in_alpha = estimate_power_law_alpha(&degree_histogram(&g.in_degrees()));
        println!(
            "{name:<10} |V|={:<7} |E|={:<8} max-deg={:<6} in-alpha={:.2} components={}",
            s.num_vertices, s.num_edges, s.max_degree, in_alpha, s.components
        );
    }

    println!("\n=== what CLUGP's clustering finds (k=32 volumes) ===");
    for (name, g) in [("web-crawl", &web), ("social-BA", &social)] {
        let edges = ordered_edges(g, StreamOrder::Bfs);
        let vmax = edges.len() as u64 / 32;
        let mut stream = InMemoryStream::new(g.num_vertices(), edges);
        let clustering = stream_clustering(&mut stream, vmax, true).unwrap();
        stream.reset().unwrap();
        let cg = ClusterGraph::build(&mut stream, &clustering);
        let intra_frac =
            cg.total_intra() as f64 / (cg.total_intra() + cg.total_inter_edges()) as f64;
        println!(
            "{name:<10} clusters={:<6} intra-edge fraction={:.1}% splits={} migrations={}",
            clustering.num_clusters,
            100.0 * intra_frac,
            clustering.splits,
            clustering.migrations,
        );
    }
    println!(
        "\nThe crawl-locality gap above is why CLUGP wins on web graphs \
         (Fig. 3) but only ties HDRF on social graphs (Fig. 4)."
    );
}
