//! File-backed streaming pipeline: write a graph to the binary on-disk
//! format, then restream it from disk through CLUGP's three passes — the
//! deployment shape for graphs that do not fit in memory.
//!
//! ```text
//! cargo run --release --example streaming_pipeline
//! ```

use clugp::clugp::Clugp;
use clugp::metrics::PartitionQuality;
use clugp::partitioner::Partitioner;
use clugp_graph::gen::{generate_web_crawl, WebCrawlConfig};
use clugp_graph::io::binary::{write_binary_graph, FileEdgeStream};
use clugp_graph::io::edge_list::write_edge_list;
use clugp_graph::order::{ordered_edges, StreamOrder};
use clugp_graph::stream::TimedStream;

fn main() {
    let dir = std::env::temp_dir().join("clugp_streaming_pipeline");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 1. Generate and persist a graph in both formats.
    let graph = generate_web_crawl(&WebCrawlConfig {
        vertices: 40_000,
        ..Default::default()
    });
    let edges = ordered_edges(&graph, StreamOrder::Bfs);
    let bin_path = dir.join("crawl.bin");
    let txt_path = dir.join("crawl.txt");
    write_binary_graph(&bin_path, graph.num_vertices(), &edges).expect("write binary");
    write_edge_list(&txt_path, &edges[..100.min(edges.len())]).expect("write sample text");
    println!(
        "persisted {} edges to {} ({} bytes)",
        edges.len(),
        bin_path.display(),
        std::fs::metadata(&bin_path).unwrap().len()
    );

    // 2. Restream from disk: CLUGP makes three passes over the file, and the
    //    TimedStream wrapper measures exactly how much wall time is I/O.
    let file = FileEdgeStream::open(&bin_path).expect("open binary stream");
    let mut timed = TimedStream::new(file);
    let mut clugp = Clugp::default();
    let started = std::time::Instant::now();
    let run = clugp.partition(&mut timed, 16).expect("partition");
    let total = started.elapsed();

    let quality = PartitionQuality::compute(&edges, &run.partitioning);
    println!("k=16 from disk:");
    println!("  replication factor = {:.3}", quality.replication_factor);
    println!("  relative balance   = {:.3}", quality.relative_balance);
    println!(
        "  wall time          = {total:?} (I/O {:?}, compute {:?})",
        timed.io_time(),
        total - timed.io_time()
    );

    std::fs::remove_file(&bin_path).ok();
    std::fs::remove_file(&txt_path).ok();
}
