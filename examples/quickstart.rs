//! Quickstart: generate a web graph, partition it with CLUGP, inspect the
//! quality metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clugp::clugp::{Clugp, ClugpConfig};
use clugp::metrics::PartitionQuality;
use clugp::partitioner::Partitioner;
use clugp_graph::gen::{generate_web_crawl, WebCrawlConfig};
use clugp_graph::order::{ordered_edges, StreamOrder};
use clugp_graph::stream::InMemoryStream;

fn main() {
    // 1. A synthetic web graph: power-law sites, crawl-order vertex ids.
    let graph = generate_web_crawl(&WebCrawlConfig {
        vertices: 50_000,
        mean_out_degree: 12.0,
        ..Default::default()
    });
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Stream the edges in BFS (crawl) order — the paper's web setting.
    let edges = ordered_edges(&graph, StreamOrder::Bfs);
    let mut stream = InMemoryStream::new(graph.num_vertices(), edges.clone());

    // 3. Partition into 16 parts with the paper's default configuration.
    let k = 16;
    let mut clugp = Clugp::new(ClugpConfig::default());
    let run = clugp
        .partition(&mut stream, k)
        .expect("partitioning failed");

    // 4. Inspect quality: replication factor (communication proxy) and
    //    relative balance (computation proxy).
    let quality = PartitionQuality::compute(&edges, &run.partitioning);
    println!("k = {k}");
    println!("replication factor = {:.3}", quality.replication_factor);
    println!("relative balance   = {:.3}", quality.relative_balance);
    println!("mirrors            = {}", quality.mirrors);
    println!("partition time     = {:?}", run.timings.total);
    for (phase, t) in &run.timings.phases {
        println!("  {phase:<14} {t:?}");
    }
    println!("working memory     = {}", run.memory);
}
