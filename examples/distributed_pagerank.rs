//! Distributed PageRank on the GAS simulator: shows how partitioning quality
//! turns into communication volume and estimated runtime — the paper's
//! Figure 8 story on one graph.
//!
//! ```text
//! cargo run --release --example distributed_pagerank
//! ```

use clugp::baselines::Hashing;
use clugp::clugp::Clugp;
use clugp::partitioner::Partitioner;
use clugp_engine::apps::{sequential_pagerank, PageRank};
use clugp_engine::{CostModel, DistributedGraph, Engine};
use clugp_graph::gen::{generate_web_crawl, WebCrawlConfig};
use clugp_graph::order::{ordered_edges, StreamOrder};
use clugp_graph::stream::InMemoryStream;
use std::time::Duration;

fn main() {
    let graph = generate_web_crawl(&WebCrawlConfig {
        vertices: 30_000,
        ..Default::default()
    });
    let edges = ordered_edges(&graph, StreamOrder::Bfs);
    let k = 32;
    println!(
        "PageRank over {} machines, |V|={}, |E|={}\n",
        k,
        graph.num_vertices(),
        graph.num_edges()
    );

    let mut contenders: Vec<Box<dyn Partitioner>> =
        vec![Box::new(Clugp::default()), Box::new(Hashing::default())];
    for partitioner in contenders.iter_mut() {
        let mut stream = InMemoryStream::new(graph.num_vertices(), edges.clone());
        let run = partitioner.partition(&mut stream, k).expect("partition");

        // Place the real assignment on k simulated machines and execute.
        let placed = DistributedGraph::place(&edges, &run.partitioning);
        let engine = Engine::new(&placed);
        let (ranks, stats) = engine.run(&PageRank::default());

        // The engine computes the exact same ranks as a sequential run.
        let reference = sequential_pagerank(&graph, 0.85, 10);
        let max_err = ranks
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);

        println!("partitioner: {}", partitioner.name());
        println!("  mirrors             = {}", placed.total_mirrors());
        println!("  messages            = {}", stats.total_messages());
        println!("  max |rank - ref|    = {max_err:.2e}");
        for rtt_ms in [10u64, 50, 100] {
            let est = CostModel {
                rtt: Duration::from_millis(rtt_ms),
                ..Default::default()
            }
            .estimate(&stats);
            println!(
                "  rtt={rtt_ms:>3}ms: runtime≈{:>8.2}s (compute {:.2}s + network {:.2}s), volume {:.1} MiB",
                est.total_secs(),
                est.compute_secs,
                est.communication_secs,
                est.total_bytes as f64 / (1024.0 * 1024.0)
            );
        }
        println!();
    }
}
