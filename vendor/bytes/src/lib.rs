//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: the [`Buf`] / [`BufMut`] little-endian integer accessors on
//! `&[u8]` cursors and `Vec<u8>` sinks.

/// Read-side cursor operations. Implemented for `&[u8]`, which advances
/// through the slice as values are consumed (as the real crate does).
pub trait Buf {
    /// Number of bytes remaining.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes, returning them.
    fn copy_slice(&mut self, n: usize) -> &[u8];

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_slice(4).try_into().unwrap())
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_slice(8).try_into().unwrap())
    }

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        self.copy_slice(1)[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_slice(&mut self, n: usize) -> &[u8] {
        assert!(
            n <= self.len(),
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let whole = *self;
        let (head, tail) = whole.split_at(n);
        *self = tail;
        head
    }
}

/// Write-side operations. Implemented for `Vec<u8>`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_slice(b"xy");
        let mut cursor = &buf[..];
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_u8(), b'x');
        assert_eq!(cursor.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
