//! Offline stand-in for `rustc-hash`: the Fx multiply-mix hasher and the
//! `FxHashMap`/`FxHashSet` aliases. Functionally equivalent to the real
//! crate (same non-keyed construction, so map iteration order is stable run
//! to run — a property the deterministic tests in this workspace rely on).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hasher: a fast, non-cryptographic multiply-mix hash.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hashing_is_deterministic() {
        let hash = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn set_dedups() {
        let s: FxHashSet<u32> = [1, 1, 2, 3, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }
}
