//! Offline stand-in for the Criterion benchmarking API used by this
//! workspace's `harness = false` benches.
//!
//! The real `criterion` crate (and its dependency tree) cannot be fetched
//! in this build environment, so this crate keeps the call-site API —
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!` — and implements a small honest timer: each benchmark
//! is warmed up once, then timed for `sample_size` iterations, and the
//! mean/min wall-clock per iteration is printed in a Criterion-like line.
//! No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("# bench group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark identified by `id` (any `Display`, matching the
    /// `&str` / `String` / [`BenchmarkId`] forms Criterion accepts).
    pub fn bench_function<D, F>(&mut self, id: D, mut f: F) -> &mut Self
    where
        D: Display,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            min: Duration::MAX,
            iters: 0,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<D, I, F>(&mut self, id: D, input: &I, mut f: F) -> &mut Self
    where
        D: Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            min: Duration::MAX,
            iters: 0,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` once for warm-up, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.iters += 1;
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            eprintln!("{group}/{id}: no iterations run");
            return;
        }
        let mean = self.total / self.iters as u32;
        eprintln!(
            "{group}/{id}: mean {mean:?}, min {:?} ({} iters)",
            self.min, self.iters
        );
    }
}

/// Identifier carrying a function name and a parameter, rendered
/// `name/param` exactly as Criterion does.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a function that runs the listed benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure_expected_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warm-up + 5 samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn benchmark_id_renders_like_criterion() {
        assert_eq!(BenchmarkId::new("clugp", 16).to_string(), "clugp/16");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
