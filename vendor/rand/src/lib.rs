//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `SmallRng`/`StdRng` seeded with [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom`] shuffling.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! crate cannot be fetched; this crate keeps the exact call-site syntax of
//! `rand` 0.8 so it can be swapped for the real dependency by editing one
//! manifest line. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic across platforms, which the test suite relies on.

/// Random number generators.
pub mod rngs {
    pub use crate::small::SmallRng;

    /// Alias of [`SmallRng`]; this stand-in does not ship a CSPRNG.
    pub type StdRng = SmallRng;
}

/// Sequence-related extensions (shuffling, choosing).
pub mod seq {
    use crate::Rng;

    /// Extension trait providing random operations on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

mod small {
    use crate::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expansion, as the real rand crate does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be instantiated from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire multiply-shift; bias is < 2^-64 per draw.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return <$t as Standard>::sample_standard(rng);
                }
                let span = (end as u64).wrapping_sub(start as u64) + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * f64::sample_standard(rng);
        // start + span * f can round up to exactly `end`; real rand
        // guarantees the half-open interval, so pull such draws back.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (`f64` in
    /// `[0, 1)`, integers over their full domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..1);
            assert_eq!(y, 0);
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice in sorted order");
    }
}
