//! Offline stand-in for the `proptest` surface this workspace uses: the
//! `proptest!` macro over named-argument strategies, integer-range and
//! tuple strategies, `prop::collection::vec`, `prop_map`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, chosen deliberately for an offline,
//! dependency-free build:
//!
//! * **No shrinking** — a failing case panics with the generated inputs in
//!   the message instead of a minimized counterexample.
//! * **Deterministic seeding** — case `i` of test `t` derives its RNG seed
//!   from `(hash(module_path::t), i)`, so failures reproduce exactly under
//!   plain `cargo test` with no persistence files.
//! * `prop_assert!` / `prop_assert_eq!` panic immediately (they are
//!   `assert!`-shaped rather than `Err`-returning).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Per-test configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Builds the deterministic RNG for `(test, case)`.
pub fn rng_for(test_path: &str, case: u32) -> TestRng {
    // FNV-1a over the test path, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of values for property tests (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// A fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty length range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $( $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let test_path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::rng_for(test_path, case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)+
                    let inputs = ($(format!("{} = {:?}", stringify!($arg), $arg),)+);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {case}/{total} of {test_path} failed with inputs:",
                            total = config.cases,
                        );
                        let ($($arg,)+) = &inputs;
                        $(eprintln!("  {}", $arg);)+
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        let mut rng = crate::rng_for("t", 0);
        let strat = prop::collection::vec((0u32..64, 0u32..64), 1..200);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..200).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 64 && b < 64));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::rng_for("t", 1);
        let strat = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert!((2..20).contains(&v));
        }
    }

    #[test]
    fn seeding_is_deterministic_per_test_and_case() {
        let a = (0u64..1_000_000).generate(&mut crate::rng_for("x", 3));
        let b = (0u64..1_000_000).generate(&mut crate::rng_for("x", 3));
        let c = (0u64..1_000_000).generate(&mut crate::rng_for("x", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_smoke(xs in prop::collection::vec(0u32..10, 1..5), k in 1u32..4) {
            prop_assert!(!xs.is_empty());
            prop_assert!(k >= 1);
            prop_assert_eq!(xs.len(), xs.clone().len());
        }
    }
}
