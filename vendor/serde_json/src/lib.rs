//! Offline stand-in for the `serde_json` functions this workspace uses:
//! [`to_string`] and [`to_string_pretty`] over the `serde` stand-in's
//! concrete [`serde::Value`] model.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The concrete `Value` model cannot actually fail,
/// so this is only produced for non-finite floats, which JSON cannot
/// represent (mirroring real serde_json's behaviour).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error(format!("JSON cannot represent {f}")));
            }
            // Match serde_json: integral floats print with a trailing `.0`.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            write_seq(
                out,
                items.iter(),
                indent,
                level,
                ('[', ']'),
                |out, item, lvl| write_value(out, item, indent, lvl),
            )?;
        }
        Value::Object(entries) => {
            write_seq(
                out,
                entries.iter(),
                indent,
                level,
                ('{', '}'),
                |out, (key, val), lvl| {
                    write_json_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, lvl)
                },
            )?;
        }
    }
    Ok(())
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: F,
) -> Result<(), Error>
where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize) -> Result<(), Error>,
{
    out.push(brackets.0);
    if items.len() == 0 {
        out.push(brackets.1);
        return Ok(());
    }
    let inner = level + 1;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * inner));
        }
        write_item(out, item, inner)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(brackets.1);
    Ok(())
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("uk".into())),
            ("rf".into(), Value::F64(1.5)),
            (
                "ks".into(),
                Value::Array(vec![Value::U64(4), Value::U64(16)]),
            ),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let w = Wrap(v);
        assert_eq!(
            to_string(&w).unwrap(),
            r#"{"name":"uk","rf":1.5,"ks":[4,16]}"#
        );
        let pretty = to_string_pretty(&w).unwrap();
        assert!(pretty.contains("\n  \"name\": \"uk\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn rejects_nan() {
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn empty_containers() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(to_string(&empty).unwrap(), "[]");
        assert_eq!(to_string_pretty(&empty).unwrap(), "[]");
    }
}
