//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` stand-in.
//!
//! `syn` and `quote` are unavailable offline, so this parses the item's
//! `TokenStream` directly. It supports exactly the shapes this workspace
//! derives on:
//!
//! * structs with named fields (serialized as an ordered JSON object),
//! * tuple structs (serialized as an array),
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde: `"Variant"`, `{"Variant": value-or-array}`,
//!   `{"Variant": {fields…}}`).
//!
//! Generic types are intentionally rejected with a compile error rather
//! than mis-serialized; none exist in this tree.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by lowering into the `serde::Value` model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from(\"{f}\"), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Object(vec![{}])", pushes.join(", "))
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let name = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => serde::Value::Str(String::from(\"{vname}\"))"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => serde::Value::Object(vec![\
                             (String::from(\"{vname}\"), serde::Serialize::to_value(__f0))])"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => serde::Value::Object(vec![\
                                 (String::from(\"{vname}\"), \
                                 serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), \
                                         serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 serde::Value::Object(vec![\
                                 (String::from(\"{vname}\"), \
                                 serde::Value::Object(vec![{}]))])",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}",
        name = item.name
    );
    out.parse().expect("serde_derive generated invalid Rust")
}

/// Derives the marker trait `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("serde_derive generated invalid Rust")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in does not support generic types ({name})");
    }
    match (kind.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item {
            name,
            shape: Shape::NamedStruct(parse_named_fields(g.stream())),
        },
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => Item {
            name,
            shape: Shape::TupleStruct(count_tuple_fields(g.stream())),
        },
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item {
            name,
            shape: Shape::Enum(parse_variants(g.stream())),
        },
        (k, t) => panic!("serde_derive: unsupported item shape ({k}, {t:?})"),
    }
}

/// Skips leading `#[...]` attributes (including doc comments) and a `pub`
/// (optionally `pub(...)`) visibility qualifier.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from `{ a: T, b: U, … }`, skipping types (tracking
/// `<…>` nesting so commas inside generic arguments don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after {name}, got {other:?}"),
        }
        fields.push(name);
        skip_type(&mut tokens);
    }
    fields
}

/// Consumes tokens up to (and including) the next comma at angle-bracket
/// depth zero, or the end of the stream.
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    for tok in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tok in stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => fields += 1,
                _ => {}
            }
        }
    }
    // `(T, U)` has one top-level comma but two fields; a trailing comma
    // would overcount, so count separators between non-empty segments.
    if saw_tokens {
        fields + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantFields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                tokens.next();
                VariantFields::Named(names)
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip to the next variant: discriminants (`= expr`) and the
        // separating comma.
        let mut depth = 0i32;
        while let Some(tok) = tokens.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        tokens.next();
                        break;
                    }
                    _ => {}
                }
            }
            tokens.next();
        }
    }
    variants
}
