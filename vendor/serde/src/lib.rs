//! Offline stand-in for the `serde` surface this workspace uses:
//! `#[derive(Serialize, Deserialize)]`, `T: Serialize` bounds, and (via the
//! sibling `serde_json` stand-in) JSON export of experiment results.
//!
//! Unlike real serde there is no generic `Serializer` visitor: [`Serialize`]
//! lowers values into one concrete self-describing [`Value`] tree that
//! `serde_json` prints. That is exactly enough for the one data flow in this
//! repository (derive → `serde_json::to_string_pretty`), keeps all call
//! sites source-compatible with the real crate, and avoids needing `syn` /
//! `quote` (unavailable offline) for anything beyond the small hand-rolled
//! derive in `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map; field order is preserved (unlike a `HashMap`-backed
    /// model) so exported JSON matches declaration order.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the [`Value`] data model.
    fn to_value(&self) -> Value;
}

/// Marker trait mirroring serde's `Deserialize`. The workspace derives it
/// on config types for forward compatibility but never deserializes, so no
/// methods are required.
pub trait Deserialize {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    // The derive emits `serde::`-prefixed paths, which inside this crate's
    // own tests must resolve back to the crate root.
    use crate as serde;

    #[test]
    fn primitives_lower() {
        assert_eq!(3u32.to_value(), Value::U64(3));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
    }

    #[test]
    fn containers_lower() {
        let v = vec![(String::from("a"), 1usize)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![
                Value::Str("a".into()),
                Value::U64(1)
            ])])
        );
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }

    #[derive(Serialize)]
    struct Demo {
        x: u64,
        label: String,
    }

    #[derive(Serialize)]
    enum Kind {
        Unit,
        Newtype(u64),
        Pair(u64, bool),
    }

    #[test]
    fn derive_struct() {
        let d = Demo {
            x: 7,
            label: "seven".into(),
        };
        assert_eq!(
            d.to_value(),
            Value::Object(vec![
                ("x".into(), Value::U64(7)),
                ("label".into(), Value::Str("seven".into())),
            ])
        );
    }

    #[test]
    fn derive_enum() {
        assert_eq!(Kind::Unit.to_value(), Value::Str("Unit".into()));
        assert_eq!(
            Kind::Newtype(9).to_value(),
            Value::Object(vec![("Newtype".into(), Value::U64(9))])
        );
        assert_eq!(
            Kind::Pair(1, false).to_value(),
            Value::Object(vec![(
                "Pair".into(),
                Value::Array(vec![Value::U64(1), Value::Bool(false)])
            )])
        );
    }
}
