//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment cannot fetch crates.io, so this crate keeps the
//! `rayon` call-site syntax (`par_iter`, `par_chunks`, `ThreadPoolBuilder`,
//! `current_num_threads`) while executing **sequentially**: the parallel
//! iterators are ordinary `std` iterators, and `ThreadPool::install` runs its
//! closure inline. Every call site in the workspace only relies on rayon for
//! throughput, never for semantics — results are collected in input order
//! either way — so correctness is unaffected. Swapping back to the real
//! crate is a one-line manifest change.

use std::fmt;

/// Sequential stand-ins for rayon's parallel iterator traits.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSlice};
}

/// Conversion of `&self` into a "parallel" iterator (sequential here).
pub trait IntoParallelRefIterator<'a> {
    /// The iterator type produced.
    type Iter;

    /// Returns an iterator over references; in real rayon this is a
    /// work-stealing parallel iterator, here it is `slice::iter`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        self.as_slice().iter()
    }
}

/// Chunked slice traversal (`par_chunks`).
pub trait ParallelSlice<T> {
    /// Sequential equivalent of rayon's `par_chunks`.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Number of threads the default pool would use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of threads (0 = automatic). Recorded but unused by
    /// this sequential stand-in.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Never fails in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                current_num_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A "thread pool" that runs installed closures inline.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Executes `op` (inline in this stand-in) and returns its result.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Error from [`ThreadPoolBuilder::build`]; never produced here but kept so
/// call-site error handling compiles unchanged.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_chunks_covers_all() {
        let v: Vec<u32> = (0..10).collect();
        let sums: Vec<u32> = v.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 41 + 1), 42);
        assert_eq!(pool.current_num_threads(), 4);
    }
}
