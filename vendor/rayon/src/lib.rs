//! Offline stand-in for the subset of `rayon` this workspace uses, backed
//! by a **real `std::thread` pool**.
//!
//! The build environment cannot fetch crates.io, so this crate reimplements
//! the rayon call-site API (`par_iter`, `par_chunks`, `ThreadPoolBuilder`,
//! `ThreadPool::install`, `current_num_threads`) on top of scoped worker
//! threads: every parallel operation fans out over `N` OS threads that
//! claim chunks of the index range from an atomic work-stealing cursor
//! (the engine lives in `pool.rs`). Guarantees:
//!
//! * **Input order** — `collect` returns results in input order regardless
//!   of which worker computed which item, exactly like rayon's indexed
//!   parallel iterators.
//! * **Bounded concurrency** — [`ThreadPoolBuilder::num_threads`] is a hard
//!   bound: work executed under [`ThreadPool::install`] uses at most that
//!   many worker threads, and nested parallel calls issued from inside a
//!   worker run inline rather than spawning further threads — even when the
//!   nested call installs its own, wider pool (a divergence from real
//!   rayon, where a second pool genuinely adds threads).
//! * **Panic propagation** — a panic in any worker is re-raised on the
//!   calling thread with its original payload after all workers are joined.
//!
//! Workers are spawned per parallel call via `std::thread::scope` (so
//! closures may borrow the caller's stack) rather than parked in a
//! persistent pool; for the coarse-grained batch/shard/wave work in this
//! workspace the spawn cost is noise. Swapping back to the real crate
//! remains a one-line manifest change.

use std::fmt;

mod iter;
mod pool;

pub use iter::{
    Enumerate, IntoParallelRefIterator, Map, ParChunks, ParIter, ParallelIterator, ParallelSlice,
};

/// The traits needed at `par_iter`/`par_chunks` call sites.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator, ParallelSlice};
}

/// Number of threads parallel work issued from this thread may use: the
/// innermost [`ThreadPool::install`] scope's width, or the machine's
/// available parallelism outside any pool.
pub fn current_num_threads() -> usize {
    pool::effective_threads()
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = the machine default). This is
    /// a hard concurrency bound for work installed into the built pool.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Never fails in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                pool::default_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A thread pool: a concurrency budget that [`ThreadPool::install`] scopes
/// onto parallel operations. Worker threads themselves are spawned lazily
/// per parallel call (scoped threads), not parked here.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Executes `op` with this pool's thread budget: every parallel
    /// operation reached from `op` runs on at most
    /// [`ThreadPool::current_num_threads`] worker threads. The budget is
    /// restored when `op` returns or unwinds. Installing from inside
    /// another pool's worker does not escape that pool's bound — the work
    /// still runs inline on the worker.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _scope = pool::enter_pool(self.num_threads);
        op()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Error from [`ThreadPoolBuilder::build`]; never produced here but kept so
/// call-site error handling compiles unchanged.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    fn pool(n: usize) -> super::ThreadPool {
        super::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    }

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_chunks_covers_all() {
        let v: Vec<u32> = (0..10).collect();
        let sums: Vec<u32> = v.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }

    #[test]
    fn enumerate_pairs_input_indices() {
        let v: Vec<u32> = (100..164).collect();
        let pairs: Vec<(usize, u32)> =
            pool(4).install(|| v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect());
        for (i, (idx, x)) in pairs.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*x, 100 + i as u32);
        }
    }

    #[test]
    fn collect_preserves_input_order_under_contention() {
        // Early items sleep longest, so a naive completion-order collect
        // would reverse the prefix; input order must survive anyway.
        let v: Vec<u64> = (0..48).collect();
        let out: Vec<u64> = pool(8).install(|| {
            v.par_iter()
                .map(|&x| {
                    if x < 8 {
                        std::thread::sleep(Duration::from_millis(8 - x));
                    }
                    x * 10
                })
                .collect()
        });
        assert_eq!(out, (0..48).map(|x| x * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn work_runs_on_multiple_os_threads() {
        let ids = Mutex::new(HashSet::new());
        let v: Vec<u32> = (0..16).collect();
        let _: Vec<()> = pool(4).install(|| {
            v.par_iter()
                .map(|_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(Duration::from_millis(5));
                })
                .collect()
        });
        let distinct = ids.lock().unwrap().len();
        assert!(distinct >= 2, "expected >1 OS thread, saw {distinct}");
    }

    #[test]
    fn num_threads_bounds_concurrency() {
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let v: Vec<u32> = (0..32).collect();
        let _: Vec<()> = pool(2).install(|| {
            v.par_iter()
                .map(|_| {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(3));
                    running.fetch_sub(1, Ordering::SeqCst);
                })
                .collect()
        });
        // Only the upper bound is asserted: demanding overlap (peak == 2)
        // flakes on oversubscribed runners where the second worker's spawn
        // can be delayed past the first worker draining the items.
        let peak = peak.load(Ordering::SeqCst);
        assert!(peak <= 2, "pool of 2 ran {peak} items concurrently");
    }

    #[test]
    fn panic_propagates_to_caller() {
        let v: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u32> = pool(4).install(|| {
                v.par_iter()
                    .map(|&x| {
                        if x == 33 {
                            panic!("boom at {x}");
                        }
                        x
                    })
                    .collect()
            });
        });
        let payload = result.expect_err("worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 33"), "unexpected payload: {msg}");
    }

    #[test]
    fn install_scopes_thread_budget() {
        let outside = super::current_num_threads();
        let inside = pool(3).install(super::current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(super::current_num_threads(), outside);
    }

    #[test]
    fn install_restores_budget_on_panic() {
        let outside = super::current_num_threads();
        let _ = std::panic::catch_unwind(|| pool(3).install(|| panic!("unwind")));
        assert_eq!(super::current_num_threads(), outside);
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        // A parallel call from inside a worker must not deadlock or explode
        // the thread count — it runs sequentially on that worker.
        let outer: Vec<u32> = (0..8).collect();
        let sums: Vec<u32> = pool(4).install(|| {
            outer
                .par_iter()
                .map(|&x| {
                    let inner: Vec<u32> = (0..4u32).collect::<Vec<_>>();
                    let parts: Vec<u32> = inner.par_iter().map(|&y| x + y).collect();
                    parts.iter().sum()
                })
                .collect()
        });
        assert_eq!(sums, (0..8).map(|x| 4 * x + 6).collect::<Vec<u32>>());
    }

    #[test]
    fn nested_install_inside_worker_stays_bounded() {
        // A worker that installs its own, wider pool must still run its
        // parallel calls inline: the outer pool's num_threads is a hard
        // bound on total concurrency, not a per-install budget.
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let outer: Vec<u32> = (0..8).collect();
        let _: Vec<()> = pool(2).install(|| {
            outer
                .par_iter()
                .map(|_| {
                    let inner: Vec<u32> = (0..4).collect();
                    let _: Vec<()> = pool(8).install(|| {
                        inner
                            .par_iter()
                            .map(|_| {
                                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                                peak.fetch_max(now, Ordering::SeqCst);
                                std::thread::sleep(Duration::from_millis(2));
                                running.fetch_sub(1, Ordering::SeqCst);
                            })
                            .collect()
                    });
                })
                .collect()
        });
        let peak = peak.load(Ordering::SeqCst);
        assert!(peak <= 2, "outer pool of 2 ran {peak} items concurrently");
    }

    #[test]
    fn empty_input_collects_empty() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let chunks: Vec<usize> = v.par_chunks(4).map(<[u32]>::len).collect();
        assert!(chunks.is_empty());
    }

    #[test]
    fn pool_installs_and_returns() {
        let pool = pool(4);
        assert_eq!(pool.install(|| 41 + 1), 42);
        assert_eq!(pool.current_num_threads(), 4);
    }
}
