//! The execution engine: scoped worker threads pulling chunks of an index
//! range off a shared atomic counter.
//!
//! Every parallel operation in this crate reduces to [`run_indexed`]: map a
//! `Sync` closure over `0..len` and return the results **in index order**.
//! Workers are `std::thread::scope` threads (so they may borrow the
//! caller's stack) that claim contiguous chunks of the index range from an
//! atomic cursor — idle workers keep stealing chunks until the range is
//! exhausted, which balances uneven per-item cost without any queues.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Thread budget installed by the innermost [`crate::ThreadPool::install`]
    /// scope (0 = none; fall back to the machine default).
    static SCOPED_THREADS: Cell<usize> = const { Cell::new(0) };

    /// True on a pool worker thread. Workers must run every nested parallel
    /// call inline — even one routed through a nested
    /// [`crate::ThreadPool::install`], which would otherwise replace the
    /// budget and let `outer × inner` threads run — so the outermost pool's
    /// `num_threads` stays a hard bound on total concurrency.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Width of the default (unscoped) pool: the machine's available
/// parallelism.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Thread budget for parallel calls issued from the current thread: the
/// innermost installed pool's width, or the machine default outside any
/// [`crate::ThreadPool::install`] scope.
pub(crate) fn effective_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let scoped = SCOPED_THREADS.with(Cell::get);
    if scoped == 0 {
        default_threads()
    } else {
        scoped
    }
}

/// RAII guard restoring the previous thread budget (unwind-safe, so a
/// panicking `install` closure cannot leak its budget into the caller).
pub(crate) struct ScopeGuard {
    prev: usize,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPED_THREADS.with(|c| c.set(self.prev));
    }
}

/// Installs `threads` as the current thread's budget until the guard drops.
pub(crate) fn enter_pool(threads: usize) -> ScopeGuard {
    let prev = SCOPED_THREADS.with(|c| c.replace(threads));
    ScopeGuard { prev }
}

/// Maps `f` over `0..len` on up to [`effective_threads`] worker threads and
/// returns the results in index order. A panic in any worker is propagated
/// to the caller with its original payload after all workers are joined.
pub(crate) fn run_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = effective_threads().min(len).max(1);
    if threads == 1 {
        return (0..len).map(f).collect();
    }

    // Chunked work stealing: each idle worker claims the next `chunk`
    // indices from the cursor. Four chunks per worker trades claim overhead
    // against load balance for skewed per-item costs.
    let chunk = (len / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let worker = || -> Vec<(usize, R)> {
        // Nested parallel calls from inside an item run inline (the flag
        // survives nested `install`s), keeping total OS-thread concurrency
        // bounded by `threads`. Worker threads are fresh per call, so the
        // flag needs no reset.
        IN_WORKER.with(|c| c.set(true));
        let mut local = Vec::with_capacity(chunk * 4);
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= len {
                break;
            }
            for i in start..(start + chunk).min(len) {
                local.push((i, f(i)));
            }
        }
        local
    };

    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                // Re-raise the worker's panic on the calling thread; the
                // scope joins the remaining workers during unwind.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
    slots.resize_with(len, || None);
    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("work-stealing cursor covered every index"))
        .collect()
}
