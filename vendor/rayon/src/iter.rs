//! Parallel iterator facade over [`crate::pool::run_indexed`].
//!
//! The subset of rayon's iterator API this workspace uses, with the same
//! source-level shapes: `par_iter().enumerate().map(f).collect()` and
//! `par_chunks(n).map(f).collect()`. Everything is an *indexed* parallel
//! iterator — a length plus a `Sync` per-index producer — so `collect`
//! always returns results in input order no matter which worker computed
//! which item.

use crate::pool::run_indexed;

/// An indexed parallel iterator: `len` items, each computable independently
/// (and concurrently) from its index.
pub trait ParallelIterator: Sized {
    /// The element type produced per index.
    type Item: Send;

    /// Number of items.
    fn par_len(&self) -> usize;

    /// Produces the item at `index`; called concurrently from worker
    /// threads.
    fn par_at(&self, index: usize) -> Self::Item;

    /// Maps each item through `f` (applied on the worker that claims the
    /// item's index).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pairs each item with its input index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Computes every item on the current thread budget and collects them
    /// **in input order**.
    fn collect<C>(self) -> C
    where
        Self: Sync,
        C: FromIterator<Self::Item>,
    {
        run_indexed(self.par_len(), |i| self.par_at(i))
            .into_iter()
            .collect()
    }
}

/// Parallel iterator over `&[T]` (rayon's `par_iter` on slices/Vecs).
#[derive(Debug)]
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T> ParIter<'a, T> {
    pub(crate) fn new(slice: &'a [T]) -> Self {
        ParIter { slice }
    }
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn par_at(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// Parallel iterator over contiguous chunks of a slice (rayon's
/// `par_chunks`); the final chunk may be shorter.
#[derive(Debug)]
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T> ParChunks<'a, T> {
    pub(crate) fn new(slice: &'a [T], size: usize) -> Self {
        assert!(size != 0, "chunk size must be non-zero");
        ParChunks { slice, size }
    }
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn par_at(&self, index: usize) -> &'a [T] {
        let start = index * self.size;
        &self.slice[start..(start + self.size).min(self.slice.len())]
    }
}

/// Result of [`ParallelIterator::map`].
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_at(&self, index: usize) -> R {
        (self.f)(self.base.par_at(index))
    }
}

/// Result of [`ParallelIterator::enumerate`].
#[derive(Debug)]
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_at(&self, index: usize) -> (usize, I::Item) {
        (index, self.base.par_at(index))
    }
}

/// Conversion of `&self` into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The iterator type produced.
    type Iter;

    /// Returns a work-stealing parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter::new(self)
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter::new(self.as_slice())
    }
}

/// Chunked parallel slice traversal (`par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel equivalent of `slice::chunks`.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        ParChunks::new(self, chunk_size)
    }
}
