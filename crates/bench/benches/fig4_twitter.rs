//! Fig. 4 bench: HDRF vs CLUGP on the social-graph analogue (quality
//! series) plus the end-to-end partition+PageRank pipeline timing.

use clugp_bench::algorithms::Algorithm;
use clugp_bench::benchkit::{print_rf_series, social_dataset};
use clugp_bench::experiments::system::pagerank_cost;
use clugp_bench::runner::run_cell;
use criterion::{criterion_group, criterion_main, Criterion};

fn fig4(c: &mut Criterion) {
    let prep = social_dataset();
    print_rf_series(
        "Fig 4(a) RF series",
        &prep,
        &[Algorithm::Hdrf, Algorithm::Clugp],
        &[4, 32, 256],
    );
    for algo in [Algorithm::Clugp, Algorithm::Hdrf] {
        let (cell, pr) = pagerank_cost(&prep, algo, 32, None);
        eprintln!(
            "# Fig 4(b) {}: partition {:.3}s + pagerank(sim) {:.3}s",
            algo.name(),
            cell.partition_secs,
            pr
        );
    }
    let mut group = c.benchmark_group("fig4_twitter_partition");
    group.sample_size(10);
    for algo in [Algorithm::Hdrf, Algorithm::Clugp] {
        group.bench_function(algo.name(), |b| {
            b.iter(|| std::hint::black_box(run_cell(&prep, algo, 32)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
