//! Fig. 11 bench: the parameter studies — imbalance factor τ (a) and
//! relative weight w (b) — with RF sweeps printed and the τ extremes timed.

use clugp_bench::algorithms::{Algorithm, BuildOptions};
use clugp_bench::benchkit::web_dataset;
use clugp_bench::runner::run_cell_with;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig11(c: &mut Criterion) {
    let prep = web_dataset();
    for tau in [1.0f64, 1.05, 1.10] {
        let cell = run_cell_with(
            &prep,
            Algorithm::Clugp,
            32,
            &BuildOptions {
                tau,
                ..Default::default()
            },
        );
        eprintln!(
            "# Fig 11(a) tau={tau:.2}: rf={:.3} balance={:.3}",
            cell.replication_factor, cell.relative_balance
        );
    }
    for w in [0.1f64, 0.5, 0.9] {
        let cell = run_cell_with(
            &prep,
            Algorithm::Clugp,
            32,
            &BuildOptions {
                relative_weight: Some(w),
                ..Default::default()
            },
        );
        eprintln!("# Fig 11(b) w={w:.1}: rf={:.3}", cell.replication_factor);
    }
    let mut group = c.benchmark_group("fig11_tau");
    group.sample_size(10);
    for tau in [1.0f64, 1.10] {
        group.bench_with_input(
            BenchmarkId::new("CLUGP", format!("{tau:.2}")),
            &tau,
            |b, &tau| {
                b.iter(|| {
                    std::hint::black_box(run_cell_with(
                        &prep,
                        Algorithm::Clugp,
                        32,
                        &BuildOptions {
                            tau,
                            ..Default::default()
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
