//! Fig. 5 bench: RF vs sampled graph size (nested edge samples of the web
//! analogue), timing CLUGP on the smallest and largest sample.

use clugp_bench::algorithms::Algorithm;
use clugp_bench::benchkit::web_dataset;
use clugp_bench::runner::{run_cell, PreparedDataset};
use clugp_graph::sampling::nested_edge_samples;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn fig5(c: &mut Criterion) {
    let prep = web_dataset();
    let m = prep.graph.num_edges();
    let sizes = [m / 50, m / 10, m / 2, m];
    let samples = nested_edge_samples(&prep.graph, &sizes, 0x5A3);
    let preps: Vec<PreparedDataset> = samples
        .iter()
        .enumerate()
        .map(|(i, g)| {
            PreparedDataset::from_graph(&format!("sample-{}", sizes[i]), Arc::new(g.clone()))
        })
        .collect();
    for (i, p) in preps.iter().enumerate() {
        let cell = run_cell(p, Algorithm::Clugp, 32);
        eprintln!(
            "# Fig 5 sample |E|={}: CLUGP rf={:.3}",
            sizes[i], cell.replication_factor
        );
    }
    let mut group = c.benchmark_group("fig5_sample_partition");
    group.sample_size(10);
    for (i, p) in preps.iter().enumerate().step_by(3) {
        group.bench_with_input(BenchmarkId::new("CLUGP", sizes[i]), p, |b, p| {
            b.iter(|| std::hint::black_box(run_cell(p, Algorithm::Clugp, 32)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
