//! Fig. 6 bench: working-state memory of each algorithm vs k (printed), and
//! the cost of the replica-table operations that dominate the heuristics'
//! footprint.

use clugp::state::ReplicaTable;
use clugp_bench::algorithms::Algorithm;
use clugp_bench::benchkit::web_dataset;
use clugp_bench::runner::run_cell;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig6(c: &mut Criterion) {
    let prep = web_dataset();
    for algo in Algorithm::COMPETITORS {
        let series: Vec<String> = [8u32, 64, 256]
            .iter()
            .map(|&k| {
                let cell = run_cell(&prep, algo, k);
                format!(
                    "k{}={:.2}MiB",
                    k,
                    cell.memory_bytes as f64 / (1024.0 * 1024.0)
                )
            })
            .collect();
        eprintln!("# Fig 6 {:<8} {}", algo.name(), series.join(" "));
    }
    let mut group = c.benchmark_group("fig6_replica_table");
    for k in [64u32, 256] {
        group.bench_with_input(BenchmarkId::new("insert_1M", k), &k, |b, &k| {
            b.iter(|| {
                let mut t = ReplicaTable::new(100_000, k).unwrap();
                for i in 0..1_000_000u32 {
                    t.insert(i % 100_000, i % k);
                }
                std::hint::black_box(t.total_replicas())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
