//! Fig. 3 bench: replication-factor sweep over k on a web graph. Prints the
//! full RF series (the figure's content) and times the two quality leaders
//! at both ends of the k sweep.

use clugp_bench::algorithms::Algorithm;
use clugp_bench::benchkit::{print_rf_series, web_dataset};
use clugp_bench::runner::run_cell;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig3(c: &mut Criterion) {
    let prep = web_dataset();
    print_rf_series(
        "Fig 3 RF series",
        &prep,
        &Algorithm::COMPETITORS,
        &[4, 16, 64, 256],
    );
    let mut group = c.benchmark_group("fig3_partition");
    group.sample_size(10);
    for algo in [Algorithm::Clugp, Algorithm::Hdrf] {
        for k in [16u32, 256] {
            group.bench_with_input(BenchmarkId::new(algo.name(), k), &k, |b, &k| {
                b.iter(|| std::hint::black_box(run_cell(&prep, algo, k)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
