//! Fig. 7 bench — the paper's scalability headline: partitioning runtime vs
//! number of partitions. CLUGP should be nearly flat in k while HDRF/Greedy
//! grow (their inner loops are O(k) per edge).

use clugp_bench::algorithms::Algorithm;
use clugp_bench::benchkit::web_dataset;
use clugp_bench::runner::run_cell;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig7(c: &mut Criterion) {
    let prep = web_dataset();
    let mut group = c.benchmark_group("fig7_runtime_vs_k");
    group.sample_size(10);
    for algo in [
        Algorithm::Clugp,
        Algorithm::Hdrf,
        Algorithm::Greedy,
        Algorithm::Hashing,
    ] {
        for k in [4u32, 64, 256] {
            group.bench_with_input(BenchmarkId::new(algo.name(), k), &k, |b, &k| {
                b.iter(|| std::hint::black_box(run_cell(&prep, algo, k)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
