//! Fig. 10 bench: the parallel cluster-partitioning game — thread scaling
//! (a) and batch-size sensitivity (b).

use clugp_bench::algorithms::{Algorithm, BuildOptions};
use clugp_bench::benchkit::heavy_dataset;
use clugp_bench::runner::run_cell_with;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig10(c: &mut Criterion) {
    let prep = heavy_dataset();
    let mut group = c.benchmark_group("fig10_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("CLUGP", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    std::hint::black_box(run_cell_with(
                        &prep,
                        Algorithm::Clugp,
                        32,
                        &BuildOptions {
                            threads,
                            ..Default::default()
                        },
                    ))
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("fig10_batch_size");
    group.sample_size(10);
    for batch in [640usize, 3200, 6400] {
        let cell = run_cell_with(
            &prep,
            Algorithm::Clugp,
            32,
            &BuildOptions {
                batch_size: batch,
                ..Default::default()
            },
        );
        eprintln!(
            "# Fig 10(b) batch={batch}: rf={:.3}",
            cell.replication_factor
        );
        group.bench_with_input(BenchmarkId::new("CLUGP", batch), &batch, |b, &batch| {
            b.iter(|| {
                std::hint::black_box(run_cell_with(
                    &prep,
                    Algorithm::Clugp,
                    32,
                    &BuildOptions {
                        batch_size: batch,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
