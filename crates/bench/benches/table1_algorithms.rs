//! Table I bench: end-to-end partitioning time of each streaming algorithm
//! at k = 32 (the paper's qualitative Time-Cost column, measured).

use clugp_bench::algorithms::Algorithm;
use clugp_bench::benchkit::{print_rf_series, web_dataset};
use clugp_bench::runner::run_cell;
use criterion::{criterion_group, criterion_main, Criterion};

fn table1(c: &mut Criterion) {
    let prep = web_dataset();
    print_rf_series("Table I quality", &prep, &Algorithm::COMPETITORS, &[32]);
    let mut group = c.benchmark_group("table1_partition_time");
    group.sample_size(10);
    for algo in Algorithm::COMPETITORS {
        group.bench_function(algo.name(), |b| {
            b.iter(|| std::hint::black_box(run_cell(&prep, algo, 32)))
        });
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
