//! Fig. 8 bench: the GAS-simulator PageRank pipeline — placement plus ten
//! supersteps — under CLUGP and Hashing partitionings, with the
//! communication volumes printed.

use clugp_bench::algorithms::Algorithm;
use clugp_bench::benchkit::web_dataset;
use clugp_bench::experiments::system::pagerank_estimate;
use clugp_engine::apps::PageRank;
use clugp_engine::{DistributedGraph, Engine};
use clugp_graph::stream::InMemoryStream;
use criterion::{criterion_group, criterion_main, Criterion};

fn fig8(c: &mut Criterion) {
    let prep = web_dataset();
    for algo in [Algorithm::Clugp, Algorithm::Hashing, Algorithm::Hdrf] {
        let (_, est) = pagerank_estimate(&prep, algo, 32, None);
        eprintln!(
            "# Fig 8 {}: volume={}B messages={} est-runtime={:.3}s",
            algo.name(),
            est.total_bytes,
            est.total_messages,
            est.total_secs()
        );
    }

    // Bench the engine execution itself on a fixed placement.
    let edges = prep.edges_for(Algorithm::Clugp).to_vec();
    let mut stream = InMemoryStream::new(prep.graph.num_vertices(), edges.clone());
    let mut algo = Algorithm::Clugp.build();
    let run = algo.partition(&mut stream, 32).expect("partition");
    let placed = DistributedGraph::place(&edges, &run.partitioning);

    let mut group = c.benchmark_group("fig8_engine");
    group.sample_size(10);
    group.bench_function("place_k32", |b| {
        b.iter(|| std::hint::black_box(DistributedGraph::place(&edges, &run.partitioning)))
    });
    group.bench_function("pagerank_10_iters", |b| {
        let engine = Engine::new(&placed);
        b.iter(|| std::hint::black_box(engine.run(&PageRank::default())))
    });
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
