//! Table III bench: generation and analysis cost of each dataset analogue.

use clugp_bench::benchkit::bench_scale;
use clugp_bench::datasets::Dataset;
use criterion::{criterion_group, criterion_main, Criterion};

fn table3(c: &mut Criterion) {
    let scale = bench_scale();
    for ds in Dataset::ALL {
        let g = ds.generate(scale);
        let s = clugp_graph::analysis::summarize(&g);
        eprintln!(
            "# {}: |V|={} |E|={} alpha={:.2} components={}",
            ds.name(),
            s.num_vertices,
            s.num_edges,
            s.alpha,
            s.components
        );
    }
    let mut group = c.benchmark_group("table3_generate");
    group.sample_size(10);
    for ds in [Dataset::UkS, Dataset::TwitterS] {
        group.bench_function(ds.name(), |b| {
            b.iter(|| std::hint::black_box(ds.generate(scale)))
        });
    }
    group.bench_function("summarize_uk", |b| {
        let g = Dataset::UkS.generate(scale);
        b.iter(|| std::hint::black_box(clugp_graph::analysis::summarize(&g)))
    });
    group.finish();
}

criterion_group!(benches, table3);
criterion_main!(benches);
