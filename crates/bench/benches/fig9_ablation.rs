//! Fig. 9 bench: the ablations — splitting off (CLUGP-S), game off
//! (CLUGP-G) — and the migration-policy design ablation, with RF series
//! printed and the variants timed.

use clugp::clugp::{Clugp, ClugpConfig, MigrationPolicy};
use clugp::metrics::PartitionQuality;
use clugp::partitioner::Partitioner;
use clugp_bench::algorithms::Algorithm;
use clugp_bench::benchkit::{heavy_dataset, print_rf_series};
use clugp_bench::runner::run_cell;
use clugp_graph::stream::InMemoryStream;
use criterion::{criterion_group, criterion_main, Criterion};

fn fig9(c: &mut Criterion) {
    let prep = heavy_dataset();
    print_rf_series(
        "Fig 9 ablations",
        &prep,
        &Algorithm::ABLATIONS,
        &[4, 32, 256],
    );
    for (label, policy) in [
        ("anchored", MigrationPolicy::Anchored),
        ("headroom", MigrationPolicy::Headroom),
        ("paper", MigrationPolicy::Paper),
    ] {
        let edges = prep.edges_for(Algorithm::Clugp);
        let mut stream = InMemoryStream::new(prep.graph.num_vertices(), edges.to_vec());
        let mut algo = Clugp::new(ClugpConfig {
            migration: policy,
            ..Default::default()
        });
        let run = algo.partition(&mut stream, 32).unwrap();
        let q = PartitionQuality::compute(edges, &run.partitioning);
        eprintln!(
            "# Fig 9(ext) migration={label}: rf={:.3}",
            q.replication_factor
        );
    }
    let mut group = c.benchmark_group("fig9_variants");
    group.sample_size(10);
    for algo in Algorithm::ABLATIONS {
        group.bench_function(algo.name(), |b| {
            b.iter(|| std::hint::black_box(run_cell(&prep, algo, 32)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
