//! Table printing and result export.
//!
//! Every experiment prints an aligned table (the "same rows/series the
//! paper reports") and writes a CSV plus a JSON provenance blob under
//! `results/`.

use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self::new_owned(title, headers.iter().map(|s| s.to_string()).collect())
    }

    /// Creates a table with owned (computed) column headers.
    pub fn new_owned(title: &str, headers: Vec<String>) -> Self {
        Table {
            title: title.to_string(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV.
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()
    }
}

/// Directory where experiment outputs are written (`results/` by default,
/// override with `CLUGP_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var("CLUGP_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Saves any serializable payload as pretty JSON under the results dir.
pub fn save_json<T: serde::Serialize>(name: &str, payload: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(payload).expect("serializable payload");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.0}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats bytes as MiB/GiB.
pub fn fmt_bytes(b: u64) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    let b = b as f64;
    if b >= 1024.0 * MIB {
        format!("{:.2}GiB", b / (1024.0 * MIB))
    } else {
        format!("{:.2}MiB", b / MIB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["algo", "rf"]);
        t.row(vec!["CLUGP".into(), "1.50".into()]);
        t.row(vec!["H".into(), "10.25".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("CLUGP"));
        let lines: Vec<&str> = r.lines().collect();
        // All data lines have equal length after alignment.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("clugp_report_test");
        let path = dir.join("t.csv");
        t.save_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(0.0000005), "0us");
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MiB");
        assert!(fmt_bytes(3 * 1024 * 1024 * 1024).ends_with("GiB"));
    }

    #[test]
    fn table_len() {
        let mut t = Table::new("x", &["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
