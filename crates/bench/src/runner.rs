//! Runs one `(dataset, algorithm, k)` experiment cell and collects the
//! measurements every figure consumes.

use crate::algorithms::{Algorithm, BuildOptions};
use crate::datasets::Dataset;
use clugp::metrics::PartitionQuality;
use clugp_graph::csr::CsrGraph;
use clugp_graph::order::{ordered_edges, StreamOrder};
use clugp_graph::stream::InMemoryStream;
use clugp_graph::types::Edge;
use serde::Serialize;
use std::sync::Arc;

/// A dataset with both stream orders materialized once.
pub struct PreparedDataset {
    /// Dataset name (e.g. `uk-s`).
    pub name: String,
    /// The underlying graph.
    pub graph: Arc<CsrGraph>,
    bfs: Vec<Edge>,
    random: Vec<Edge>,
}

impl PreparedDataset {
    /// Loads (or reuses) the dataset at `scale` and materializes its BFS
    /// and random edge orders.
    pub fn load(dataset: Dataset, scale: f64) -> Self {
        let graph = crate::datasets::load(dataset, scale);
        PreparedDataset::from_graph(dataset.name(), graph)
    }

    /// Prepares an arbitrary graph (used by the sampling experiment).
    pub fn from_graph(name: &str, graph: Arc<CsrGraph>) -> Self {
        let bfs = ordered_edges(&graph, StreamOrder::Bfs);
        let random = ordered_edges(&graph, StreamOrder::Random(0x5EED));
        PreparedDataset {
            name: name.to_string(),
            graph,
            bfs,
            random,
        }
    }

    /// The edge stream this algorithm gets (its best order, per the paper).
    pub fn edges_for(&self, algo: Algorithm) -> &[Edge] {
        match algo.stream_order() {
            StreamOrder::Bfs => &self.bfs,
            _ => &self.random,
        }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.bfs.len() as u64
    }
}

/// Measurements from one experiment cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of partitions.
    pub k: u32,
    /// Replication factor (paper Eq. 1).
    pub replication_factor: f64,
    /// Relative load balance `k·max|p_i|/|E|`.
    pub relative_balance: f64,
    /// End-to-end partitioning wall time in seconds.
    pub partition_secs: f64,
    /// Peak working-state bytes (Fig. 6 quantity).
    pub memory_bytes: usize,
    /// Named phase durations in seconds (CLUGP's four passes).
    pub phases: Vec<(String, f64)>,
}

/// Runs `algo` on `prep` with `k` partitions and default options.
pub fn run_cell(prep: &PreparedDataset, algo: Algorithm, k: u32) -> CellResult {
    run_cell_with(prep, algo, k, &BuildOptions::default())
}

/// Runs with explicit [`BuildOptions`] (parameter-sweep figures).
pub fn run_cell_with(
    prep: &PreparedDataset,
    algo: Algorithm,
    k: u32,
    opts: &BuildOptions,
) -> CellResult {
    let edges = prep.edges_for(algo);
    let mut stream = InMemoryStream::new(prep.graph.num_vertices(), edges.to_vec());
    let mut partitioner = algo.build_with(opts);
    let run = partitioner
        .partition(&mut stream, k)
        .expect("partitioning failed on a generated dataset");
    let quality = PartitionQuality::compute(edges, &run.partitioning);
    CellResult {
        dataset: prep.name.clone(),
        algorithm: algo.name().to_string(),
        k,
        replication_factor: quality.replication_factor,
        relative_balance: quality.relative_balance,
        partition_secs: run.timings.total.as_secs_f64(),
        memory_bytes: run.memory.total_bytes(),
        phases: run
            .timings
            .phases
            .iter()
            .map(|(n, d)| (n.to_string(), d.as_secs_f64()))
            .collect(),
    }
}

/// The k sweep of the paper's figures, overridable via `CLUGP_KS`
/// (comma-separated).
pub fn k_sweep() -> Vec<u32> {
    if let Ok(ks) = std::env::var("CLUGP_KS") {
        let parsed: Vec<u32> = ks
            .split(',')
            .filter_map(|x| x.trim().parse().ok())
            .filter(|&x| x > 0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    vec![4, 8, 16, 32, 64, 128, 256]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PreparedDataset {
        PreparedDataset::load(Dataset::UkS, 0.02)
    }

    #[test]
    fn cell_produces_sane_metrics() {
        let prep = tiny();
        let cell = run_cell(&prep, Algorithm::Hashing, 4);
        assert_eq!(cell.k, 4);
        assert!(cell.replication_factor >= 1.0);
        assert!(cell.relative_balance >= 1.0);
        assert!(cell.partition_secs > 0.0);
    }

    #[test]
    fn clugp_cell_has_phases() {
        let prep = tiny();
        let cell = run_cell(&prep, Algorithm::Clugp, 4);
        assert_eq!(cell.phases.len(), 4);
        assert_eq!(cell.algorithm, "CLUGP");
    }

    #[test]
    fn orders_differ_between_algorithms() {
        let prep = tiny();
        let a = prep.edges_for(Algorithm::Hdrf);
        let b = prep.edges_for(Algorithm::Clugp);
        assert_eq!(a.len(), b.len());
        assert_ne!(a[..10], b[..10]);
    }

    #[test]
    fn default_k_sweep() {
        // Only check the default path (env-dependent branches are covered
        // by the binary's own integration usage).
        if std::env::var("CLUGP_KS").is_err() {
            assert_eq!(k_sweep(), vec![4, 8, 16, 32, 64, 128, 256]);
        }
    }
}
