//! Experiment driver: regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! experiments <id> [<id> ...]      run specific experiments
//! experiments all                  run everything in paper order
//! experiments --quick <id>         reduced scale + short k sweep
//! ```
//!
//! ids: table1 table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
//! orders parallel throughput memory io ampc all
//!
//! Environment: `CLUGP_SCALE` (dataset scale multiplier, default 1.0),
//! `CLUGP_KS` (comma-separated partition counts), `CLUGP_RESULTS_DIR`
//! (output directory, default `results/`).

use clugp_bench::experiments::{self, ExpContext};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    if ids.is_empty() {
        eprintln!(
            "usage: experiments [--quick] <table1|table3|fig3|...|fig11|orders|parallel|throughput|memory|io|ampc|all>"
        );
        std::process::exit(2);
    }
    let ctx = if quick {
        ExpContext::quick()
    } else {
        ExpContext::default()
    };
    println!(
        "# CLUGP reproduction experiments (scale={}, ks={:?})",
        ctx.scale, ctx.ks
    );
    let started = std::time::Instant::now();
    for id in ids {
        let t = std::time::Instant::now();
        match id {
            "all" => experiments::run_all(&ctx),
            "table1" => experiments::tables::table1(&ctx),
            "table3" => experiments::tables::table3(&ctx),
            "fig3" => experiments::quality::fig3(&ctx),
            "fig4" => experiments::quality::fig4(&ctx),
            "fig5" => experiments::quality::fig5(&ctx),
            "fig6" => experiments::scalability::fig6(&ctx),
            "fig7" => experiments::scalability::fig7(&ctx),
            "fig8" => experiments::system::fig8(&ctx),
            "fig9" => experiments::quality::fig9(&ctx),
            "fig10" => experiments::scalability::fig10(&ctx),
            "fig11" => experiments::quality::fig11(&ctx),
            "orders" => experiments::orders::orders(&ctx),
            "parallel" => experiments::scalability::parallel(&ctx),
            "throughput" => experiments::throughput::throughput(&ctx),
            "memory" => experiments::memory::memory(&ctx),
            "io" => experiments::io::io(&ctx),
            "ampc" => experiments::ampc::ampc(&ctx),
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        }
        println!("[{id} done in {:.1}s]\n", t.elapsed().as_secs_f64());
    }
    println!(
        "# all requested experiments done in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
