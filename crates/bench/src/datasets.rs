//! Synthetic analogues of the paper's datasets (Table III).
//!
//! Paper corpora vs. our analogues (scale ≈ 1/256 of |V| by default; the
//! `|E|/|V|` ratios match the originals):
//!
//! | Alias     | Paper source    | Paper |V|, |E|   | Analogue (scale=1.0) |
//! |-----------|-----------------|-------------------|----------------------|
//! | uk-s      | uk-2002         | 19M, 0.30B        | web crawl, 74k, ~1.2M |
//! | arabic-s  | arabic-2005     | 22M, 0.60B        | web crawl, 86k, ~2.3M |
//! | webbase-s | webbase-2001    | 118M, 1.0B        | web crawl, 230k, ~2.0M |
//! | it-s      | it-2004         | 41M, 1.5B         | web crawl, 160k, ~5.9M |
//! | twitter-s | twitter         | 41M, 1.4B         | BA social, 160k, ~5.4M |
//!
//! Web analogues use the site-structured crawl generator (power-law sites,
//! ~88% intra-site links, power-law in/out degrees); the Twitter analogue is
//! preferential attachment with no site locality — the property split the
//! paper leans on when explaining Fig. 3 vs Fig. 4.

use clugp_graph::csr::CsrGraph;
use clugp_graph::gen::{generate_ba, generate_web_crawl, BaConfig, WebCrawlConfig};
use clugp_graph::idmap::{scramble_edges, IdMap};
use clugp_graph::types::{Edge, RawEdge};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Identifiers of the evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// uk-2002 analogue.
    UkS,
    /// arabic-2005 analogue.
    ArabicS,
    /// webbase-2001 analogue.
    WebBaseS,
    /// it-2004 analogue.
    ItS,
    /// twitter analogue (social graph, no crawl locality).
    TwitterS,
}

impl Dataset {
    /// The four web-graph analogues of Fig. 3 / Fig. 8.
    pub const WEB: [Dataset; 4] = [
        Dataset::UkS,
        Dataset::ArabicS,
        Dataset::WebBaseS,
        Dataset::ItS,
    ];

    /// All five datasets.
    pub const ALL: [Dataset; 5] = [
        Dataset::UkS,
        Dataset::ArabicS,
        Dataset::WebBaseS,
        Dataset::ItS,
        Dataset::TwitterS,
    ];

    /// Short name used in tables and CSV files.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::UkS => "uk-s",
            Dataset::ArabicS => "arabic-s",
            Dataset::WebBaseS => "webbase-s",
            Dataset::ItS => "it-s",
            Dataset::TwitterS => "twitter-s",
        }
    }

    /// The paper dataset this analogue substitutes.
    pub fn paper_source(&self) -> &'static str {
        match self {
            Dataset::UkS => "uk-2002",
            Dataset::ArabicS => "arabic-2005",
            Dataset::WebBaseS => "webbase-2001",
            Dataset::ItS => "it-2004",
            Dataset::TwitterS => "twitter",
        }
    }

    /// Base vertex count at `scale = 1.0`.
    fn base_vertices(&self) -> u64 {
        match self {
            Dataset::UkS => 74_000,
            Dataset::ArabicS => 86_000,
            Dataset::WebBaseS => 230_000,
            Dataset::ItS => 160_000,
            Dataset::TwitterS => 160_000,
        }
    }

    /// Mean degree matching the paper's `|E|/|V|` ratio.
    fn mean_degree(&self) -> f64 {
        match self {
            Dataset::UkS => 15.8,
            Dataset::ArabicS => 27.0,
            Dataset::WebBaseS => 8.5,
            Dataset::ItS => 36.6,
            Dataset::TwitterS => 34.0,
        }
    }

    /// Generates the graph at the given scale (multiplier on |V|).
    pub fn generate(&self, scale: f64) -> CsrGraph {
        let vertices = ((self.base_vertices() as f64 * scale) as u64).max(1_000);
        match self {
            Dataset::TwitterS => generate_ba(&BaConfig {
                vertices,
                edges_per_vertex: self.mean_degree() as u64,
                seed: 0x07_717_7e4,
            }),
            web => generate_web_crawl(&WebCrawlConfig {
                vertices,
                mean_out_degree: web.mean_degree(),
                intra_site_fraction: 0.88,
                site_size_alpha: 1.8,
                min_site_size: 32,
                max_site_size: 1 << 14,
                out_degree_alpha: 2.1,
                max_out_degree: 1 << 12,
                seed: match web {
                    Dataset::UkS => 0x2002,
                    Dataset::ArabicS => 0xA2AB1C,
                    Dataset::WebBaseS => 0x3EBBA5E,
                    Dataset::ItS => 0x172004,
                    Dataset::TwitterS => unreachable!(),
                },
            }),
        }
    }
}

/// Name of the sparse-id web dataset (see [`sparse_web_raw`]).
pub const SPARSE_WEB: &str = "sparse-web";

/// The `sparse-web` dataset: the uk-s web-crawl analogue in BFS stream
/// order, with every vertex id scrambled to a sparse pseudo-random 64-bit
/// external id (standing in for hashed URLs / crawl ids, the form web
/// corpora actually ship in). The scramble is bijective, so the graph is
/// isomorphic to the dense uk-s stream — which is what makes the
/// remap-vs-dense bit-identity check meaningful.
///
/// The seed code could not run this dataset at all: ids beyond `u32` do not
/// fit the dense grow-on-demand tables (a naive dense layout would need
/// `(max id + 1) × 4` bytes ≈ tens of exabytes). It partitions through
/// `clugp_graph::idmap::RemappedStream`.
pub fn sparse_web_raw(scale: f64) -> Vec<RawEdge> {
    use clugp_graph::order::{ordered_edges, StreamOrder};
    let g = load(Dataset::UkS, scale);
    scramble_edges(&ordered_edges(&g, StreamOrder::Bfs))
}

/// First-appearance dense relabeling of a dense edge stream: the reference
/// a remapped sparse run must match bit-for-bit (remap interns external ids
/// in exactly this order). Returns `(distinct vertices, relabeled edges)`.
pub fn relabel_first_appearance(edges: &[Edge]) -> (u64, Vec<Edge>) {
    let mut map = IdMap::remap();
    let relabeled: Vec<Edge> = edges
        .iter()
        .map(|e| {
            let src = map.intern(u64::from(e.src)).expect("within default cap");
            let dst = map.intern(u64::from(e.dst)).expect("within default cap");
            Edge::new(src, dst)
        })
        .collect();
    (map.len(), relabeled)
}

/// Opens an on-disk dataset file as a resettable edge stream, auto-detecting
/// the format from its magic bytes (`CLUGPGR1` flat binary, `CLUGPZ01`
/// compressed pack, anything else text) — extensions are never consulted.
/// This is how the bench harness consumes materialized dataset files (the
/// `experiments io` sweep drives all three formats through it).
pub fn open_edge_stream(
    path: &std::path::Path,
) -> clugp_graph::Result<Box<dyn clugp_graph::stream::RestreamableStream>> {
    clugp_graph::io::open_edge_stream(path)
}

/// The global scale factor, read once from `CLUGP_SCALE` (default 1.0).
pub fn scale() -> f64 {
    static SCALE: OnceLock<f64> = OnceLock::new();
    *SCALE.get_or_init(|| {
        std::env::var("CLUGP_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|s: &f64| *s > 0.0)
            .unwrap_or(1.0)
    })
}

/// Cached graph access: generates once per `(dataset, permille-scale)` and
/// reuses across experiments in the same process.
pub fn load(dataset: Dataset, scale: f64) -> std::sync::Arc<CsrGraph> {
    type Cache = Mutex<HashMap<(Dataset, u64), std::sync::Arc<CsrGraph>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let key = (dataset, (scale * 1000.0) as u64);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(g) = cache.lock().unwrap().get(&key) {
        return g.clone();
    }
    let g = std::sync::Arc::new(dataset.generate(scale));
    cache.lock().unwrap().insert(key, g.clone());
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_sources() {
        assert_eq!(Dataset::UkS.name(), "uk-s");
        assert_eq!(Dataset::ItS.paper_source(), "it-2004");
        assert_eq!(Dataset::ALL.len(), 5);
        assert_eq!(Dataset::WEB.len(), 4);
    }

    #[test]
    fn tiny_scale_generates_quickly() {
        let g = Dataset::UkS.generate(0.02);
        assert!(g.num_vertices() >= 1_000);
        assert!(g.num_edges() > g.num_vertices());
    }

    #[test]
    fn twitter_is_social_shaped() {
        let g = Dataset::TwitterS.generate(0.02);
        // BA: ~m edges per vertex.
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(mean > 20.0, "mean degree {mean}");
    }

    #[test]
    fn sparse_web_ids_are_sparse_and_isomorphic() {
        let raw = sparse_web_raw(0.02);
        assert!(!raw.is_empty());
        // Hashed ids leave the u32 range (the seed layout cannot hold them).
        assert!(raw
            .iter()
            .any(|e| e.src > u64::from(u32::MAX) || e.dst > u64::from(u32::MAX)));
        // Bijective scramble: distinct raw ids == distinct dense ids.
        let mut ids: Vec<u64> = raw.iter().flat_map(|e| [e.src, e.dst]).collect();
        ids.sort_unstable();
        ids.dedup();
        use clugp_graph::order::{ordered_edges, StreamOrder};
        let g = load(Dataset::UkS, 0.02);
        let dense = ordered_edges(&g, StreamOrder::Bfs);
        let (distinct, relabeled) = relabel_first_appearance(&dense);
        assert_eq!(ids.len() as u64, distinct);
        assert_eq!(relabeled.len(), raw.len());
    }

    #[test]
    fn relabel_is_dense_and_order_preserving() {
        let edges = vec![Edge::new(9, 4), Edge::new(4, 9), Edge::new(7, 9)];
        let (n, relabeled) = relabel_first_appearance(&edges);
        assert_eq!(n, 3);
        assert_eq!(
            relabeled,
            vec![Edge::new(0, 1), Edge::new(1, 0), Edge::new(2, 0)]
        );
    }

    #[test]
    fn open_edge_stream_detects_all_formats_by_magic() {
        use clugp_graph::order::{ordered_edges, StreamOrder};
        use clugp_graph::stream::collect_stream;
        let g = load(Dataset::UkS, 0.02);
        let edges = clugp_graph::pack::canonical_order(&ordered_edges(&g, StreamOrder::Bfs));
        let dir = std::env::temp_dir().join("clugp_bench_sniff");
        std::fs::create_dir_all(&dir).unwrap();
        // Extensions deliberately shuffled: only the magic matters.
        let bin = dir.join("a.clugpz");
        let packed = dir.join("a.txt");
        let text = dir.join("a.bin");
        clugp_graph::io::write_binary_graph(&bin, g.num_vertices(), &edges).unwrap();
        clugp_graph::pack::write_pack(
            &packed,
            g.num_vertices(),
            &edges,
            &clugp_graph::pack::PackOptions::default(),
        )
        .unwrap();
        clugp_graph::io::write_edge_list(&text, &edges).unwrap();
        for p in [&bin, &packed, &text] {
            let mut s = open_edge_stream(p).unwrap();
            assert_eq!(collect_stream(s.as_mut()), edges, "{}", p.display());
        }
        for p in [bin, packed, text] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn cache_returns_same_graph() {
        let a = load(Dataset::UkS, 0.02);
        let b = load(Dataset::UkS, 0.02);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
    }
}
