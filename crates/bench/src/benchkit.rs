//! Shared utilities for the Criterion benches: fixed small-scale datasets
//! so `cargo bench --workspace` completes in minutes while exercising the
//! same code paths as the full experiment harness.

use crate::algorithms::Algorithm;
use crate::datasets::Dataset;
use crate::runner::{run_cell, PreparedDataset};

/// Scale used by Criterion benches (`CLUGP_BENCH_SCALE` to override).
pub fn bench_scale() -> f64 {
    std::env::var("CLUGP_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(0.03)
}

/// The standard web-graph bench input (uk-s analogue at bench scale).
pub fn web_dataset() -> PreparedDataset {
    PreparedDataset::load(Dataset::UkS, bench_scale())
}

/// The heavy web-graph bench input (it-s analogue at bench scale).
pub fn heavy_dataset() -> PreparedDataset {
    PreparedDataset::load(Dataset::ItS, bench_scale())
}

/// The social-graph bench input (twitter analogue at bench scale).
pub fn social_dataset() -> PreparedDataset {
    PreparedDataset::load(Dataset::TwitterS, bench_scale())
}

/// Prints a compact replication-factor series for a figure (so bench logs
/// double as quality snapshots).
pub fn print_rf_series(title: &str, prep: &PreparedDataset, algos: &[Algorithm], ks: &[u32]) {
    eprintln!("# {title} ({}, |E|={})", prep.name, prep.num_edges());
    for &algo in algos {
        let series: Vec<String> = ks
            .iter()
            .map(|&k| format!("k{}={:.3}", k, run_cell(prep, algo, k).replication_factor))
            .collect();
        eprintln!("#   {:<8} {}", algo.name(), series.join(" "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_datasets_load() {
        let w = web_dataset();
        assert!(w.num_edges() > 0);
    }
}
