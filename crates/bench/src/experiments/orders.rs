//! Extra experiment (not a paper figure): stream-order sensitivity.
//!
//! The paper grants each algorithm its *best* order (footnote in §VI-A) but
//! never shows the cross-product. This sweep measures every algorithm under
//! every order — the experiment that justifies the per-algorithm order
//! table in [`crate::algorithms`], and a direct replication of the
//! order-sensitivity methodology of Abbas et al. (VLDB'18).

use super::ExpContext;
use crate::algorithms::Algorithm;
use crate::datasets::Dataset;
use crate::report::{results_dir, save_json, Table};
use clugp::metrics::PartitionQuality;
use clugp_graph::order::{ordered_edges, StreamOrder};
use clugp_graph::stream::InMemoryStream;
use serde::Serialize;

#[derive(Serialize)]
struct OrderCell {
    algorithm: &'static str,
    order: &'static str,
    replication_factor: f64,
    relative_balance: f64,
}

/// RF of every algorithm under every stream order (uk-s analogue, k = 32).
pub fn orders(ctx: &ExpContext) {
    let graph = crate::datasets::load(Dataset::UkS, ctx.scale);
    let k = 32;
    let orders: [(&'static str, StreamOrder); 4] = [
        ("BFS", StreamOrder::Bfs),
        ("DFS", StreamOrder::Dfs),
        ("Random", StreamOrder::Random(0x5EED)),
        ("AsIs", StreamOrder::AsIs),
    ];
    let mut table = Table::new_owned("Extra — RF vs stream order (uk-s, k=32)", {
        let mut h = vec!["Algorithm".to_string()];
        h.extend(orders.iter().map(|(n, _)| n.to_string()));
        h
    });
    let mut json = Vec::new();
    for algo in Algorithm::COMPETITORS {
        let mut row = vec![algo.name().to_string()];
        for &(oname, order) in &orders {
            let edges = ordered_edges(&graph, order);
            let mut stream = InMemoryStream::new(graph.num_vertices(), edges.clone());
            let mut partitioner = algo.build();
            let run = partitioner.partition(&mut stream, k).expect("partition");
            let q = PartitionQuality::compute(&edges, &run.partitioning);
            row.push(format!(
                "{:.3}/{:.2}",
                q.replication_factor, q.relative_balance
            ));
            json.push(OrderCell {
                algorithm: algo.name(),
                order: oname,
                replication_factor: q.replication_factor,
                relative_balance: q.relative_balance,
            });
        }
        table.row(row);
    }
    println!("(cells are RF/balance; the paper's per-algorithm best orders are the diagonal of this study)");
    table.print();
    table.save_csv(&results_dir().join("extra_orders.csv")).ok();
    save_json("extra_orders", &json).ok();
}
