//! BENCH_io — the on-disk storage sweep (`results/BENCH_io.{json,csv}`).
//!
//! A Fig. 10(a)-style I/O study over the three on-disk representations of
//! the same canonical edge sequence — text edge list, flat binary
//! (`CLUGPGR1`, 8 B/edge), and the block-compressed pack (`CLUGPZ01`, see
//! `clugp_graph::pack`) — on the uk-s web-crawl and twitter-s social
//! analogues:
//!
//! * **bytes/edge** of each materialized file (the storage claim: the pack
//!   must land well under the flat format's fixed 8.0 on web graphs);
//! * **decode throughput** (edges/s, best-of-repeats) draining each file
//!   through the format-auto-detecting dataset layer with the standard
//!   chunked pulls, with a position-sensitive checksum proving the three
//!   files replay the identical sequence;
//! * a **partition leg**: CLUGP, HDRF, and Hashing each partition the flat
//!   binary stream and the packed stream, and the assignments must match
//!   bit-for-bit (the full roster × chunk-size matrix lives in
//!   `tests/chunked_equivalence.rs`);
//! * a **sharded-read probe**: the pack is cut into 1/2/4/8 block-range
//!   shards via its index and drained concurrently on a vendored-rayon
//!   pool of the same width, verifying the shards cover the file exactly
//!   once and recording the scaling curve (on a single-core container the
//!   honest speedup ceiling is ~1.0×, as with `BENCH_parallel`);
//! * a **pipelined-decode leg**: the staged decode pipeline
//!   (`PipelinedPackStream`) drains the pack at decode-thread counts
//!   {1, 2, 4, 8} under every checksum policy (full/header/off),
//!   interleaved best-of against the serial reader, with the
//!   position-sensitive checksum proving bit-identity at every cell; plus
//!   pipelined-vs-serial *partition* cells (CLUGP, HDRF) over the packed
//!   input. The same single-core caveat applies: decode-ahead cannot beat
//!   the serial reader without a second core, so the honest expectation
//!   here is parity (low single-thread overhead), not speedup.
//!
//! The committed artifact is the storage-trajectory baseline: compression
//! regressions show up as `bytes_per_edge` growth and decode regressions as
//! `decode_eps` drops at fixed `(dataset, format)`.

use super::ExpContext;
use crate::datasets::{open_edge_stream, Dataset};
use crate::report::{results_dir, save_json, Table};
use clugp::partitioner::Partitioner;
use clugp_graph::io::{write_binary_graph, write_edge_list};
use clugp_graph::order::{ordered_edges, StreamOrder};
use clugp_graph::pack::{
    pack_edge_stream, ChecksumPolicy, DecodeOptions, PackOptions, PackedEdgeStream,
    PipelinedPackStream, ShardedPackReader,
};
use clugp_graph::stream::{
    for_each_chunk, EdgeStream, InMemoryStream, RestreamableStream, DEFAULT_CHUNK_EDGES,
};
use clugp_graph::types::Edge;

/// One `(dataset, format)` row of the storage sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FormatRun {
    /// Dataset name.
    pub dataset: String,
    /// Format name (`text` | `binary` | `packed`).
    pub format: String,
    /// Edges in the file.
    pub edges: u64,
    /// Total file bytes.
    pub file_bytes: u64,
    /// File bytes per edge.
    pub bytes_per_edge: f64,
    /// Best-of-repeats full-drain wall clock, seconds.
    pub decode_secs: f64,
    /// Decode throughput, edges per second.
    pub decode_eps: f64,
    /// Position-sensitive checksum of the decoded sequence (must agree
    /// across the three formats of a dataset).
    pub checksum: u64,
}

/// One algorithm of the packed-vs-flat partition leg.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PartitionCheck {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Whether packed and flat-binary inputs produced byte-identical
    /// assignments.
    pub bit_identical: bool,
}

/// One point of the sharded-read scaling probe.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ShardPoint {
    /// Dataset name.
    pub dataset: String,
    /// Shards requested (= pool width).
    pub shards: usize,
    /// Shards actually cut (≤ requested when the pack has few blocks).
    pub shards_used: usize,
    /// Best-of-repeats wall clock to drain all shards, seconds.
    pub secs: f64,
    /// Aggregate decode throughput, edges per second.
    pub eps: f64,
    /// Speedup over the 1-shard drain.
    pub speedup: f64,
    /// Whether the shards covered the pack exactly once (count + per-shard
    /// checksum aggregation match the unsharded drain).
    pub consistent: bool,
}

/// One cell of the pipelined-decode leg: a `(dataset, checksum policy,
/// decode threads)` drain of the pack through `PipelinedPackStream`,
/// measured interleaved with the serial reader under the same policy.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PipelinePoint {
    /// Dataset name.
    pub dataset: String,
    /// Checksum policy (`full` | `header` | `off`).
    pub checksums: String,
    /// Decode worker threads (0 = the serial in-consumer reader).
    pub threads: usize,
    /// Blocks the pipeline may run ahead (0 for the serial row).
    pub prefetch: usize,
    /// Best-of-repeats full-drain wall clock, seconds.
    pub secs: f64,
    /// Decode throughput, edges per second.
    pub eps: f64,
    /// Throughput relative to the serial reader under the same policy
    /// (1.0 for the serial row itself).
    pub speedup_vs_serial: f64,
    /// Whether the drained sequence checksum matched the serial reader's.
    pub bit_identical: bool,
}

/// One pipelined-vs-serial *partition* cell over the packed input.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PipelinePartitionCell {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Decode worker threads of the pipelined run.
    pub threads: usize,
    /// Best-of-repeats partition wall clock over the serial pack stream.
    pub serial_secs: f64,
    /// Best-of-repeats partition wall clock over the pipelined stream.
    pub pipelined_secs: f64,
    /// `serial_secs / pipelined_secs` (> 1.0 means the pipeline won).
    pub speedup: f64,
    /// Whether both runs produced byte-identical assignments and loads.
    pub bit_identical: bool,
}

/// The `results/BENCH_io.json` payload.
#[derive(Debug, Clone, serde::Serialize)]
pub struct IoReport {
    /// Datasets of the sweep.
    pub datasets: Vec<String>,
    /// Timing repeats per decode/shard measurement (best is reported).
    pub repeats: usize,
    /// Pack block target, bytes.
    pub block_bytes: usize,
    /// Flat binary bytes per edge (the fixed baseline).
    pub flat_bytes_per_edge: f64,
    /// One row per `(dataset, format)`.
    pub runs: Vec<FormatRun>,
    /// True iff the packed format is smaller per edge than flat binary on
    /// every dataset.
    pub packed_smaller_than_flat: bool,
    /// Packed bytes/edge on the web-graph fixture (uk-s) — the headline
    /// compression number the acceptance gate reads.
    pub packed_web_bytes_per_edge: f64,
    /// True iff all three formats of each dataset decoded the identical
    /// edge sequence (checksums agree).
    pub streams_identical: bool,
    /// The packed-vs-flat partition checks.
    pub partition_checks: Vec<PartitionCheck>,
    /// True iff every partition check was bit-identical.
    pub bit_identical: bool,
    /// The sharded-read scaling probe.
    pub sharded: Vec<ShardPoint>,
    /// The pipelined-decode leg (serial rows carry `threads = 0`).
    pub pipelined: Vec<PipelinePoint>,
    /// The pipelined-vs-serial partition cells.
    pub pipelined_partition: Vec<PipelinePartitionCell>,
    /// True iff every pipelined cell — decode and partition — was
    /// bit-identical to its serial counterpart.
    pub pipelined_bit_identical: bool,
    /// Worst-case single-thread pipeline overhead across datasets and
    /// policies: `1 - speedup_vs_serial` of the `threads = 1, full` cells
    /// (the honest 1-core cost of the staging machinery).
    pub pipeline_single_thread_overhead: f64,
}

/// Position-sensitive sequence checksum: detects reorders, not just
/// multiset changes.
#[inline]
fn fold(h: u64, e: Edge) -> u64 {
    let x = (u64::from(e.src) << 32) | u64::from(e.dst);
    (h.rotate_left(5) ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Drains a stream once, returning `(edges, checksum)`.
fn drain(stream: &mut dyn EdgeStream) -> (u64, u64) {
    let mut count = 0u64;
    let mut h = 0u64;
    for_each_chunk(stream, DEFAULT_CHUNK_EDGES, |chunk| {
        for &e in chunk {
            h = fold(h, e);
        }
        count += chunk.len() as u64;
    });
    (count, h)
}

fn best_of<F: FnMut() -> (f64, u64, u64)>(repeats: usize, mut f: F) -> (f64, u64, u64) {
    let mut best = f64::INFINITY;
    let mut out = (0u64, 0u64);
    for _ in 0..repeats {
        let (secs, count, h) = f();
        if secs < best {
            best = secs;
        }
        out = (count, h);
    }
    (best, out.0, out.1)
}

/// BENCH_io — bytes/edge and decode throughput for text vs flat binary vs
/// packed storage, the packed-vs-flat partition identity leg, and the
/// sharded-read scaling probe (see the module docs).
pub fn io(ctx: &ExpContext) {
    let repeats = 3usize;
    let block_bytes = clugp_graph::pack::DEFAULT_BLOCK_BYTES;
    let datasets = [Dataset::UkS, Dataset::TwitterS];
    let scratch = std::env::temp_dir().join(format!("clugp_io_exp_{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    let mut table = Table::new(
        "BENCH_io — on-disk formats: bytes/edge and decode throughput",
        &[
            "Dataset", "Format", "Edges", "Bytes", "B/edge", "Decode", "Edges/s",
        ],
    );
    let mut runs: Vec<FormatRun> = Vec::new();
    let mut partition_checks: Vec<PartitionCheck> = Vec::new();
    let mut sharded: Vec<ShardPoint> = Vec::new();
    let mut pipelined: Vec<PipelinePoint> = Vec::new();
    let mut pipelined_partition: Vec<PipelinePartitionCell> = Vec::new();
    let mut streams_identical = true;
    let mut packed_web_bpe = f64::NAN;

    for ds in datasets {
        let graph = crate::datasets::load(ds, ctx.scale);
        let n = graph.num_vertices();
        // The pack canonically sorts; materialize the same sequence in all
        // three formats so the comparison is apples to apples. The pack is
        // written from the *BFS-ordered* stream to exercise the writer's
        // external sort for real.
        let bfs = ordered_edges(&graph, StreamOrder::Bfs);
        let canonical = clugp_graph::pack::canonical_order(&bfs);
        let m = canonical.len() as u64;

        let text_path = scratch.join(format!("{}.txt", ds.name()));
        let bin_path = scratch.join(format!("{}.bin", ds.name()));
        let pack_path = scratch.join(format!("{}.clugpz", ds.name()));
        write_edge_list(&text_path, &canonical).expect("write text");
        write_binary_graph(&bin_path, n, &canonical).expect("write binary");
        let mut src = InMemoryStream::new(n, bfs);
        pack_edge_stream(
            &mut src,
            &pack_path,
            &PackOptions {
                block_bytes,
                ..Default::default()
            },
        )
        .expect("write pack");

        let mut checksums: Vec<u64> = Vec::new();
        for (format, path) in [
            ("text", &text_path),
            ("binary", &bin_path),
            ("packed", &pack_path),
        ] {
            let file_bytes = std::fs::metadata(path).expect("stat").len();
            let (secs, count, checksum) = best_of(repeats, || {
                // Open inside the timed region: decode cost includes
                // header/index validation, as a cold reader would pay it.
                let t = std::time::Instant::now();
                let mut s = open_edge_stream(path).expect("open dataset file");
                let (count, h) = drain(s.as_mut());
                (t.elapsed().as_secs_f64(), count, h)
            });
            assert_eq!(count, m, "{format} file lost edges");
            checksums.push(checksum);
            let bytes_per_edge = file_bytes as f64 / m as f64;
            if format == "packed" && ds == Dataset::UkS {
                packed_web_bpe = bytes_per_edge;
            }
            let run = FormatRun {
                dataset: ds.name().to_string(),
                format: format.to_string(),
                edges: m,
                file_bytes,
                bytes_per_edge,
                decode_secs: secs,
                decode_eps: m as f64 / secs.max(f64::EPSILON),
                checksum,
            };
            table.row(vec![
                run.dataset.clone(),
                run.format.clone(),
                run.edges.to_string(),
                run.file_bytes.to_string(),
                format!("{:.3}", run.bytes_per_edge),
                crate::report::fmt_secs(run.decode_secs),
                format!("{:.2}M/s", run.decode_eps / 1e6),
            ]);
            runs.push(run);
        }
        streams_identical &= checksums.windows(2).all(|w| w[0] == w[1]);

        // Partition leg: packed input must reproduce the flat-binary
        // partitions bit for bit.
        for (name, mut p) in [
            (
                "CLUGP",
                Box::new(clugp::clugp::Clugp::new(clugp::clugp::ClugpConfig {
                    threads: 1,
                    ..Default::default()
                })) as Box<dyn Partitioner>,
            ),
            ("HDRF", Box::new(clugp::baselines::Hdrf::default())),
            ("Hashing", Box::new(clugp::baselines::Hashing::default())),
        ] {
            let mut flat = clugp_graph::io::FileEdgeStream::open(&bin_path).unwrap();
            let a = p.partition(&mut flat, 32).expect("flat partition");
            let mut packed = clugp_graph::pack::PackedEdgeStream::open(&pack_path).unwrap();
            let b = p.partition(&mut packed, 32).expect("packed partition");
            partition_checks.push(PartitionCheck {
                dataset: ds.name().to_string(),
                algorithm: name.to_string(),
                bit_identical: a.partitioning.assignments == b.partitioning.assignments
                    && a.partitioning.loads == b.partitioning.loads,
            });
        }

        // Sharded-read probe: drain the pack with 1/2/4/8 shards on a pool
        // of matching width; shards must cover the file exactly once.
        let reader = ShardedPackReader::open(&pack_path).expect("open pack");
        let (_, reference_checksum) = {
            let mut s = reader
                .open_shard(&clugp_graph::pack::ShardSpec {
                    blocks: 0..reader.index().num_blocks(),
                    edges: m,
                })
                .unwrap();
            drain(&mut s)
        };
        let mut one_shard_secs = f64::NAN;
        for shards in [1usize, 2, 4, 8] {
            use rayon::prelude::*;
            let specs = reader.shards(shards);
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(shards)
                .build()
                .expect("pool");
            let mut best = f64::INFINITY;
            let mut parts: Vec<(u64, u64)> = Vec::new();
            for _ in 0..repeats {
                let t = std::time::Instant::now();
                let result: Vec<(u64, u64)> = pool.install(|| {
                    specs
                        .par_iter()
                        .map(|spec| {
                            let mut s = reader.open_shard(spec).expect("open shard");
                            drain(&mut s)
                        })
                        .collect()
                });
                best = best.min(t.elapsed().as_secs_f64());
                parts = result;
            }
            if shards == 1 {
                one_shard_secs = best;
            }
            let total: u64 = parts.iter().map(|(c, _)| c).sum();
            // Shard checksums chain in block order exactly like the
            // unsharded drain only for shards=1; for >1 verify coverage by
            // count and by re-deriving the sequence checksum serially.
            let consistent = total == m && {
                let mut h = 0u64;
                let mut ok = true;
                for spec in &specs {
                    let mut s = reader.open_shard(spec).expect("open shard");
                    for_each_chunk(&mut s, DEFAULT_CHUNK_EDGES, |chunk| {
                        for &e in chunk {
                            h = fold(h, e);
                        }
                    });
                    ok &= s.reset().is_ok();
                }
                ok && h == reference_checksum
            };
            sharded.push(ShardPoint {
                dataset: ds.name().to_string(),
                shards,
                shards_used: specs.len(),
                secs: best,
                eps: m as f64 / best.max(f64::EPSILON),
                speedup: one_shard_secs / best.max(f64::EPSILON),
                consistent,
            });
        }
        // Pipelined-decode leg: decode threads × checksum policy, measured
        // interleaved with the serial reader (each repeat times the serial
        // drain and every thread count back to back, so drift hits all
        // cells equally).
        let prefetch = clugp_graph::pack::DEFAULT_PREFETCH_BLOCKS;
        let thread_counts = [1usize, 2, 4, 8];
        for policy in [
            ChecksumPolicy::Full,
            ChecksumPolicy::HeaderAndIndex,
            ChecksumPolicy::Off,
        ] {
            let mut serial_best = f64::INFINITY;
            let mut serial_hash = 0u64;
            let mut piped_best = [f64::INFINITY; 4];
            let mut piped_out = [(0u64, 0u64); 4];
            for _ in 0..repeats {
                let t = std::time::Instant::now();
                let mut s = PackedEdgeStream::open_with(&pack_path, policy).expect("open pack");
                let (count, h) = drain(&mut s);
                serial_best = serial_best.min(t.elapsed().as_secs_f64());
                assert_eq!(count, m, "serial drain lost edges");
                serial_hash = h;
                for (i, &threads) in thread_counts.iter().enumerate() {
                    let t = std::time::Instant::now();
                    let mut s = PipelinedPackStream::open(
                        &pack_path,
                        DecodeOptions {
                            threads,
                            prefetch,
                            checksums: policy,
                        },
                    )
                    .expect("open pipelined");
                    let out = drain(&mut s);
                    piped_best[i] = piped_best[i].min(t.elapsed().as_secs_f64());
                    piped_out[i] = out;
                }
            }
            pipelined.push(PipelinePoint {
                dataset: ds.name().to_string(),
                checksums: policy.name().to_string(),
                threads: 0,
                prefetch: 0,
                secs: serial_best,
                eps: m as f64 / serial_best.max(f64::EPSILON),
                speedup_vs_serial: 1.0,
                bit_identical: true,
            });
            for (i, &threads) in thread_counts.iter().enumerate() {
                let (count, h) = piped_out[i];
                pipelined.push(PipelinePoint {
                    dataset: ds.name().to_string(),
                    checksums: policy.name().to_string(),
                    threads,
                    prefetch,
                    secs: piped_best[i],
                    eps: m as f64 / piped_best[i].max(f64::EPSILON),
                    speedup_vs_serial: serial_best / piped_best[i].max(f64::EPSILON),
                    bit_identical: count == m && h == serial_hash,
                });
            }
        }

        // Pipelined-vs-serial partition cells: same pack, same algorithm,
        // the only difference is which stream feeds it.
        for (name, mut p) in [
            (
                "CLUGP",
                Box::new(clugp::clugp::Clugp::new(clugp::clugp::ClugpConfig {
                    threads: 1,
                    ..Default::default()
                })) as Box<dyn Partitioner>,
            ),
            ("HDRF", Box::new(clugp::baselines::Hdrf::default())),
        ] {
            let threads = 2usize;
            let mut serial_secs = f64::INFINITY;
            let mut piped_secs = f64::INFINITY;
            let mut serial_run = None;
            let mut piped_run = None;
            for _ in 0..repeats {
                let mut s = PackedEdgeStream::open(&pack_path).unwrap();
                let t = std::time::Instant::now();
                let run = p.partition(&mut s, 32).expect("serial packed partition");
                serial_secs = serial_secs.min(t.elapsed().as_secs_f64());
                serial_run = Some(run.partitioning);
                let mut s = PipelinedPackStream::open(
                    &pack_path,
                    DecodeOptions {
                        threads,
                        prefetch,
                        checksums: ChecksumPolicy::Full,
                    },
                )
                .unwrap();
                let t = std::time::Instant::now();
                let run = p.partition(&mut s, 32).expect("pipelined packed partition");
                piped_secs = piped_secs.min(t.elapsed().as_secs_f64());
                piped_run = Some(run.partitioning);
            }
            let (a, b) = (serial_run.unwrap(), piped_run.unwrap());
            pipelined_partition.push(PipelinePartitionCell {
                dataset: ds.name().to_string(),
                algorithm: name.to_string(),
                threads,
                serial_secs,
                pipelined_secs: piped_secs,
                speedup: serial_secs / piped_secs.max(f64::EPSILON),
                bit_identical: a.assignments == b.assignments && a.loads == b.loads,
            });
        }

        for p in [&text_path, &bin_path, &pack_path] {
            std::fs::remove_file(p).ok();
        }
    }
    std::fs::remove_dir(&scratch).ok();

    table.print();
    let mut shard_table = Table::new(
        "BENCH_io — sharded pack decode scaling",
        &[
            "Dataset",
            "Shards",
            "Used",
            "Secs",
            "Edges/s",
            "Speedup",
            "Consistent",
        ],
    );
    for s in &sharded {
        shard_table.row(vec![
            s.dataset.clone(),
            s.shards.to_string(),
            s.shards_used.to_string(),
            crate::report::fmt_secs(s.secs),
            format!("{:.2}M/s", s.eps / 1e6),
            format!("{:.2}x", s.speedup),
            s.consistent.to_string(),
        ]);
    }
    shard_table.print();
    let mut pipe_table = Table::new(
        "BENCH_io — staged decode pipeline vs serial reader",
        &[
            "Dataset",
            "Checksums",
            "Threads",
            "Secs",
            "Edges/s",
            "Speedup",
            "Identical",
        ],
    );
    for p in &pipelined {
        pipe_table.row(vec![
            p.dataset.clone(),
            p.checksums.clone(),
            if p.threads == 0 {
                "serial".into()
            } else {
                p.threads.to_string()
            },
            crate::report::fmt_secs(p.secs),
            format!("{:.2}M/s", p.eps / 1e6),
            format!("{:.2}x", p.speedup_vs_serial),
            p.bit_identical.to_string(),
        ]);
    }
    pipe_table.print();
    let mut pp_table = Table::new(
        "BENCH_io — pipelined vs serial packed-input partitioning",
        &[
            "Dataset",
            "Algorithm",
            "Threads",
            "Serial",
            "Pipelined",
            "Speedup",
            "Identical",
        ],
    );
    for c in &pipelined_partition {
        pp_table.row(vec![
            c.dataset.clone(),
            c.algorithm.clone(),
            c.threads.to_string(),
            crate::report::fmt_secs(c.serial_secs),
            crate::report::fmt_secs(c.pipelined_secs),
            format!("{:.2}x", c.speedup),
            c.bit_identical.to_string(),
        ]);
    }
    pp_table.print();
    table.save_csv(&results_dir().join("BENCH_io.csv")).ok();

    let packed_smaller_than_flat = datasets.iter().all(|ds| {
        let flat = runs
            .iter()
            .find(|r| r.dataset == ds.name() && r.format == "binary")
            .map(|r| r.bytes_per_edge)
            .unwrap_or(8.0);
        runs.iter()
            .any(|r| r.dataset == ds.name() && r.format == "packed" && r.bytes_per_edge < flat)
    });
    let pipelined_bit_identical = pipelined.iter().all(|p| p.bit_identical)
        && pipelined_partition.iter().all(|c| c.bit_identical);
    let pipeline_single_thread_overhead = pipelined
        .iter()
        .filter(|p| p.threads == 1 && p.checksums == "full")
        .map(|p| 1.0 - p.speedup_vs_serial)
        .fold(0.0f64, f64::max);
    let report = IoReport {
        datasets: datasets.iter().map(|d| d.name().to_string()).collect(),
        repeats,
        block_bytes,
        flat_bytes_per_edge: 8.0,
        packed_smaller_than_flat,
        packed_web_bytes_per_edge: packed_web_bpe,
        streams_identical,
        bit_identical: partition_checks.iter().all(|c| c.bit_identical),
        runs,
        partition_checks,
        sharded,
        pipelined,
        pipelined_partition,
        pipelined_bit_identical,
        pipeline_single_thread_overhead,
    };
    save_json("BENCH_io", &report).ok();
    assert!(
        report.streams_identical,
        "the three formats must replay the identical edge sequence"
    );
    assert!(
        report.bit_identical,
        "packed input must not change any partition"
    );
    assert!(
        report.sharded.iter().all(|s| s.consistent),
        "sharded reads must cover the pack exactly once"
    );
    assert!(
        report.packed_smaller_than_flat,
        "the pack must beat 8 B/edge"
    );
    assert!(
        report.pipelined_bit_identical,
        "the decode pipeline must be bit-identical to the serial reader \
         at every thread count, policy, and partition cell"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_is_position_sensitive() {
        let a = Edge::new(1, 2);
        let b = Edge::new(3, 4);
        let ab = fold(fold(0, a), b);
        let ba = fold(fold(0, b), a);
        assert_ne!(ab, ba);
    }

    #[test]
    fn drain_counts_and_checksums() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2)];
        let mut s = InMemoryStream::from_edges(edges.clone());
        let (count, h) = drain(&mut s);
        assert_eq!(count, 2);
        let mut s2 = InMemoryStream::from_edges(edges);
        assert_eq!(drain(&mut s2), (2, h), "deterministic");
    }
}
