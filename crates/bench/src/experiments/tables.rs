//! Table I (algorithm time/quality classes) and Table III (dataset
//! inventory).

use super::ExpContext;
use crate::algorithms::Algorithm;
use crate::datasets::Dataset;
use crate::report::{fmt_bytes, fmt_secs, results_dir, save_json, Table};
use crate::runner::{run_cell, PreparedDataset};

/// Table I — measured runtime and replication factor of every streaming
/// partitioner at `k = 32` on the uk-2002 analogue, bucketed into the
/// paper's Low/Medium/High classes.
pub fn table1(ctx: &ExpContext) {
    let prep = PreparedDataset::load(Dataset::UkS, ctx.scale);
    let mut cells = Vec::new();
    for algo in Algorithm::COMPETITORS {
        cells.push(run_cell(&prep, algo, 32));
    }
    // Bucket by tertiles of the measured range, mirroring the qualitative
    // classes of Table I.
    let class = |x: f64, lo: f64, hi: f64| -> &'static str {
        let span = hi - lo;
        if span <= 0.0 || x <= lo + span / 3.0 {
            "Low"
        } else if x <= lo + 2.0 * span / 3.0 {
            "Medium"
        } else {
            "High"
        }
    };
    let (tmin, tmax) = min_max(cells.iter().map(|c| c.partition_secs.log10()));
    let (qmin, qmax) = min_max(cells.iter().map(|c| c.replication_factor));

    let mut table = Table::new(
        "Table I — vertex-cut streaming partitioners (measured, uk-s, k=32)",
        &["Algorithm", "Time", "RF", "Time Cost", "Quality"],
    );
    for c in &cells {
        // Paper semantics: low RF = high quality.
        let quality = match class(c.replication_factor, qmin, qmax) {
            "Low" => "High",
            "High" => "Low",
            _ => "Medium",
        };
        table.row(vec![
            c.algorithm.clone(),
            fmt_secs(c.partition_secs),
            format!("{:.3}", c.replication_factor),
            class(c.partition_secs.log10(), tmin, tmax).to_string(),
            quality.to_string(),
        ]);
    }
    table.print();
    table.save_csv(&results_dir().join("table1.csv")).ok();
    save_json("table1", &cells).ok();
}

/// Table III — the synthetic dataset inventory, with the paper's original
/// corpora for comparison.
pub fn table3(ctx: &ExpContext) {
    let mut table = Table::new(
        "Table III — dataset analogues (synthetic; see DESIGN.md §4)",
        &[
            "Alias",
            "Substitutes",
            "|V|",
            "|E|",
            "Size",
            "alpha",
            "MeanDeg",
        ],
    );
    let mut summaries = Vec::new();
    for ds in Dataset::ALL {
        let g = crate::datasets::load(ds, ctx.scale);
        let summary = clugp_graph::analysis::summarize(&g);
        // The in-degree distribution carries the web power law (out-degrees
        // have a calibrated floor that biases the fixed-xmin MLE).
        let in_alpha = clugp_graph::analysis::estimate_power_law_alpha(
            &clugp_graph::analysis::degree_histogram(&g.in_degrees()),
        );
        // On-disk size in our 8-bytes-per-edge binary format + header.
        let bytes = 24 + 8 * g.num_edges();
        table.row(vec![
            ds.name().to_string(),
            ds.paper_source().to_string(),
            human_count(summary.num_vertices),
            human_count(summary.num_edges),
            fmt_bytes(bytes),
            format!("{in_alpha:.2}"),
            format!("{:.1}", summary.mean_degree),
        ]);
        summaries.push((ds.name(), summary));
    }
    table.print();
    table.save_csv(&results_dir().join("table3.csv")).ok();
    save_json("table3", &summaries).ok();
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), x| {
        (lo.min(x), hi.max(x))
    })
}

fn human_count(x: u64) -> String {
    if x >= 1_000_000 {
        format!("{:.2}M", x as f64 / 1e6)
    } else if x >= 1_000 {
        format!("{:.1}K", x as f64 / 1e3)
    } else {
        x.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_count_units() {
        assert_eq!(human_count(532), "532");
        assert_eq!(human_count(75_300), "75.3K");
        assert_eq!(human_count(2_500_000), "2.50M");
    }

    #[test]
    fn min_max_of_sequence() {
        let (lo, hi) = min_max([3.0, 1.0, 2.0].into_iter());
        assert_eq!((lo, hi), (1.0, 3.0));
    }
}
