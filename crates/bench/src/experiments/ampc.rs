//! BENCH_ampc — the coordinator/worker engine's exchange-cost trajectory
//! (`results/BENCH_ampc.{json,csv}`).
//!
//! Sweeps the sharded placement pipeline over worker counts and both
//! transports (in-process bounded channels vs Unix-socket frames) on the
//! uk-s (web crawl) and twitter-s (BA social) analogues, recording
//! wall-clock, bytes/frames exchanged through the coordinator, and the
//! bit-identity flag against the monolithic partitioner.
//!
//! **Honest-ceiling caveat:** everything here runs on one host, so worker
//! threads/sockets share the same cores and the sequenced sweep keeps one
//! worker active at a time by design — that is what buys bit-identity.
//! Multi-worker wall-clock is therefore a *floor on coordination overhead*,
//! never a speedup claim; the committed signal is bytes-exchanged per edge
//! (the quantity that would cross a real network) and the guarantee that
//! sharding cost zero partition-quality drift.
//!
//! The **relaxed leg** turns the consistency dial down (`--ampc-mode
//! relaxed`): workers stream concurrently against local tables and
//! reconcile at epoch barriers, so its wall-clock *is* allowed to beat the
//! sequenced run — and the leg records the price, per algorithm, as
//! replication-factor drift against the sequenced partition.

use super::ExpContext;
use crate::algorithms::Algorithm;
use crate::datasets::Dataset;
use crate::report::{results_dir, save_json, Table};
use crate::runner::PreparedDataset;
use clugp::ampc::coordinator::DistAlgo;
use clugp::ampc::proto::Msg;
use clugp::ampc::transport::VERB_SLOTS;
use clugp::ampc::{
    run_distributed, AmpcMode, DistConfig, DistInput, FaultPlan, NetStats, SuperviseConfig,
    TransportKind,
};
use clugp::baselines::Hdrf;
use clugp::clugp::Clugp;
use clugp::metrics::PartitionQuality;
use clugp::partition::Partitioning;
use clugp::partitioner::Partitioner;
use clugp_graph::stream::InMemoryStream;
use clugp_graph::types::Edge;

/// One `(dataset, algorithm, workers, transport)` cell of the sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AmpcRun {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of partitions.
    pub k: u32,
    /// Edge count of the measured stream.
    pub edges: u64,
    /// Worker count of this cell.
    pub workers: u32,
    /// Transport flavor (`channel` or `unix`).
    pub transport: String,
    /// Best-of-repeats wall clock of the distributed run, seconds.
    pub secs: f64,
    /// Best-of-repeats wall clock of the monolithic reference, seconds.
    pub monolith_secs: f64,
    /// `secs / monolith_secs` — coordination overhead factor (see the
    /// module-level single-host caveat).
    pub overhead: f64,
    /// Payload bytes sent across all coordinator↔worker links.
    pub bytes_sent: u64,
    /// Payload bytes received across all links.
    pub bytes_received: u64,
    /// Frames sent across all links.
    pub frames_sent: u64,
    /// Exchange density: `(bytes_sent + bytes_received) / edges`.
    pub bytes_per_edge: f64,
    /// Whether the distributed assignments matched the monolith's exactly.
    pub bit_identical: bool,
    /// Per-message-type traffic breakdown (non-zero verbs only), so the
    /// relay optimization's effect is attributable frame type by frame
    /// type rather than a single aggregate.
    pub by_verb: Vec<VerbStat>,
}

/// One non-zero row of the per-message-type traffic histogram.
#[derive(Debug, Clone, serde::Serialize)]
pub struct VerbStat {
    /// Protocol verb name (e.g. `RouteBatch`, `StateRespBatch`).
    pub verb: String,
    /// Frames with this tag, sent + received over all links.
    pub frames: u64,
    /// Payload bytes of those frames.
    pub bytes: u64,
}

/// Collapses the fixed-slot histogram into named non-zero rows.
fn verb_breakdown(net: &NetStats) -> Vec<VerbStat> {
    (0..VERB_SLOTS)
        .filter(|&slot| net.by_verb[slot].frames > 0)
        .map(|slot| VerbStat {
            verb: Msg::verb_name(slot).to_string(),
            frames: net.by_verb[slot].frames,
            bytes: net.by_verb[slot].bytes,
        })
        .collect()
}

/// One relaxed-mode cell (4 workers): wall-clock against the sequenced run
/// and quality drift against the sequenced (= monolith) partition.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RelaxedRun {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of partitions.
    pub k: u32,
    /// Worker count of the cell.
    pub workers: u32,
    /// Best-of-repeats wall clock of the relaxed run, seconds.
    pub secs: f64,
    /// Wall clock of the sequenced run at the same worker count/transport.
    pub sequenced_secs: f64,
    /// `sequenced_secs / secs` — what dropping the sequencing token buys.
    pub speedup_vs_sequenced: f64,
    /// Replication factor of the relaxed partition.
    pub replication_factor: f64,
    /// Replication factor of the sequenced partition (drift baseline).
    pub sequenced_rf: f64,
    /// `replication_factor / sequenced_rf` — the price of the weaker
    /// consistency, per algorithm.
    pub rf_drift: f64,
    /// Relative balance (`k·max|p_i|/|E|`) of the relaxed partition.
    pub relative_balance: f64,
    /// Relative balance of the sequenced partition.
    pub sequenced_balance: f64,
    /// Exchange density of the relaxed run.
    pub bytes_per_edge: f64,
}

/// One seeded fault-injection probe of the supervised engine (the
/// `fault_probes` rows of `BENCH_ampc.json` / `BENCH_ampc_faults.csv`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct FaultProbe {
    /// Seed of [`FaultPlan::seeded`] — fully determines the injected fault.
    pub seed: u64,
    /// `clean` (fault was absorbed without a replay, e.g. a delay),
    /// `recovered` (one or more pass replays), or `typed-error` (a
    /// deterministic error the engine correctly refuses to retry).
    pub outcome: String,
    /// Pass replays the supervisor performed.
    pub recoveries: u32,
    /// Wall clock of the faulted run, seconds.
    pub secs: f64,
    /// For completed runs: assignments identical to the monolith. Always
    /// true in a passing bench (asserted); errors report false.
    pub bit_identical: bool,
    /// Milliseconds spent persisting barrier checkpoints during the probe.
    pub ckpt_write_ms: f64,
    /// Milliseconds spent restoring checkpoints in recovery replays.
    pub ckpt_restore_ms: f64,
    /// The typed error for `typed-error` outcomes, empty otherwise.
    pub error: String,
}

/// One tracing-overhead cell (the `trace_overhead` rows of
/// `BENCH_ampc.json`): the same 4-worker sequenced run with event
/// recording off and on.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TraceRun {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Worker count of the cell.
    pub workers: u32,
    /// Best-of-repeats wall clock with tracing off, seconds.
    pub off_secs: f64,
    /// Best-of-repeats wall clock with tracing on, seconds.
    pub on_secs: f64,
    /// `on_secs / off_secs` — the cost of recording and shipping events.
    pub overhead: f64,
    /// Events the traced run recorded across all lanes.
    pub events: u64,
    /// Traced assignments identical to the untraced run's (asserted).
    pub bit_identical: bool,
}

/// The `results/BENCH_ampc.json` payload.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AmpcReport {
    /// Datasets of the sweep.
    pub datasets: Vec<String>,
    /// Number of partitions.
    pub k: u32,
    /// Timing repeats (best is reported).
    pub repeats: usize,
    /// Worker counts swept.
    pub worker_counts: Vec<u32>,
    /// Transports swept.
    pub transports: Vec<String>,
    /// Single-host measurement caveat, restated in the artifact itself so
    /// downstream readers of the JSON cannot miss it.
    pub caveat: String,
    /// True iff every cell was bit-identical to the monolith.
    pub bit_identical: bool,
    /// One row per `(dataset, algorithm, workers, transport)`.
    pub runs: Vec<AmpcRun>,
    /// Relaxed concurrent mode at 4 workers: wall-clock vs the sequenced
    /// run and per-algorithm quality drift (the consistency dial's price).
    pub relaxed: Vec<RelaxedRun>,
    /// Wall clock of the undisturbed supervision-off reference run the
    /// checkpoint overhead is measured against, seconds.
    pub plain_secs: f64,
    /// Wall clock of the same run with supervision + barrier checkpoints
    /// enabled (and no faults), seconds.
    pub supervised_secs: f64,
    /// `supervised_secs / plain_secs` — the cost of taking barrier
    /// checkpoints when nothing goes wrong.
    pub checkpoint_overhead: f64,
    /// Seeded fault-injection probes of the supervised engine.
    pub fault_probes: Vec<FaultProbe>,
    /// Tracing-overhead cells: event recording off vs on, per dataset
    /// (the observability contract: off by default, ≤5% when on).
    pub trace_overhead: Vec<TraceRun>,
}

/// Monolith/distributed pairs the sweep measures: the streaming baseline
/// with per-vertex replica+degree state (HDRF) and the flagship (CLUGP,
/// whose three passes stress every table shape the state service has).
fn roster() -> Vec<(Algorithm, Box<dyn Partitioner>, DistAlgo)> {
    vec![
        (
            Algorithm::Hdrf,
            Box::new(Hdrf::default()) as Box<dyn Partitioner>,
            DistAlgo::hdrf(),
        ),
        (
            Algorithm::Clugp,
            Box::new(Clugp::default()),
            DistAlgo::clugp(),
        ),
    ]
}

/// BENCH_ampc — wall-clock and bytes-exchanged vs worker count over both
/// transports for HDRF and CLUGP on uk-s/twitter-s.
pub fn ampc(ctx: &ExpContext) {
    let k = 32u32;
    let repeats = 3usize;
    let worker_counts = [1u32, 2, 4];
    let transports = [TransportKind::Channel, TransportKind::Unix];
    let datasets = [Dataset::UkS, Dataset::TwitterS];

    let mut table = Table::new(
        "BENCH_ampc — coordinator/worker engine: time + exchange vs workers (k=32)",
        &[
            "Dataset",
            "Algorithm",
            "Workers",
            "Transport",
            "Time",
            "Overhead",
            "Bytes/edge",
            "Identical",
        ],
    );
    let mut runs: Vec<AmpcRun> = Vec::new();
    let mut relaxed: Vec<RelaxedRun> = Vec::new();
    for ds in datasets {
        let prep = PreparedDataset::load(ds, ctx.scale);
        let n = prep.graph.num_vertices();
        for (which, mut partitioner, algo) in roster() {
            let edges = prep.edges_for(which);
            let m = edges.len() as u64;

            // Monolithic reference: same stream, same order.
            let mut monolith_secs = f64::INFINITY;
            let mut reference = Vec::new();
            for _ in 0..repeats {
                let mut s = InMemoryStream::new(n, edges.to_vec());
                let t = std::time::Instant::now();
                let run = partitioner.partition(&mut s, k).expect("monolith");
                monolith_secs = monolith_secs.min(t.elapsed().as_secs_f64());
                reference = run.partitioning.assignments;
            }

            for workers in worker_counts {
                for transport in transports {
                    let cfg = DistConfig {
                        workers,
                        transport,
                        chunk_edges: 0,
                        ..Default::default()
                    };
                    let mut secs = f64::INFINITY;
                    let mut out = None;
                    for _ in 0..repeats {
                        let t = std::time::Instant::now();
                        let o = run_distributed(
                            &algo,
                            DistInput::Edges {
                                num_vertices: n,
                                edges,
                            },
                            k,
                            &cfg,
                        )
                        .expect("distributed run");
                        secs = secs.min(t.elapsed().as_secs_f64());
                        out = Some(o);
                    }
                    let out = out.expect("at least one repeat");
                    let bit_identical = out.partitioning.assignments == reference;
                    let transport_name = match transport {
                        TransportKind::Channel => "channel",
                        TransportKind::Unix => "unix",
                    };
                    let run = AmpcRun {
                        dataset: prep.name.clone(),
                        algorithm: which.name().to_string(),
                        k,
                        edges: m,
                        workers,
                        transport: transport_name.to_string(),
                        secs,
                        monolith_secs,
                        overhead: secs / monolith_secs.max(f64::EPSILON),
                        bytes_sent: out.net.bytes_sent,
                        bytes_received: out.net.bytes_received,
                        frames_sent: out.net.frames_sent,
                        bytes_per_edge: (out.net.bytes_sent + out.net.bytes_received) as f64
                            / m.max(1) as f64,
                        bit_identical,
                        by_verb: verb_breakdown(&out.net),
                    };
                    table.row(vec![
                        run.dataset.clone(),
                        run.algorithm.clone(),
                        run.workers.to_string(),
                        run.transport.clone(),
                        format!("{:.3}s", run.secs),
                        format!("{:.2}x", run.overhead),
                        format!("{:.1}", run.bytes_per_edge),
                        run.bit_identical.to_string(),
                    ]);
                    runs.push(run);
                }
            }

            // Relaxed leg: same cell at 4 workers with the consistency
            // dial turned down — workers stream concurrently and reconcile
            // at epoch barriers, so this measures what the sequencing token
            // costs and what the weaker consistency does to quality.
            let relaxed_workers = 4u32;
            let cfg = DistConfig {
                workers: relaxed_workers,
                transport: TransportKind::Channel,
                chunk_edges: 0,
                mode: AmpcMode::Relaxed,
                ..Default::default()
            };
            let mut secs = f64::INFINITY;
            let mut out = None;
            for _ in 0..repeats {
                let t = std::time::Instant::now();
                let o = run_distributed(
                    &algo,
                    DistInput::Edges {
                        num_vertices: n,
                        edges,
                    },
                    k,
                    &cfg,
                )
                .expect("relaxed run");
                secs = secs.min(t.elapsed().as_secs_f64());
                out = Some(o);
            }
            let out = out.expect("at least one repeat");
            let sequenced_secs = runs
                .iter()
                .rev()
                .find(|r| {
                    r.workers == relaxed_workers
                        && r.transport == "channel"
                        && r.algorithm == which.name()
                        && r.dataset == prep.name
                })
                .map(|r| r.secs)
                .expect("sequenced 4-worker cell precedes the relaxed leg");
            let seq_quality = quality_of(&reference, n, k, edges);
            let quality = PartitionQuality::compute(edges, &out.partitioning);
            let run = RelaxedRun {
                dataset: prep.name.clone(),
                algorithm: which.name().to_string(),
                k,
                workers: relaxed_workers,
                secs,
                sequenced_secs,
                speedup_vs_sequenced: sequenced_secs / secs.max(f64::EPSILON),
                replication_factor: quality.replication_factor,
                sequenced_rf: seq_quality.replication_factor,
                rf_drift: quality.replication_factor
                    / seq_quality.replication_factor.max(f64::EPSILON),
                relative_balance: quality.relative_balance,
                sequenced_balance: seq_quality.relative_balance,
                bytes_per_edge: (out.net.bytes_sent + out.net.bytes_received) as f64
                    / m.max(1) as f64,
            };
            table.row(vec![
                run.dataset.clone(),
                format!("{}+relaxed", run.algorithm),
                run.workers.to_string(),
                "channel".to_string(),
                format!("{:.3}s", run.secs),
                format!("{:.2}x", run.secs / monolith_secs.max(f64::EPSILON)),
                format!("{:.1}", run.bytes_per_edge),
                format!("rf x{:.3}", run.rf_drift),
            ]);
            relaxed.push(run);
        }
    }
    table.print();
    table.save_csv(&results_dir().join("BENCH_ampc.csv")).ok();

    let (plain_secs, supervised_secs, fault_probes) = fault_leg(ctx, k);
    let trace_overhead = trace_leg(ctx, k);
    let report = AmpcReport {
        datasets: datasets.iter().map(|d| d.name().to_string()).collect(),
        k,
        repeats,
        worker_counts: worker_counts.to_vec(),
        transports: transports
            .iter()
            .map(|t| {
                match t {
                    TransportKind::Channel => "channel",
                    TransportKind::Unix => "unix",
                }
                .to_string()
            })
            .collect(),
        caveat: "single-host run: workers share one machine's cores and the stream is \
                 sequenced for bit-identity, so multi-worker wall-clock is a coordination-\
                 overhead floor, not a speedup claim; bytes-exchanged is the portable signal"
            .to_string(),
        bit_identical: runs.iter().all(|r| r.bit_identical),
        runs,
        relaxed,
        plain_secs,
        supervised_secs,
        checkpoint_overhead: supervised_secs / plain_secs.max(f64::EPSILON),
        fault_probes,
        trace_overhead,
    };
    save_json("BENCH_ampc", &report).ok();
    assert!(
        report.bit_identical,
        "sharded placement must not change any partition"
    );
}

/// Quality of a bare assignment vector (loads recomputed from it), used
/// for the sequenced baseline whose `Partitioning` was not kept around.
fn quality_of(assignments: &[u32], n: u64, k: u32, edges: &[Edge]) -> PartitionQuality {
    let mut loads = vec![0u64; k as usize];
    for &p in assignments {
        loads[p as usize] += 1;
    }
    PartitionQuality::compute(
        edges,
        &Partitioning {
            k,
            num_vertices: n,
            assignments: assignments.to_vec(),
            loads,
        },
    )
}

/// The fault leg: checkpoint overhead of an undisturbed supervised run,
/// then seeded single-fault injections (drop / delay / corrupt /
/// disconnect, either direction) against a 4-worker CLUGP run on uk-s.
/// Every completed run is asserted bit-identical to the monolith; every
/// failed run must have failed with a typed error, not a hang (the
/// supervision deadline bounds the probe).
fn fault_leg(ctx: &ExpContext, k: u32) -> (f64, f64, Vec<FaultProbe>) {
    let workers = 4u32;
    let seeds = 1..=6u64;
    let prep = PreparedDataset::load(Dataset::UkS, ctx.scale);
    let n = prep.graph.num_vertices();
    let edges = prep.edges_for(Algorithm::Clugp);
    let mut s = InMemoryStream::new(n, edges.to_vec());
    let reference = Clugp::default()
        .partition(&mut s, k)
        .expect("monolith")
        .partitioning
        .assignments;
    let input = DistInput::Edges {
        num_vertices: n,
        edges,
    };
    let supervise = SuperviseConfig {
        worker_timeout: Some(std::time::Duration::from_secs(2)),
        max_retries: 3,
        backoff: std::time::Duration::from_millis(50),
    };

    // Checkpoint overhead: same undisturbed run with supervision off/on.
    let timed = |cfg: &DistConfig| {
        let t = std::time::Instant::now();
        let out = run_distributed(&DistAlgo::clugp(), input, k, cfg).expect("undisturbed run");
        (t.elapsed().as_secs_f64(), out)
    };
    let (plain_secs, _) = timed(&DistConfig {
        workers,
        ..Default::default()
    });
    let (supervised_secs, out) = timed(&DistConfig {
        workers,
        supervise: supervise.clone(),
        ..Default::default()
    });
    assert_eq!(out.recoveries, 0, "undisturbed run must not recover");
    assert_eq!(
        out.partitioning.assignments, reference,
        "supervision/checkpointing changed a partition"
    );

    let mut table = Table::new(
        "BENCH_ampc faults — seeded fault injection, supervised CLUGP (uk-s, 4 workers)",
        &[
            "Seed",
            "Outcome",
            "Recoveries",
            "Time",
            "CkptWrite",
            "CkptRestore",
            "Identical",
        ],
    );
    let mut probes = Vec::new();
    for seed in seeds {
        let cfg = DistConfig {
            workers,
            supervise: supervise.clone(),
            faults: FaultPlan::seeded(seed, workers),
            ..Default::default()
        };
        let t = std::time::Instant::now();
        let probe = match run_distributed(&DistAlgo::clugp(), input, k, &cfg) {
            Ok(out) => {
                let bit_identical = out.partitioning.assignments == reference;
                assert!(
                    bit_identical,
                    "seed {seed}: recovered run diverged from the monolith"
                );
                FaultProbe {
                    seed,
                    outcome: if out.recoveries > 0 {
                        "recovered".into()
                    } else {
                        "clean".into()
                    },
                    recoveries: out.recoveries,
                    secs: t.elapsed().as_secs_f64(),
                    bit_identical,
                    ckpt_write_ms: out.ckpt_write_us as f64 / 1e3,
                    ckpt_restore_ms: out.ckpt_restore_us as f64 / 1e3,
                    error: String::new(),
                }
            }
            Err(e) => FaultProbe {
                seed,
                outcome: "typed-error".into(),
                recoveries: 0,
                secs: t.elapsed().as_secs_f64(),
                bit_identical: false,
                ckpt_write_ms: 0.0,
                ckpt_restore_ms: 0.0,
                error: e.to_string(),
            },
        };
        table.row(vec![
            probe.seed.to_string(),
            probe.outcome.clone(),
            probe.recoveries.to_string(),
            format!("{:.3}s", probe.secs),
            format!("{:.1}ms", probe.ckpt_write_ms),
            format!("{:.1}ms", probe.ckpt_restore_ms),
            probe.bit_identical.to_string(),
        ]);
        probes.push(probe);
    }
    table.print();
    table
        .save_csv(&results_dir().join("BENCH_ampc_faults.csv"))
        .ok();
    assert!(
        probes
            .iter()
            .any(|p| p.outcome == "recovered" || p.outcome == "typed-error"),
        "the seeded plans exercised no fault at all"
    );
    (plain_secs, supervised_secs, probes)
}

/// The tracing-overhead leg: the observability contract is "compiled in,
/// off by default, ≤5% when on". Runs the 4-worker sequenced CLUGP cell
/// on each dataset with event recording off and on, asserting that the
/// traced partition is bit-identical and the wall-clock penalty bounded
/// (best-of-repeats ratio, with a small absolute floor absorbing
/// scheduler noise at bench scale).
fn trace_leg(ctx: &ExpContext, k: u32) -> Vec<TraceRun> {
    let workers = 4u32;
    let repeats = 3usize;
    let mut table = Table::new(
        "BENCH_ampc tracing — event recording overhead (CLUGP, 4 workers, channel)",
        &["Dataset", "Off", "On", "Overhead", "Events", "Identical"],
    );
    let mut runs = Vec::new();
    for ds in [Dataset::UkS, Dataset::TwitterS] {
        let prep = PreparedDataset::load(ds, ctx.scale);
        let n = prep.graph.num_vertices();
        let edges = prep.edges_for(Algorithm::Clugp);
        let input = DistInput::Edges {
            num_vertices: n,
            edges,
        };
        let timed = |trace: bool| {
            let cfg = DistConfig {
                workers,
                trace,
                ..Default::default()
            };
            let mut secs = f64::INFINITY;
            let mut out = None;
            for _ in 0..repeats {
                let t = std::time::Instant::now();
                let o = run_distributed(&DistAlgo::clugp(), input, k, &cfg).expect("trace leg");
                secs = secs.min(t.elapsed().as_secs_f64());
                out = Some(o);
            }
            (secs, out.expect("at least one repeat"))
        };
        let (off_secs, off) = timed(false);
        let (on_secs, on) = timed(true);
        assert!(
            off.trace.events.is_empty(),
            "tracing off must record nothing"
        );
        let events = on.trace.events.len() as u64;
        assert!(events > 0, "tracing on recorded no events");
        let bit_identical = on.partitioning.assignments == off.partitioning.assignments;
        assert!(
            bit_identical,
            "{}: tracing changed the partition",
            prep.name
        );
        assert!(
            on_secs <= off_secs * 1.05 + 0.05,
            "{}: tracing overhead above 5%: off={off_secs:.3}s on={on_secs:.3}s",
            prep.name
        );
        let run = TraceRun {
            dataset: prep.name.clone(),
            algorithm: Algorithm::Clugp.name().to_string(),
            workers,
            off_secs,
            on_secs,
            overhead: on_secs / off_secs.max(f64::EPSILON),
            events,
            bit_identical,
        };
        table.row(vec![
            run.dataset.clone(),
            format!("{:.3}s", run.off_secs),
            format!("{:.3}s", run.on_secs),
            format!("{:.2}x", run.overhead),
            run.events.to_string(),
            run.bit_identical.to_string(),
        ]);
        runs.push(run);
    }
    table.print();
    runs
}
