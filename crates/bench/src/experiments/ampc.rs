//! BENCH_ampc — the coordinator/worker engine's exchange-cost trajectory
//! (`results/BENCH_ampc.{json,csv}`).
//!
//! Sweeps the sharded placement pipeline over worker counts and both
//! transports (in-process bounded channels vs Unix-socket frames) on the
//! uk-s (web crawl) and twitter-s (BA social) analogues, recording
//! wall-clock, bytes/frames exchanged through the coordinator, and the
//! bit-identity flag against the monolithic partitioner.
//!
//! **Honest-ceiling caveat:** everything here runs on one host, so worker
//! threads/sockets share the same cores and the stream is sequenced (one
//! worker active at a time by design — that is what buys bit-identity).
//! Multi-worker wall-clock is therefore a *floor on coordination overhead*,
//! never a speedup claim; the committed signal is bytes-exchanged per edge
//! (the quantity that would cross a real network) and the guarantee that
//! sharding cost zero partition-quality drift.

use super::ExpContext;
use crate::algorithms::Algorithm;
use crate::datasets::Dataset;
use crate::report::{results_dir, save_json, Table};
use crate::runner::PreparedDataset;
use clugp::ampc::coordinator::DistAlgo;
use clugp::ampc::{run_distributed, DistConfig, DistInput, TransportKind};
use clugp::baselines::Hdrf;
use clugp::clugp::Clugp;
use clugp::partitioner::Partitioner;
use clugp_graph::stream::InMemoryStream;

/// One `(dataset, algorithm, workers, transport)` cell of the sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AmpcRun {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of partitions.
    pub k: u32,
    /// Edge count of the measured stream.
    pub edges: u64,
    /// Worker count of this cell.
    pub workers: u32,
    /// Transport flavor (`channel` or `unix`).
    pub transport: String,
    /// Best-of-repeats wall clock of the distributed run, seconds.
    pub secs: f64,
    /// Best-of-repeats wall clock of the monolithic reference, seconds.
    pub monolith_secs: f64,
    /// `secs / monolith_secs` — coordination overhead factor (see the
    /// module-level single-host caveat).
    pub overhead: f64,
    /// Payload bytes sent across all coordinator↔worker links.
    pub bytes_sent: u64,
    /// Payload bytes received across all links.
    pub bytes_received: u64,
    /// Frames sent across all links.
    pub frames_sent: u64,
    /// Exchange density: `(bytes_sent + bytes_received) / edges`.
    pub bytes_per_edge: f64,
    /// Whether the distributed assignments matched the monolith's exactly.
    pub bit_identical: bool,
}

/// The `results/BENCH_ampc.json` payload.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AmpcReport {
    /// Datasets of the sweep.
    pub datasets: Vec<String>,
    /// Number of partitions.
    pub k: u32,
    /// Timing repeats (best is reported).
    pub repeats: usize,
    /// Worker counts swept.
    pub worker_counts: Vec<u32>,
    /// Transports swept.
    pub transports: Vec<String>,
    /// Single-host measurement caveat, restated in the artifact itself so
    /// downstream readers of the JSON cannot miss it.
    pub caveat: String,
    /// True iff every cell was bit-identical to the monolith.
    pub bit_identical: bool,
    /// One row per `(dataset, algorithm, workers, transport)`.
    pub runs: Vec<AmpcRun>,
}

/// Monolith/distributed pairs the sweep measures: the streaming baseline
/// with per-vertex replica+degree state (HDRF) and the flagship (CLUGP,
/// whose three passes stress every table shape the state service has).
fn roster() -> Vec<(Algorithm, Box<dyn Partitioner>, DistAlgo)> {
    vec![
        (
            Algorithm::Hdrf,
            Box::new(Hdrf::default()) as Box<dyn Partitioner>,
            DistAlgo::hdrf(),
        ),
        (
            Algorithm::Clugp,
            Box::new(Clugp::default()),
            DistAlgo::clugp(),
        ),
    ]
}

/// BENCH_ampc — wall-clock and bytes-exchanged vs worker count over both
/// transports for HDRF and CLUGP on uk-s/twitter-s.
pub fn ampc(ctx: &ExpContext) {
    let k = 32u32;
    let repeats = 3usize;
    let worker_counts = [1u32, 2, 4];
    let transports = [TransportKind::Channel, TransportKind::Unix];
    let datasets = [Dataset::UkS, Dataset::TwitterS];

    let mut table = Table::new(
        "BENCH_ampc — coordinator/worker engine: time + exchange vs workers (k=32)",
        &[
            "Dataset",
            "Algorithm",
            "Workers",
            "Transport",
            "Time",
            "Overhead",
            "Bytes/edge",
            "Identical",
        ],
    );
    let mut runs: Vec<AmpcRun> = Vec::new();
    for ds in datasets {
        let prep = PreparedDataset::load(ds, ctx.scale);
        let n = prep.graph.num_vertices();
        for (which, mut partitioner, algo) in roster() {
            let edges = prep.edges_for(which);
            let m = edges.len() as u64;

            // Monolithic reference: same stream, same order.
            let mut monolith_secs = f64::INFINITY;
            let mut reference = Vec::new();
            for _ in 0..repeats {
                let mut s = InMemoryStream::new(n, edges.to_vec());
                let t = std::time::Instant::now();
                let run = partitioner.partition(&mut s, k).expect("monolith");
                monolith_secs = monolith_secs.min(t.elapsed().as_secs_f64());
                reference = run.partitioning.assignments;
            }

            for workers in worker_counts {
                for transport in transports {
                    let cfg = DistConfig {
                        workers,
                        transport,
                        chunk_edges: 0,
                    };
                    let mut secs = f64::INFINITY;
                    let mut out = None;
                    for _ in 0..repeats {
                        let t = std::time::Instant::now();
                        let o = run_distributed(
                            &algo,
                            DistInput::Edges {
                                num_vertices: n,
                                edges,
                            },
                            k,
                            &cfg,
                        )
                        .expect("distributed run");
                        secs = secs.min(t.elapsed().as_secs_f64());
                        out = Some(o);
                    }
                    let out = out.expect("at least one repeat");
                    let bit_identical = out.partitioning.assignments == reference;
                    let transport_name = match transport {
                        TransportKind::Channel => "channel",
                        TransportKind::Unix => "unix",
                    };
                    let run = AmpcRun {
                        dataset: prep.name.clone(),
                        algorithm: which.name().to_string(),
                        k,
                        edges: m,
                        workers,
                        transport: transport_name.to_string(),
                        secs,
                        monolith_secs,
                        overhead: secs / monolith_secs.max(f64::EPSILON),
                        bytes_sent: out.net.bytes_sent,
                        bytes_received: out.net.bytes_received,
                        frames_sent: out.net.frames_sent,
                        bytes_per_edge: (out.net.bytes_sent + out.net.bytes_received) as f64
                            / m.max(1) as f64,
                        bit_identical,
                    };
                    table.row(vec![
                        run.dataset.clone(),
                        run.algorithm.clone(),
                        run.workers.to_string(),
                        run.transport.clone(),
                        format!("{:.3}s", run.secs),
                        format!("{:.2}x", run.overhead),
                        format!("{:.1}", run.bytes_per_edge),
                        run.bit_identical.to_string(),
                    ]);
                    runs.push(run);
                }
            }
        }
    }
    table.print();
    table.save_csv(&results_dir().join("BENCH_ampc.csv")).ok();
    let report = AmpcReport {
        datasets: datasets.iter().map(|d| d.name().to_string()).collect(),
        k,
        repeats,
        worker_counts: worker_counts.to_vec(),
        transports: transports
            .iter()
            .map(|t| {
                match t {
                    TransportKind::Channel => "channel",
                    TransportKind::Unix => "unix",
                }
                .to_string()
            })
            .collect(),
        caveat: "single-host run: workers share one machine's cores and the stream is \
                 sequenced for bit-identity, so multi-worker wall-clock is a coordination-\
                 overhead floor, not a speedup claim; bytes-exchanged is the portable signal"
            .to_string(),
        bit_identical: runs.iter().all(|r| r.bit_identical),
        runs,
    };
    save_json("BENCH_ampc", &report).ok();
    assert!(
        report.bit_identical,
        "sharded placement must not change any partition"
    );
}
