//! BENCH_memory — the Fig. 6-style memory-trajectory baseline
//! (`results/BENCH_memory.{json,csv}`).
//!
//! Two legs:
//!
//! 1. **Dense trajectory** — peak partitioner working-state bytes (the
//!    honest capacity-measured [`clugp::memory::MemoryReport`] totals) for
//!    the six competitors over the uk-s/twitter-s mix across the k sweep.
//!    Each row also carries `seed_layout_bytes`: what the pre-refactor
//!    layout would have held for the same run — identical except that the
//!    replica table's per-vertex counts were fixed 4-byte values, where the
//!    `VertexTable` layer now stores 2-byte rows whenever `k ≤ u16::MAX`
//!    (every k in the sweep). `no_worse_than_seed` must hold everywhere;
//!    `narrow_counts_smaller` must hold for the replica-table algorithms
//!    (Greedy, HDRF).
//! 2. **Sparse-web** — the dataset the seed code cannot run at all: uk-s
//!    with vertex ids scrambled to sparse 64-bit values. Every vertex-cut
//!    algorithm partitions it through `clugp_graph::idmap::RemappedStream`
//!    and must produce assignments bit-identical to the same algorithm run
//!    over the pre-relabeled dense stream (remap = first-appearance dense
//!    relabeling). The leg records the id-map cost actually paid and
//!    `naive_dense_bytes`, the dense grow-on-demand allocation the seed
//!    layout would have attempted (`(max external id + 1) × 4` bytes — an
//!    OOM by ~nine orders of magnitude).
//!
//! The committed artifact is the memory trajectory future PRs are judged
//! against: per-vertex state regressions show up as `state_bytes` growth at
//! fixed `(dataset, algorithm, k)`.

use super::ExpContext;
use crate::algorithms::Algorithm;
use crate::datasets::{relabel_first_appearance, Dataset, SPARSE_WEB};
use crate::report::{results_dir, save_json, Table};
use crate::runner::PreparedDataset;
use clugp::partitioner::Partitioner;
use clugp_graph::idmap::{RawInMemoryStream, RemappedStream};
use clugp_graph::order::{ordered_edges, StreamOrder};
use clugp_graph::stream::InMemoryStream;

/// One `(dataset, algorithm, k)` row of the dense memory trajectory.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MemoryRun {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of partitions.
    pub k: u32,
    /// Vertices of the streamed graph.
    pub vertices: u64,
    /// Peak working-state bytes (itemized total of the run's MemoryReport).
    pub state_bytes: usize,
    /// Itemized `(structure, bytes)` breakdown.
    pub items: Vec<(String, usize)>,
    /// What the pre-refactor dense layout would have held for this run
    /// (fixed 4-byte replica counts; see the module docs for the model).
    pub seed_layout_bytes: usize,
}

/// The sparse-web leg for one algorithm.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SparseRun {
    /// Algorithm name.
    pub algorithm: String,
    /// Peak working-state bytes over the remapped stream.
    pub state_bytes: usize,
    /// Bytes of the id map (external↔internal tables) the run paid for.
    pub idmap_bytes: usize,
    /// Whether assignments matched the pre-relabeled dense run bit-for-bit.
    pub bit_identical: bool,
}

/// The `results/BENCH_memory.json` payload.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MemoryReport {
    /// Datasets of the dense trajectory.
    pub datasets: Vec<String>,
    /// The k sweep.
    pub ks: Vec<u32>,
    /// Dense trajectory rows.
    pub runs: Vec<MemoryRun>,
    /// True iff `state_bytes <= seed_layout_bytes` on every row.
    pub no_worse_than_seed: bool,
    /// True iff the replica-table algorithms (Greedy, HDRF) are strictly
    /// smaller than the seed layout on every row (the narrow-count win).
    pub narrow_counts_smaller: bool,
    /// Sparse-web dataset name.
    pub sparse_dataset: String,
    /// Edges of the sparse-web stream.
    pub sparse_edges: u64,
    /// Distinct vertices of the sparse-web stream.
    pub sparse_vertices: u64,
    /// Largest external id in the sparse-web stream.
    pub sparse_max_external_id: u64,
    /// Bytes a dense grow-on-demand layout would need for the sparse ids
    /// (`(max external id + 1) × 4`) — why the seed code cannot run it.
    pub naive_dense_bytes: f64,
    /// One row per algorithm on the sparse-web leg.
    pub sparse_runs: Vec<SparseRun>,
    /// True iff every sparse run matched its dense-relabeled reference.
    pub sparse_bit_identical: bool,
}

/// Pre-refactor layout model: the seed layout differed only in the replica
/// table's per-vertex count width, so the delta applies to the algorithms
/// that keep a replica table (Greedy, HDRF) and is zero for everything
/// else. The delta itself is measured off a probe [`ReplicaTable`] with the
/// run's dimensions — `ReplicaTable::memory_bytes_seed_layout` is the
/// single definition of the seed model, so a future count-width change
/// cannot drift this comparison.
fn seed_layout_bytes(algo: Algorithm, state_bytes: usize, vertices: u64, k: u32) -> usize {
    if !matches!(algo, Algorithm::Greedy | Algorithm::Hdrf) {
        return state_bytes;
    }
    let probe = clugp::state::ReplicaTable::new(vertices, k).expect("probe table dimensions");
    state_bytes + (probe.memory_bytes_seed_layout() - probe.memory_bytes())
}

/// BENCH_memory — dense memory-vs-k trajectory on uk-s/twitter-s plus the
/// sparse-web remap leg (see the module docs).
pub fn memory(ctx: &ExpContext) {
    let datasets = [Dataset::UkS, Dataset::TwitterS];

    // Leg 1: dense trajectory. One CSV with type-consistent columns across
    // both legs: dense rows leave the id-map columns empty, sparse rows
    // leave the seed-layout columns empty — every column stays one type
    // for machine consumers of the committed artifact.
    let mut runs: Vec<MemoryRun> = Vec::new();
    let mut table = Table::new(
        "BENCH_memory — partitioner state (KiB) vs #partitions (uk-s + twitter-s)",
        &[
            "Dataset",
            "Algorithm",
            "k",
            "State KiB",
            "Seed KiB",
            "Saved KiB",
            "IdMap KiB",
            "Identical",
        ],
    );
    for ds in datasets {
        let prep = PreparedDataset::load(ds, ctx.scale);
        for algo in Algorithm::COMPETITORS {
            for &k in &ctx.ks {
                let edges = prep.edges_for(algo);
                let mut stream = InMemoryStream::new(prep.graph.num_vertices(), edges.to_vec());
                let run = algo
                    .build()
                    .partition(&mut stream, k)
                    .expect("partitioning failed on a generated dataset");
                let state_bytes = run.memory.total_bytes();
                let vertices = run.partitioning.num_vertices;
                let seed = seed_layout_bytes(algo, state_bytes, vertices, k);
                table.row(vec![
                    prep.name.clone(),
                    algo.name().to_string(),
                    k.to_string(),
                    format!("{:.1}", state_bytes as f64 / 1024.0),
                    format!("{:.1}", seed as f64 / 1024.0),
                    format!("{:.1}", (seed - state_bytes) as f64 / 1024.0),
                    String::new(),
                    String::new(),
                ]);
                runs.push(MemoryRun {
                    dataset: prep.name.clone(),
                    algorithm: algo.name().to_string(),
                    k,
                    vertices,
                    state_bytes,
                    items: run
                        .memory
                        .items()
                        .iter()
                        .map(|(n, b)| (n.clone(), *b))
                        .collect(),
                    seed_layout_bytes: seed,
                });
            }
        }
    }

    // Leg 2: sparse-web. BFS order for every algorithm — this leg pins the
    // id layer (remap == dense relabeling), not stream-order quality. The
    // raw stream is derived from the *same* ordered edge list as the dense
    // reference (the definition of `sparse_web_raw`), so the isomorphism
    // between the two legs is structural, and the BFS traversal runs once.
    let dense_graph = crate::datasets::load(Dataset::UkS, ctx.scale);
    let dense_bfs = ordered_edges(&dense_graph, StreamOrder::Bfs);
    let raw = clugp_graph::idmap::scramble_edges(&dense_bfs);
    let sparse_edges = raw.len() as u64;
    let max_external = raw.iter().map(|e| e.src.max(e.dst)).max().unwrap_or(0);
    let (distinct, relabeled) = relabel_first_appearance(&dense_bfs);

    let mut sparse_runs: Vec<SparseRun> = Vec::new();
    let mut sparse_table = Table::new(
        "BENCH_memory — sparse-web (64-bit hashed ids) through the remap layer",
        &["Algorithm", "State KiB", "IdMap KiB", "Identical"],
    );
    let roster: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("Hashing", Box::new(clugp::baselines::Hashing::default())),
        ("DBH", Box::new(clugp::baselines::Dbh::default())),
        ("Grid", Box::new(clugp::baselines::Grid::default())),
        ("Greedy", Box::new(clugp::baselines::Greedy::new())),
        ("HDRF", Box::new(clugp::baselines::Hdrf::default())),
        ("Mint", Box::new(clugp::baselines::Mint::default())),
        ("CLUGP", Box::new(clugp::clugp::Clugp::default())),
    ];
    for (name, mut algo) in roster {
        let k = 32u32;
        let mut remapped = RemappedStream::remap(RawInMemoryStream::new(raw.clone()))
            .expect("sparse-web remap build");
        let sparse_run = algo
            .partition(&mut remapped, k)
            .expect("sparse-web partition through the remap layer");
        let mut dense_stream = InMemoryStream::new(distinct, relabeled.clone());
        let dense_run = algo
            .partition(&mut dense_stream, k)
            .expect("dense-relabeled reference partition");
        let bit_identical =
            sparse_run.partitioning.assignments == dense_run.partitioning.assignments;
        let idmap_bytes = remapped.id_map().memory_bytes();
        sparse_table.row(vec![
            name.to_string(),
            format!("{:.1}", sparse_run.memory.total_bytes() as f64 / 1024.0),
            format!("{:.1}", idmap_bytes as f64 / 1024.0),
            bit_identical.to_string(),
        ]);
        sparse_runs.push(SparseRun {
            algorithm: name.to_string(),
            state_bytes: sparse_run.memory.total_bytes(),
            idmap_bytes,
            bit_identical,
        });
    }

    table.print();
    sparse_table.print();
    let mut csv = table;
    for r in &sparse_runs {
        csv.row(vec![
            SPARSE_WEB.to_string(),
            r.algorithm.clone(),
            "32".to_string(),
            format!("{:.1}", r.state_bytes as f64 / 1024.0),
            String::new(),
            String::new(),
            format!("{:.1}", r.idmap_bytes as f64 / 1024.0),
            r.bit_identical.to_string(),
        ]);
    }
    csv.save_csv(&results_dir().join("BENCH_memory.csv")).ok();

    let report = MemoryReport {
        datasets: datasets.iter().map(|d| d.name().to_string()).collect(),
        ks: ctx.ks.clone(),
        no_worse_than_seed: runs.iter().all(|r| r.state_bytes <= r.seed_layout_bytes),
        narrow_counts_smaller: runs
            .iter()
            .filter(|r| r.algorithm == "Greedy" || r.algorithm == "HDRF")
            .all(|r| r.state_bytes < r.seed_layout_bytes),
        runs,
        sparse_dataset: SPARSE_WEB.to_string(),
        sparse_edges,
        sparse_vertices: distinct,
        sparse_max_external_id: max_external,
        naive_dense_bytes: (max_external as f64 + 1.0) * 4.0,
        sparse_bit_identical: sparse_runs.iter().all(|r| r.bit_identical),
        sparse_runs,
    };
    save_json("BENCH_memory", &report).ok();
    assert!(
        report.no_worse_than_seed,
        "per-vertex state regressed past the seed layout"
    );
    assert!(
        report.sparse_bit_identical,
        "remapped sparse-web run diverged from the dense-relabeled reference"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_layout_model_charges_narrow_counts_only() {
        // Replica-table algorithms at small k: 2 bytes/vertex saved.
        assert_eq!(seed_layout_bytes(Algorithm::Greedy, 1000, 100, 32), 1200);
        assert_eq!(seed_layout_bytes(Algorithm::Hdrf, 1000, 100, 32), 1200);
        // Beyond u16::MAX partitions the widths coincide.
        assert_eq!(
            seed_layout_bytes(Algorithm::Greedy, 1000, 100, 70_000),
            1000
        );
        // No replica table, no delta.
        assert_eq!(seed_layout_bytes(Algorithm::Dbh, 1000, 100, 32), 1000);
        assert_eq!(seed_layout_bytes(Algorithm::Clugp, 1000, 100, 32), 1000);
    }
}
