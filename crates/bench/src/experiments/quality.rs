//! Quality figures: Fig. 3 (RF vs k), Fig. 4 (Twitter), Fig. 5 (sampled
//! sizes), Fig. 9 (ablations), Fig. 11 (parameter sweeps).

use super::ExpContext;
use crate::algorithms::{Algorithm, BuildOptions};
use crate::datasets::Dataset;
use crate::report::{fmt_secs, results_dir, save_json, Table};
use crate::runner::{run_cell, run_cell_with, PreparedDataset};
use clugp::clugp::{Clugp, ClugpConfig, MigrationPolicy};
use clugp::metrics::PartitionQuality;
use clugp::partitioner::Partitioner;
use clugp_graph::sampling::nested_edge_samples;
use clugp_graph::stream::InMemoryStream;

/// Fig. 3 — replication factor vs number of partitions on the four web
/// analogues, all six algorithms.
pub fn fig3(ctx: &ExpContext) {
    let mut all = Vec::new();
    for ds in Dataset::WEB {
        let prep = PreparedDataset::load(ds, ctx.scale);
        let mut table = Table::new_owned(
            &format!("Fig 3 — RF vs #partitions ({})", ds.name()),
            header_with_ks(&ctx.ks),
        );
        for algo in Algorithm::COMPETITORS {
            let mut row = vec![algo.name().to_string()];
            for &k in &ctx.ks {
                let cell = run_cell(&prep, algo, k);
                row.push(format!("{:.3}", cell.replication_factor));
                all.push(cell);
            }
            table.row(row);
        }
        table.print();
        table
            .save_csv(&results_dir().join(format!("fig3_{}.csv", ds.name())))
            .ok();
    }
    save_json("fig3", &all).ok();
}

/// Fig. 4 — the social-graph counterpoint: (a) RF of HDRF vs CLUGP on the
/// Twitter analogue; (b) total task time (partitioning + simulated PageRank)
/// at k = 32.
pub fn fig4(ctx: &ExpContext) {
    let prep = PreparedDataset::load(Dataset::TwitterS, ctx.scale);
    let mut table = Table::new_owned(
        "Fig 4(a) — RF vs #partitions (twitter-s)",
        header_with_ks(&ctx.ks),
    );
    let mut all = Vec::new();
    for algo in [Algorithm::Hdrf, Algorithm::Clugp] {
        let mut row = vec![algo.name().to_string()];
        for &k in &ctx.ks {
            let cell = run_cell(&prep, algo, k);
            row.push(format!("{:.3}", cell.replication_factor));
            all.push(cell);
        }
        table.row(row);
    }
    table.print();
    table.save_csv(&results_dir().join("fig4a.csv")).ok();

    let mut table_b = Table::new(
        "Fig 4(b) — total task runtime at k=32 (twitter-s): partition + simulated PageRank",
        &["Algorithm", "Partition", "PageRank(sim)", "Total"],
    );
    for algo in [Algorithm::Clugp, Algorithm::Hdrf] {
        let (cell, pagerank_secs) = super::system::pagerank_cost(&prep, algo, 32, None);
        table_b.row(vec![
            algo.name().to_string(),
            fmt_secs(cell.partition_secs),
            fmt_secs(pagerank_secs),
            fmt_secs(cell.partition_secs + pagerank_secs),
        ]);
    }
    table_b.print();
    table_b.save_csv(&results_dir().join("fig4b.csv")).ok();
    save_json("fig4", &all).ok();
}

/// Fig. 5 — RF vs sampled graph size: nested edge samples of the uk-2002
/// analogue at k = 32.
pub fn fig5(ctx: &ExpContext) {
    let graph = crate::datasets::load(Dataset::UkS, ctx.scale);
    let m = graph.num_edges();
    let sizes = [m / 100, m / 20, m / 4, m];
    let samples = nested_edge_samples(&graph, &sizes, 0x5A3);
    let labels: Vec<String> = sizes.iter().map(|s| format!("{s}")).collect();

    let mut table = Table::new_owned("Fig 5 — RF vs sample size (uk-s, k=32)", {
        let mut h = vec!["Algorithm".to_string()];
        h.extend(labels.iter().cloned());
        h
    });
    let mut all = Vec::new();
    for algo in Algorithm::COMPETITORS {
        let mut row = vec![algo.name().to_string()];
        for (i, sample) in samples.iter().enumerate() {
            let prep = PreparedDataset::from_graph(
                &format!("uk-sample-{}", labels[i]),
                std::sync::Arc::new(sample.clone()),
            );
            let cell = run_cell(&prep, algo, 32);
            row.push(format!("{:.3}", cell.replication_factor));
            all.push(cell);
        }
        table.row(row);
    }
    table.print();
    table.save_csv(&results_dir().join("fig5.csv")).ok();
    save_json("fig5", &all).ok();
}

/// Fig. 9 — ablation study on the it-2004 analogue: CLUGP vs CLUGP-S (no
/// splitting) vs CLUGP-G (greedy assignment), plus the migration-policy
/// design ablation (paper-verbatim vs headroom vs anchored migration).
pub fn fig9(ctx: &ExpContext) {
    let prep = PreparedDataset::load(Dataset::ItS, ctx.scale);
    let mut table = Table::new_owned(
        "Fig 9 — ablation study (it-s): RF vs #partitions",
        header_with_ks(&ctx.ks),
    );
    let mut all = Vec::new();
    for algo in Algorithm::ABLATIONS {
        let mut row = vec![algo.name().to_string()];
        for &k in &ctx.ks {
            let cell = run_cell(&prep, algo, k);
            row.push(format!("{:.3}", cell.replication_factor));
            all.push(cell);
        }
        table.row(row);
    }
    table.print();
    table.save_csv(&results_dir().join("fig9.csv")).ok();

    // Extension: migration-policy ablation (DESIGN.md §4 divergence note).
    let mut table_m = Table::new_owned(
        "Fig 9(ext) — migration policy ablation (it-s): RF vs #partitions",
        header_with_ks(&ctx.ks),
    );
    for (label, policy) in [
        ("Anchored(default)", MigrationPolicy::Anchored),
        ("Headroom(Holl)", MigrationPolicy::Headroom),
        ("Paper(verbatim)", MigrationPolicy::Paper),
    ] {
        let mut row = vec![label.to_string()];
        for &k in &ctx.ks {
            let edges = prep.edges_for(Algorithm::Clugp);
            let mut stream = InMemoryStream::new(prep.graph.num_vertices(), edges.to_vec());
            let mut algo = Clugp::new(ClugpConfig {
                migration: policy,
                ..Default::default()
            });
            let run = algo.partition(&mut stream, k).expect("clugp run");
            let q = PartitionQuality::compute(edges, &run.partitioning);
            row.push(format!("{:.3}", q.replication_factor));
        }
        table_m.row(row);
    }
    table_m.print();
    table_m
        .save_csv(&results_dir().join("fig9_migration.csv"))
        .ok();

    // Extension: Vmax sensitivity (the paper fixes Vmax = |E|/k following
    // Hollocou's suggestion; this sweep verifies that choice).
    let mut table_v = Table::new_owned(
        "Fig 9(ext) — Vmax factor ablation (it-s): RF vs #partitions",
        header_with_ks(&ctx.ks),
    );
    for factor in [0.5f64, 1.0, 2.0] {
        let mut row = vec![format!("Vmax={factor}x|E|/k")];
        for &k in &ctx.ks {
            let edges = prep.edges_for(Algorithm::Clugp);
            let mut stream = InMemoryStream::new(prep.graph.num_vertices(), edges.to_vec());
            let mut algo = Clugp::new(ClugpConfig {
                vmax_factor: factor,
                ..Default::default()
            });
            let run = algo.partition(&mut stream, k).expect("clugp run");
            let q = PartitionQuality::compute(edges, &run.partitioning);
            row.push(format!("{:.3}", q.replication_factor));
        }
        table_v.row(row);
    }
    table_v.print();
    table_v.save_csv(&results_dir().join("fig9_vmax.csv")).ok();
    save_json("fig9", &all).ok();
}

/// Fig. 11 — (a) RF vs imbalance factor τ; (b) RF vs relative weight w.
/// Both at k = 32 across the four web analogues.
pub fn fig11(ctx: &ExpContext) {
    let taus = [1.0, 1.02, 1.04, 1.06, 1.08, 1.10];
    let mut table_a = Table::new_owned("Fig 11(a) — RF vs imbalance factor (k=32)", {
        let mut h = vec!["Dataset".to_string()];
        h.extend(taus.iter().map(|t| format!("tau={t:.2}")));
        h
    });
    let mut all = Vec::new();
    for ds in Dataset::WEB {
        let prep = PreparedDataset::load(ds, ctx.scale);
        let mut row = vec![ds.name().to_string()];
        for &tau in &taus {
            let cell = run_cell_with(
                &prep,
                Algorithm::Clugp,
                32,
                &BuildOptions {
                    tau,
                    ..Default::default()
                },
            );
            row.push(format!("{:.3}", cell.replication_factor));
            all.push(cell);
        }
        table_a.row(row);
    }
    table_a.print();
    table_a.save_csv(&results_dir().join("fig11a.csv")).ok();

    let weights = [0.1, 0.3, 0.5, 0.7, 0.9];
    let mut table_b = Table::new_owned("Fig 11(b) — RF vs relative weight (k=32)", {
        let mut h = vec!["Dataset".to_string()];
        h.extend(weights.iter().map(|w| format!("w={w:.1}")));
        h
    });
    for ds in Dataset::WEB {
        let prep = PreparedDataset::load(ds, ctx.scale);
        let mut row = vec![ds.name().to_string()];
        for &w in &weights {
            let cell = run_cell_with(
                &prep,
                Algorithm::Clugp,
                32,
                &BuildOptions {
                    relative_weight: Some(w),
                    ..Default::default()
                },
            );
            row.push(format!("{:.3}", cell.replication_factor));
            all.push(cell);
        }
        table_b.row(row);
    }
    table_b.print();
    table_b.save_csv(&results_dir().join("fig11b.csv")).ok();
    save_json("fig11", &all).ok();
}

fn header_with_ks(ks: &[u32]) -> Vec<String> {
    let mut h = vec!["Algorithm".to_string()];
    for &k in ks {
        h.push(format!("k={k}"));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_include_all_ks() {
        let h = header_with_ks(&[4, 8]);
        assert_eq!(h, vec!["Algorithm".to_string(), "k=4".into(), "k=8".into()]);
    }
}
