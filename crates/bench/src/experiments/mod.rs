//! One entry point per table/figure of the paper's evaluation (§VI).
//!
//! | Entry | Paper artifact | What it reproduces |
//! |-------|----------------|--------------------|
//! | [`tables::table1`] | Table I | measured time/quality classes of the six algorithms |
//! | [`tables::table3`] | Table III | dataset inventory of the synthetic analogues |
//! | [`quality::fig3`] | Fig. 3 | RF vs #partitions, 4 web graphs, 6 algorithms |
//! | [`quality::fig4`] | Fig. 4 | Twitter: RF (HDRF vs CLUGP) + end-to-end runtime |
//! | [`quality::fig5`] | Fig. 5 | RF vs sampled graph size |
//! | [`scalability::fig6`] | Fig. 6 | memory vs #partitions |
//! | [`scalability::fig7`] | Fig. 7 | partitioning runtime vs #partitions |
//! | [`system::fig8`] | Fig. 8 | PageRank on the GAS simulator: comm volume, runtime, latency sweep |
//! | [`quality::fig9`] | Fig. 9 | ablations CLUGP / CLUGP-S / CLUGP-G (+ migration policies) |
//! | [`scalability::fig10`] | Fig. 10 | parallelization: threads, compute-vs-I/O, batch size |
//! | [`scalability::parallel`] | Fig. 10(a) claim | measured game thread-scaling curve (`BENCH_parallel.json`) |
//! | [`quality::fig11`] | Fig. 11 | imbalance factor τ and relative weight sweeps |
//! | [`throughput::throughput`] | perf trajectory | per-edge vs chunked streaming throughput (`BENCH_throughput.json`) |
//! | [`memory::memory`] | Fig. 6 claim + id-space layer | memory trajectory + sparse-web remap leg (`BENCH_memory.json`) |
//! | [`io::io`] | Fig. 10(a) claim + storage layer | bytes/edge + decode throughput, text vs binary vs packed, sharded reads (`BENCH_io.json`) |
//! | [`ampc::ampc`] | §V deployment claim | coordinator/worker engine: wall-clock + bytes-exchanged vs worker count, both transports (`BENCH_ampc.json`) |

pub mod ampc;
pub mod io;
pub mod memory;
pub mod orders;
pub mod quality;
pub mod scalability;
pub mod system;
pub mod tables;
pub mod throughput;

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Dataset scale multiplier (also via `CLUGP_SCALE`).
    pub scale: f64,
    /// Partition counts to sweep (also via `CLUGP_KS`).
    pub ks: Vec<u32>,
}

impl Default for ExpContext {
    fn default() -> Self {
        ExpContext {
            scale: crate::datasets::scale(),
            ks: crate::runner::k_sweep(),
        }
    }
}

impl ExpContext {
    /// A reduced context for smoke tests and Criterion benches: small
    /// datasets, short k sweep.
    pub fn quick() -> Self {
        ExpContext {
            scale: 0.05,
            ks: vec![4, 16],
        }
    }
}

/// Runs every experiment in paper order.
pub fn run_all(ctx: &ExpContext) {
    tables::table3(ctx);
    tables::table1(ctx);
    quality::fig3(ctx);
    quality::fig4(ctx);
    quality::fig5(ctx);
    scalability::fig6(ctx);
    scalability::fig7(ctx);
    system::fig8(ctx);
    quality::fig9(ctx);
    scalability::fig10(ctx);
    quality::fig11(ctx);
    orders::orders(ctx);
    scalability::parallel(ctx);
    throughput::throughput(ctx);
    memory::memory(ctx);
    io::io(ctx);
    ampc::ampc(ctx);
}
