//! Fig. 8 — the "real system" experiments: PageRank on the PowerGraph-style
//! GAS simulator, driven by each algorithm's actual partitioning.

use super::ExpContext;
use crate::algorithms::Algorithm;
use crate::datasets::Dataset;
use crate::report::{fmt_bytes, fmt_secs, results_dir, save_json, Table};
use crate::runner::{run_cell, CellResult, PreparedDataset};
use clugp_engine::apps::PageRank;
use clugp_engine::{CostModel, DistributedGraph, Engine};
use clugp_graph::stream::InMemoryStream;
use std::time::Duration;

/// Partitions `prep` with `algo`, runs 10 PageRank iterations on the GAS
/// simulator, and returns the partitioning cell plus the estimated PageRank
/// runtime in seconds (with optional RTT override).
pub fn pagerank_cost(
    prep: &PreparedDataset,
    algo: Algorithm,
    k: u32,
    rtt: Option<Duration>,
) -> (CellResult, f64) {
    let (cell, est) = pagerank_estimate(prep, algo, k, rtt);
    (cell, est.total_secs())
}

/// Full cost estimate variant of [`pagerank_cost`].
pub fn pagerank_estimate(
    prep: &PreparedDataset,
    algo: Algorithm,
    k: u32,
    rtt: Option<Duration>,
) -> (CellResult, clugp_engine::cost::CostEstimate) {
    let cell = run_cell(prep, algo, k);
    let edges = prep.edges_for(algo);
    let mut stream = InMemoryStream::new(prep.graph.num_vertices(), edges.to_vec());
    let mut partitioner = algo.build();
    let run = partitioner.partition(&mut stream, k).expect("partition");
    let placed = DistributedGraph::place(edges, &run.partitioning);
    let engine = Engine::new(&placed);
    let (_, stats) = engine.run(&PageRank::default());
    let model = CostModel {
        rtt: rtt.unwrap_or(Duration::from_millis(10)),
        ..Default::default()
    };
    (cell, model.estimate(&stats))
}

/// Fig. 8 — (a) communication volume per dataset, (b) estimated PageRank
/// runtime per dataset (compute + communication), (c) runtime vs injected
/// RTT on the it-2004 analogue. All at k = 32 with 10 PageRank iterations.
pub fn fig8(ctx: &ExpContext) {
    let k = 32;
    let mut table_a = Table::new_owned("Fig 8(a) — PageRank communication volume (k=32)", {
        let mut h = vec!["Algorithm".to_string()];
        h.extend(Dataset::WEB.iter().map(|d| d.name().to_string()));
        h
    });
    let mut table_b = Table::new_owned("Fig 8(b) — PageRank estimated runtime (k=32)", {
        let mut h = vec!["Algorithm".to_string()];
        h.extend(Dataset::WEB.iter().map(|d| d.name().to_string()));
        h
    });
    let mut json = Vec::new();
    let mut per_algo: Vec<(Algorithm, Vec<String>, Vec<String>)> = Algorithm::COMPETITORS
        .iter()
        .map(|&a| (a, vec![a.name().to_string()], vec![a.name().to_string()]))
        .collect();
    for ds in Dataset::WEB {
        let prep = PreparedDataset::load(ds, ctx.scale);
        for (algo, row_a, row_b) in per_algo.iter_mut() {
            let (_, est) = pagerank_estimate(&prep, *algo, k, None);
            row_a.push(fmt_bytes(est.total_bytes));
            row_b.push(fmt_secs(est.total_secs()));
            json.push((ds.name(), algo.name(), est));
        }
    }
    for (_, row_a, row_b) in per_algo {
        table_a.row(row_a);
        table_b.row(row_b);
    }
    table_a.print();
    table_b.print();
    table_a.save_csv(&results_dir().join("fig8a.csv")).ok();
    table_b.save_csv(&results_dir().join("fig8b.csv")).ok();

    // (c) latency sweep on it-s.
    let prep = PreparedDataset::load(Dataset::ItS, ctx.scale);
    let rtts = [10u64, 50, 100];
    let mut table_c = Table::new_owned("Fig 8(c) — PageRank runtime vs RTT (it-s, k=32)", {
        let mut h = vec!["Algorithm".to_string()];
        h.extend(rtts.iter().map(|ms| format!("{ms}ms")));
        h
    });
    for algo in Algorithm::COMPETITORS {
        let mut row = vec![algo.name().to_string()];
        for &ms in &rtts {
            let (_, est) = pagerank_estimate(&prep, algo, k, Some(Duration::from_millis(ms)));
            row.push(fmt_secs(est.total_secs()));
            json.push((prep.name.as_str(), algo.name(), est));
        }
        table_c.row(row);
    }
    table_c.print();
    table_c.save_csv(&results_dir().join("fig8c.csv")).ok();
    save_json("fig8", &json).ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_cost_orders_hashing_above_clugp() {
        // Hashing's replication factor is several times CLUGP's, so its
        // simulated communication volume must be larger.
        let prep = PreparedDataset::load(Dataset::UkS, 0.02);
        let (_, est_clugp) = pagerank_estimate(&prep, Algorithm::Clugp, 8, None);
        let (_, est_hash) = pagerank_estimate(&prep, Algorithm::Hashing, 8, None);
        assert!(
            est_hash.total_bytes > est_clugp.total_bytes,
            "hashing {} should move more bytes than CLUGP {}",
            est_hash.total_bytes,
            est_clugp.total_bytes
        );
    }
}
