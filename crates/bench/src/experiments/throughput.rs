//! BENCH_throughput — the streaming-ABI throughput baseline
//! (`results/BENCH_throughput.{json,csv}`).
//!
//! Measures end-to-end partitioning throughput (edges/second) for each
//! algorithm on the standard generator mix, comparing the legacy per-edge
//! pull path (one virtual dispatch, one `Option` branch, one buffer
//! round-trip per edge — forced via
//! [`clugp_graph::stream::PerEdgeStream`]) against the chunked path (the
//! zero-copy slice fast path of `InMemoryStream`), plus a sweep over source
//! chunk granularities via [`clugp_graph::stream::ChunkLimited`].
//!
//! The committed artifact is the perf trajectory baseline future PRs are
//! judged against: regressions in the streaming layer show up as a drop in
//! `chunked_eps`, and the `bit_identical` flag guards against the chunked
//! path ever buying speed with different partitions.

use super::ExpContext;
use crate::algorithms::{Algorithm, BuildOptions};
use crate::datasets::Dataset;
use crate::report::{results_dir, save_json, Table};
use crate::runner::PreparedDataset;
use clugp_graph::stream::{ChunkLimited, InMemoryStream, PerEdgeStream, DEFAULT_CHUNK_EDGES};

/// One point of the chunk-granularity sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ChunkPoint {
    /// Source chunk cap (edges per pull).
    pub chunk_edges: usize,
    /// Best-of-repeats wall clock, seconds.
    pub secs: f64,
    /// Edges per second at this granularity.
    pub eps: f64,
}

/// One `(dataset, algorithm)` row of the throughput report.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ThroughputRun {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of partitions.
    pub k: u32,
    /// Edge count of the measured stream.
    pub edges: u64,
    /// Best-of-repeats wall clock on the forced per-edge path, seconds.
    pub per_edge_secs: f64,
    /// Edges per second on the per-edge path.
    pub per_edge_eps: f64,
    /// Best-of-repeats wall clock on the chunked (slice fast-path) stream.
    pub chunked_secs: f64,
    /// Edges per second on the chunked path.
    pub chunked_eps: f64,
    /// `chunked_eps / per_edge_eps`.
    pub speedup: f64,
    /// Whether both paths produced byte-identical assignments.
    pub bit_identical: bool,
    /// Throughput at capped source chunk granularities.
    pub chunk_sweep: Vec<ChunkPoint>,
}

/// The `results/BENCH_throughput.json` payload.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ThroughputReport {
    /// Datasets of the generator mix (web crawl + social analogues).
    pub datasets: Vec<String>,
    /// Number of partitions.
    pub k: u32,
    /// Timing repeats for the per-edge/chunked legs (best is reported).
    pub repeats: usize,
    /// Timing repeats per chunk-sweep point (best is reported).
    pub sweep_repeats: usize,
    /// The consumer-side chunk size (edges per `next_chunk` pull).
    pub default_chunk_edges: usize,
    /// True iff `chunked_eps >= per_edge_eps` for every run.
    pub chunked_wins_everywhere: bool,
    /// True iff every run was bit-identical across paths.
    pub bit_identical: bool,
    /// One row per `(dataset, algorithm)`.
    pub runs: Vec<ThroughputRun>,
}

fn best_of<F: FnMut() -> (f64, Vec<u32>)>(repeats: usize, mut f: F) -> (f64, Vec<u32>) {
    let mut best = f64::INFINITY;
    let mut assignments = Vec::new();
    for _ in 0..repeats {
        let (secs, a) = f();
        if secs < best {
            best = secs;
        }
        assignments = a;
    }
    (best, assignments)
}

/// BENCH_throughput — per-edge vs chunked streaming throughput on the uk-s
/// (web crawl) and twitter-s (BA social) analogues for the five algorithms
/// whose stream pull is a measurable share of runtime (see the roster note
/// inside for why Mint sits this one out).
pub fn throughput(ctx: &ExpContext) {
    let k = 32u32;
    // Mint is deliberately absent: at its default batch size the stream
    // pull is <1% of runtime (game solving dominates at ~0.5M edges/s), so
    // the per-edge/chunked delta (~0.2%) is far below single-host noise and
    // the comparison carries no signal either way — committing a coin flip
    // would poison the trajectory baseline. Mint's chunking *correctness*
    // (batch boundaries independent of source granularity) is pinned by
    // tests/chunked_equivalence.rs instead.
    let roster = [
        Algorithm::Hdrf,
        Algorithm::Greedy,
        Algorithm::Hashing,
        Algorithm::Dbh,
        Algorithm::Clugp,
    ];
    // Best-of-9 on the decisive per-edge/chunked legs: the chunked path
    // does strictly less work per edge, so with enough repeats both minima
    // converge and the comparison reflects the ABI, not scheduler noise
    // (the compute-bound algorithms' stream share is small, putting their
    // honest speedup near 1.0x — sub-percent noise on a multi-second run
    // needs this many repeats to settle). The granularity sweep is
    // informational and keeps a shorter best-of-5.
    let repeats = 9usize;
    let sweep_repeats = 5usize;
    let sweep_caps = [64usize, 512, DEFAULT_CHUNK_EDGES];
    let datasets = [Dataset::UkS, Dataset::TwitterS];

    let mut table = Table::new(
        "BENCH_throughput — edges/sec, per-edge vs chunked streaming (k=32)",
        &[
            "Dataset",
            "Algorithm",
            "Edges",
            "Per-edge",
            "Chunked",
            "Speedup",
            "Identical",
        ],
    );
    let mut runs: Vec<ThroughputRun> = Vec::new();
    for ds in datasets {
        let prep = PreparedDataset::load(ds, ctx.scale);
        let n = prep.graph.num_vertices();
        for algo in roster {
            let edges = prep.edges_for(algo);
            let m = edges.len() as u64;

            // One worker thread for the parallel algorithms (Mint, CLUGP):
            // this experiment measures the streaming ABI, and on small
            // machines pool-scheduling jitter would otherwise swamp the
            // per-edge/chunked delta for the compute-bound algorithms.
            let time_run = |stream: &mut dyn clugp_graph::stream::RestreamableStream| {
                let mut partitioner = algo.build_with(&BuildOptions {
                    threads: 1,
                    ..Default::default()
                });
                let t = std::time::Instant::now();
                let run = partitioner.partition(stream, k).expect("partition");
                (t.elapsed().as_secs_f64(), run.partitioning.assignments)
            };

            // The two main legs are interleaved within each repeat so that
            // slow drift (thermal, background load) cannot bias one leg.
            // One resettable stream per leg — `partition` itself resets
            // before streaming, so no per-repeat edge copies.
            let mut per_edge_stream = PerEdgeStream::new(InMemoryStream::new(n, edges.to_vec()));
            let mut chunked_stream = InMemoryStream::new(n, edges.to_vec());
            let mut per_edge_secs = f64::INFINITY;
            let mut chunked_secs = f64::INFINITY;
            let mut per_edge_assign = Vec::new();
            let mut chunked_assign = Vec::new();
            for _ in 0..repeats {
                let (secs, a) = time_run(&mut per_edge_stream);
                per_edge_secs = per_edge_secs.min(secs);
                per_edge_assign = a;
                let (secs, a) = time_run(&mut chunked_stream);
                chunked_secs = chunked_secs.min(secs);
                chunked_assign = a;
            }
            let bit_identical = per_edge_assign == chunked_assign;

            let chunk_sweep: Vec<ChunkPoint> = sweep_caps
                .iter()
                .map(|&cap| {
                    let mut s = ChunkLimited::new(InMemoryStream::new(n, edges.to_vec()), cap);
                    let (secs, _) = best_of(sweep_repeats, || time_run(&mut s));
                    ChunkPoint {
                        chunk_edges: cap,
                        secs,
                        eps: m as f64 / secs.max(f64::EPSILON),
                    }
                })
                .collect();

            let run = ThroughputRun {
                dataset: prep.name.clone(),
                algorithm: algo.name().to_string(),
                k,
                edges: m,
                per_edge_secs,
                per_edge_eps: m as f64 / per_edge_secs.max(f64::EPSILON),
                chunked_secs,
                chunked_eps: m as f64 / chunked_secs.max(f64::EPSILON),
                speedup: per_edge_secs / chunked_secs.max(f64::EPSILON),
                bit_identical,
                chunk_sweep,
            };
            table.row(vec![
                run.dataset.clone(),
                run.algorithm.clone(),
                run.edges.to_string(),
                format!("{:.2}M/s", run.per_edge_eps / 1e6),
                format!("{:.2}M/s", run.chunked_eps / 1e6),
                format!("{:.2}x", run.speedup),
                run.bit_identical.to_string(),
            ]);
            runs.push(run);
        }
    }
    table.print();
    table
        .save_csv(&results_dir().join("BENCH_throughput.csv"))
        .ok();
    let report = ThroughputReport {
        datasets: datasets.iter().map(|d| d.name().to_string()).collect(),
        k,
        repeats,
        sweep_repeats,
        default_chunk_edges: DEFAULT_CHUNK_EDGES,
        chunked_wins_everywhere: runs.iter().all(|r| r.chunked_eps >= r.per_edge_eps),
        bit_identical: runs.iter().all(|r| r.bit_identical),
        runs,
    };
    save_json("BENCH_throughput", &report).ok();
    assert!(
        report.bit_identical,
        "chunked streaming must not change any partition"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_keeps_minimum() {
        let mut times = [3.0f64, 1.0, 2.0].into_iter();
        let (best, _) = best_of(3, || (times.next().unwrap(), vec![1]));
        assert_eq!(best, 1.0);
    }
}
