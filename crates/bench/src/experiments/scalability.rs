//! Scalability figures: Fig. 6 (memory), Fig. 7 (runtime), Fig. 10
//! (parallelization & batch size), and the thread-scaling curve behind
//! Fig. 10(a) ([`parallel`], written to `results/BENCH_parallel.json`).

use super::ExpContext;
use crate::algorithms::{Algorithm, BuildOptions};
use crate::datasets::Dataset;
use crate::report::{fmt_secs, results_dir, save_json, Table};
use crate::runner::{run_cell, run_cell_with, PreparedDataset};
use clugp::metrics::PartitionQuality;
use clugp_graph::io::binary::{write_binary_graph, FileEdgeStream};
use clugp_graph::stream::TimedStream;

/// Fig. 6 — working-state memory vs number of partitions on the it-2004
/// analogue.
pub fn fig6(ctx: &ExpContext) {
    let prep = PreparedDataset::load(Dataset::ItS, ctx.scale);
    let mut table = Table::new_owned("Fig 6 — memory (MiB) vs #partitions (it-s)", {
        let mut h = vec!["Algorithm".to_string()];
        h.extend(ctx.ks.iter().map(|k| format!("k={k}")));
        h
    });
    let mut all = Vec::new();
    for algo in Algorithm::COMPETITORS {
        let mut row = vec![algo.name().to_string()];
        for &k in &ctx.ks {
            let cell = run_cell(&prep, algo, k);
            row.push(format!(
                "{:.2}",
                cell.memory_bytes as f64 / (1024.0 * 1024.0)
            ));
            all.push(cell);
        }
        table.row(row);
    }
    table.print();
    table.save_csv(&results_dir().join("fig6.csv")).ok();
    save_json("fig6", &all).ok();
}

/// Fig. 7 — partitioning runtime vs number of partitions on the uk-2002 and
/// it-2004 analogues.
pub fn fig7(ctx: &ExpContext) {
    let mut all = Vec::new();
    for ds in [Dataset::UkS, Dataset::ItS] {
        let prep = PreparedDataset::load(ds, ctx.scale);
        let mut table = Table::new_owned(
            &format!("Fig 7 — runtime (s) vs #partitions ({})", ds.name()),
            {
                let mut h = vec!["Algorithm".to_string()];
                h.extend(ctx.ks.iter().map(|k| format!("k={k}")));
                h
            },
        );
        for algo in Algorithm::COMPETITORS {
            let mut row = vec![algo.name().to_string()];
            for &k in &ctx.ks {
                let cell = run_cell(&prep, algo, k);
                row.push(format!("{:.3}", cell.partition_secs));
                all.push(cell);
            }
            table.row(row);
        }
        table.print();
        table
            .save_csv(&results_dir().join(format!("fig7_{}.csv", ds.name())))
            .ok();
    }
    save_json("fig7", &all).ok();
}

/// Fig. 10 — parallelization: (a) runtime split into computation vs I/O for
/// the heuristics and CLUGP at 8/16/32 threads, streaming from disk so the
/// three-pass I/O cost is charged honestly; (b) RF and runtime vs game batch
/// size.
pub fn fig10(ctx: &ExpContext) {
    let prep = PreparedDataset::load(Dataset::ItS, ctx.scale);
    let k = 32;

    // Persist both stream orders to disk once.
    let dir = std::env::temp_dir().join("clugp_fig10");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bfs_path = dir.join("it_bfs.bin");
    let rnd_path = dir.join("it_rnd.bin");
    write_binary_graph(
        &bfs_path,
        prep.graph.num_vertices(),
        prep.edges_for(Algorithm::Clugp),
    )
    .expect("write bfs stream");
    write_binary_graph(
        &rnd_path,
        prep.graph.num_vertices(),
        prep.edges_for(Algorithm::Hdrf),
    )
    .expect("write random stream");

    let mut table = Table::new(
        "Fig 10(a) — runtime split, file-backed streams (it-s, k=32)",
        &["Algorithm", "Threads", "Passes", "I/O", "Compute", "Total"],
    );
    let mut rows_json: Vec<(String, usize, f64, f64)> = Vec::new();
    let mut run_one = |label: &str, algo: Algorithm, threads: usize, table: &mut Table| {
        let path = match algo.stream_order() {
            clugp_graph::order::StreamOrder::Bfs => &bfs_path,
            _ => &rnd_path,
        };
        let file = FileEdgeStream::open(path).expect("open stream file");
        let mut timed = TimedStream::new(file);
        let mut partitioner = algo.build_with(&BuildOptions {
            threads,
            ..Default::default()
        });
        let t = std::time::Instant::now();
        let run = partitioner.partition(&mut timed, k).expect("partition");
        let total = t.elapsed().as_secs_f64();
        let io = timed.io_time().as_secs_f64();
        let passes = if matches!(
            algo,
            Algorithm::Clugp | Algorithm::ClugpNoSplit | Algorithm::ClugpGreedyAssign
        ) {
            3
        } else {
            1
        };
        drop(run);
        table.row(vec![
            label.to_string(),
            if threads == 0 {
                "all".into()
            } else {
                threads.to_string()
            },
            passes.to_string(),
            fmt_secs(io),
            fmt_secs(total - io),
            fmt_secs(total),
        ]);
        rows_json.push((label.to_string(), threads, io, total));
    };
    run_one("HDRF", Algorithm::Hdrf, 0, &mut table);
    run_one("Greedy", Algorithm::Greedy, 0, &mut table);
    run_one("Mint", Algorithm::Mint, 32, &mut table);
    for threads in [8usize, 16, 32] {
        run_one(
            &format!("CLU{threads}"),
            Algorithm::Clugp,
            threads,
            &mut table,
        );
    }
    table.print();
    table.save_csv(&results_dir().join("fig10a.csv")).ok();
    save_json("fig10a", &rows_json).ok();

    // (b) batch size sweep: B = 640 × {1..10}.
    let mut table_b = Table::new(
        "Fig 10(b) — effect of game batch size (it-s, k=32)",
        &["BatchSize", "RF", "Runtime"],
    );
    let mut json_b = Vec::new();
    for mult in 1..=10usize {
        let batch = 640 * mult;
        let cell = run_cell_with(
            &prep,
            Algorithm::Clugp,
            k,
            &BuildOptions {
                batch_size: batch,
                ..Default::default()
            },
        );
        table_b.row(vec![
            batch.to_string(),
            format!("{:.3}", cell.replication_factor),
            fmt_secs(cell.partition_secs),
        ]);
        json_b.push(cell);
    }
    table_b.print();
    table_b.save_csv(&results_dir().join("fig10b.csv")).ok();
    save_json("fig10b", &json_b).ok();
}

/// One row of the thread-scaling report.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ParallelRun {
    /// Configured pool width.
    pub threads: usize,
    /// Distinct OS threads a probe observed doing work in a pool this wide.
    pub os_threads_engaged: usize,
    /// Best-of-repeats wall clock of the game phase, seconds.
    pub game_secs: f64,
    /// Best-of-repeats end-to-end wall clock, seconds.
    pub total_secs: f64,
    /// Game-phase speedup over the 1-thread run.
    pub game_speedup: f64,
    /// End-to-end speedup over the 1-thread run.
    pub total_speedup: f64,
}

/// The `results/BENCH_parallel.json` payload.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ParallelReport {
    /// Dataset name.
    pub dataset: String,
    /// Edge count of the measured stream.
    pub edges: u64,
    /// Number of partitions.
    pub k: u32,
    /// Game batch size (clusters per independent game).
    pub batch_size: usize,
    /// Timing repeats per thread count (best is reported).
    pub repeats: usize,
    /// Whether every thread count produced bit-identical assignments.
    pub bit_identical: bool,
    /// One row per thread count.
    pub runs: Vec<ParallelRun>,
}

/// Counts the distinct OS threads a pool of the given width actually
/// engages (direct evidence that the vendored rayon runs real threads).
fn os_threads_engaged(threads: usize) -> usize {
    use rayon::prelude::*;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let ids = std::sync::Mutex::new(std::collections::HashSet::new());
    let items: Vec<u32> = (0..(threads as u32) * 8).collect();
    let _: Vec<()> = pool.install(|| {
        items
            .par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(2));
            })
            .collect()
    });
    let n = ids.lock().unwrap().len();
    n
}

/// BENCH_parallel — the measured thread-scaling curve of the batched game
/// (the claim behind Fig. 10(a)): partitions the uk-s analogue with CLUGP
/// at 1/2/4/8 threads, records game-phase and end-to-end wall clock plus
/// speedups, probes how many OS threads each pool engages, and checks that
/// assignments are bit-identical across thread counts.
pub fn parallel(ctx: &ExpContext) {
    let prep = PreparedDataset::load(Dataset::UkS, ctx.scale);
    let k = 32u32;
    // Small batches so the game fans out over many independent sub-solves
    // even at reduced dataset scales.
    let batch_size = 128usize;
    let repeats = 3usize;
    let edges = prep.edges_for(Algorithm::Clugp);

    let mut table = Table::new(
        "BENCH_parallel — game thread scaling (uk-s, k=32)",
        &[
            "Threads",
            "OS thr",
            "Game",
            "Game speedup",
            "Total",
            "Total speedup",
            "Identical",
        ],
    );
    let mut runs: Vec<ParallelRun> = Vec::new();
    let mut baseline: Option<(f64, f64, Vec<u32>)> = None;
    let mut bit_identical = true;
    for threads in [1usize, 2, 4, 8] {
        let engaged = os_threads_engaged(threads);
        let mut best_game = f64::INFINITY;
        let mut best_total = f64::INFINITY;
        let mut assignments: Vec<u32> = Vec::new();
        for _ in 0..repeats {
            let mut stream =
                clugp_graph::stream::InMemoryStream::new(prep.graph.num_vertices(), edges.to_vec());
            let mut algo = Algorithm::Clugp.build_with(&BuildOptions {
                threads,
                batch_size,
                ..Default::default()
            });
            let run = algo.partition(&mut stream, k).expect("partition");
            let game = run
                .timings
                .phase("game")
                .expect("game phase timing")
                .as_secs_f64();
            best_game = best_game.min(game);
            best_total = best_total.min(run.timings.total.as_secs_f64());
            assignments = run.partitioning.assignments;
        }
        let (game1, total1, base_assign) =
            baseline.get_or_insert_with(|| (best_game, best_total, assignments.clone()));
        let identical = assignments == *base_assign;
        bit_identical &= identical;
        let run = ParallelRun {
            threads,
            os_threads_engaged: engaged,
            game_secs: best_game,
            total_secs: best_total,
            game_speedup: *game1 / best_game.max(f64::EPSILON),
            total_speedup: *total1 / best_total.max(f64::EPSILON),
        };
        table.row(vec![
            threads.to_string(),
            engaged.to_string(),
            fmt_secs(run.game_secs),
            format!("{:.2}x", run.game_speedup),
            fmt_secs(run.total_secs),
            format!("{:.2}x", run.total_speedup),
            identical.to_string(),
        ]);
        runs.push(run);
    }
    table.print();
    table
        .save_csv(&results_dir().join("BENCH_parallel.csv"))
        .ok();
    let report = ParallelReport {
        dataset: prep.name.clone(),
        edges: prep.num_edges(),
        k,
        batch_size,
        repeats,
        bit_identical,
        runs,
    };
    save_json("BENCH_parallel", &report).ok();
    assert!(
        report.bit_identical,
        "thread counts must not change the partition"
    );
}

/// Helper shared with the quality module: measures RF under a thread count
/// (used by tests).
pub fn clugp_rf_with_threads(prep: &PreparedDataset, k: u32, threads: usize) -> f64 {
    let edges = prep.edges_for(Algorithm::Clugp);
    let mut stream =
        clugp_graph::stream::InMemoryStream::new(prep.graph.num_vertices(), edges.to_vec());
    let mut algo = Algorithm::Clugp.build_with(&BuildOptions {
        threads,
        ..Default::default()
    });
    let run = algo.partition(&mut stream, k).expect("partition");
    PartitionQuality::compute(edges, &run.partitioning).replication_factor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_does_not_change_quality() {
        let prep = PreparedDataset::load(Dataset::UkS, 0.02);
        let a = clugp_rf_with_threads(&prep, 8, 1);
        let b = clugp_rf_with_threads(&prep, 8, 4);
        assert!((a - b).abs() < 1e-12, "rf {a} vs {b}");
    }
}
