//! Experiment harness for the CLUGP reproduction.
//!
//! One module per concern:
//!
//! * [`datasets`] — the synthetic analogues of the paper's Table III
//!   corpora (see DESIGN.md §4 for the substitution rationale), with an
//!   in-process cache and a global scale knob (`CLUGP_SCALE`).
//! * [`algorithms`] — the roster of partitioners under test, each paired
//!   with its best stream order exactly as the paper configures them.
//! * [`runner`] — runs one `(dataset, algorithm, k)` cell and collects
//!   quality/time/memory measurements.
//! * [`report`] — aligned-table printing and CSV/JSON export into
//!   `results/`.
//! * [`experiments`] — one entry point per paper table/figure
//!   (`table1`, `table3`, `fig3` … `fig11`).
//!
//! The `experiments` binary dispatches to these; the Criterion benches
//! reuse the same modules at reduced scale.

#![warn(missing_docs)]

pub mod algorithms;
pub mod benchkit;
pub mod datasets;
pub mod experiments;
pub mod report;
pub mod runner;
