//! The roster of partitioners under evaluation, each paired with its best
//! stream order ("for a fair comparison, we choose default settings and
//! best streaming orders for each of the competitors": random for HDRF,
//! Greedy, Hashing, DBH; BFS for Mint and CLUGP).

use clugp::baselines::{Dbh, Greedy, Hashing, Hdrf, Mint, MintConfig};
use clugp::clugp::{Clugp, ClugpConfig, ClusterAssignMode};
use clugp::partitioner::Partitioner;
use clugp_graph::order::StreamOrder;

/// Identifier of an algorithm under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Random hashing (PowerGraph default).
    Hashing,
    /// Degree-based hashing.
    Dbh,
    /// PowerGraph oblivious greedy.
    Greedy,
    /// High-Degree Replicated First.
    Hdrf,
    /// Quasi-streaming game partitioning.
    Mint,
    /// The paper's method.
    Clugp,
    /// Ablation: CLUGP without the splitting operation.
    ClugpNoSplit,
    /// Ablation: CLUGP with greedy cluster assignment instead of the game.
    ClugpGreedyAssign,
}

impl Algorithm {
    /// The six algorithms of the headline comparison (Fig. 3, 6, 7, 8).
    pub const COMPETITORS: [Algorithm; 6] = [
        Algorithm::Hdrf,
        Algorithm::Greedy,
        Algorithm::Hashing,
        Algorithm::Dbh,
        Algorithm::Mint,
        Algorithm::Clugp,
    ];

    /// The ablation set of Fig. 9.
    pub const ABLATIONS: [Algorithm; 3] = [
        Algorithm::Clugp,
        Algorithm::ClugpNoSplit,
        Algorithm::ClugpGreedyAssign,
    ];

    /// Display name (matches the paper's legends).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Hashing => "Hashing",
            Algorithm::Dbh => "DBH",
            Algorithm::Greedy => "Greedy",
            Algorithm::Hdrf => "HDRF",
            Algorithm::Mint => "Mint",
            Algorithm::Clugp => "CLUGP",
            Algorithm::ClugpNoSplit => "CLUGP-S",
            Algorithm::ClugpGreedyAssign => "CLUGP-G",
        }
    }

    /// The stream order the paper grants this algorithm.
    pub fn stream_order(&self) -> StreamOrder {
        match self {
            Algorithm::Hashing | Algorithm::Dbh | Algorithm::Greedy | Algorithm::Hdrf => {
                StreamOrder::Random(0x5EED)
            }
            Algorithm::Mint
            | Algorithm::Clugp
            | Algorithm::ClugpNoSplit
            | Algorithm::ClugpGreedyAssign => StreamOrder::Bfs,
        }
    }

    /// Instantiates the partitioner with the paper's default parameters.
    pub fn build(&self) -> Box<dyn Partitioner> {
        self.build_with(&BuildOptions::default())
    }

    /// Instantiates with overrides (thread counts, batch size, τ, weight —
    /// the knobs the parameter-study figures sweep).
    pub fn build_with(&self, opts: &BuildOptions) -> Box<dyn Partitioner> {
        match self {
            Algorithm::Hashing => Box::new(Hashing::default()),
            Algorithm::Dbh => Box::new(Dbh::default()),
            Algorithm::Greedy => Box::new(Greedy::new()),
            Algorithm::Hdrf => Box::new(Hdrf::default()),
            Algorithm::Mint => Box::new(Mint::new(MintConfig {
                threads: opts.threads,
                ..Default::default()
            })),
            Algorithm::Clugp => Box::new(Clugp::new(opts.clugp_config(true, true))),
            Algorithm::ClugpNoSplit => Box::new(Clugp::new(opts.clugp_config(false, true))),
            Algorithm::ClugpGreedyAssign => Box::new(Clugp::new(opts.clugp_config(true, false))),
        }
    }
}

/// Parameter overrides for the sweep experiments.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Worker threads (0 = default pool).
    pub threads: usize,
    /// CLUGP game batch size.
    pub batch_size: usize,
    /// CLUGP imbalance factor τ.
    pub tau: f64,
    /// CLUGP relative weight w (None = paper default λ_max).
    pub relative_weight: Option<f64>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            threads: 0,
            batch_size: 6400,
            tau: 1.0,
            relative_weight: None,
        }
    }
}

impl BuildOptions {
    fn clugp_config(&self, splitting: bool, game: bool) -> ClugpConfig {
        ClugpConfig {
            tau: self.tau,
            batch_size: self.batch_size,
            threads: self.threads,
            lambda: match self.relative_weight {
                Some(w) => clugp::clugp::LambdaMode::Weight(w),
                None => clugp::clugp::LambdaMode::Max,
            },
            splitting,
            assign_mode: if game {
                ClusterAssignMode::Game
            } else {
                ClusterAssignMode::Greedy
            },
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Algorithm::COMPETITORS.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn stream_orders_match_paper() {
        assert!(matches!(
            Algorithm::Hdrf.stream_order(),
            StreamOrder::Random(_)
        ));
        assert!(matches!(Algorithm::Clugp.stream_order(), StreamOrder::Bfs));
        assert!(matches!(Algorithm::Mint.stream_order(), StreamOrder::Bfs));
    }

    #[test]
    fn build_produces_matching_names() {
        for a in Algorithm::COMPETITORS {
            assert_eq!(a.build().name(), a.name());
        }
        for a in Algorithm::ABLATIONS {
            assert_eq!(a.build().name(), a.name());
        }
    }

    #[test]
    fn options_flow_into_clugp() {
        let opts = BuildOptions {
            tau: 1.08,
            ..Default::default()
        };
        let cfg = opts.clugp_config(true, true);
        assert_eq!(cfg.tau, 1.08);
        assert!(cfg.splitting);
    }
}
