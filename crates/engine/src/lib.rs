//! PowerGraph-style synchronous GAS (Gather–Apply–Scatter) execution
//! simulator.
//!
//! The paper's system experiments (Fig. 4(b), Fig. 8) run PageRank and
//! Connected Components on PowerGraph over 32 dockerized nodes, with PUMBA
//! injecting network latency. This crate simulates that substrate faithfully
//! at the level that matters for partition-quality comparisons:
//!
//! * [`placement`] — builds the per-machine subgraphs from a real
//!   vertex-cut [`clugp::Partitioning`]: each edge lives on exactly one
//!   machine, each vertex has one *master* and `|P(v)|−1` *mirror* replicas.
//! * [`runtime`] — executes vertex programs in bulk-synchronous supersteps
//!   with the exact PowerGraph message pattern: mirrors send partial gather
//!   accumulators to masters, masters apply and synchronize the new vertex
//!   value back to mirrors. Every message and byte is counted.
//! * [`cost`] — converts the measured per-machine work and per-superstep
//!   message volumes into wall-clock estimates under a configurable
//!   compute/bandwidth/latency model (the PUMBA RTT sweep of Fig. 8(c)).
//! * [`apps`] — PageRank, Connected Components, single-source BFS/SSSP and
//!   degree counting, each verified against sequential references.
//!
//! Computation results are *exact* (not approximated by the cost model):
//! the engine really gathers along in-edges machine by machine, so tests can
//! assert equality with single-threaded reference implementations.

#![warn(missing_docs)]

pub mod ampc;
pub mod apps;
pub mod cost;
pub mod placement;
pub mod runtime;
pub mod stats;

pub use cost::CostModel;
pub use placement::DistributedGraph;
pub use runtime::{Engine, VertexProgram};
pub use stats::{ExecutionStats, SuperstepStats};
