//! The synchronous GAS engine.
//!
//! One superstep = Gather (each machine scans its local edges, producing
//! partial accumulators; mirrors ship partials to masters), Apply (masters
//! compute new vertex values), Scatter/Sync (masters ship changed values
//! back to mirrors). Computation is exact — results are bit-for-bit
//! deterministic given the placement — while every mirror↔master message is
//! counted for the cost model.

use crate::placement::{DistributedGraph, NOT_LOCAL};
use crate::stats::{ExecutionStats, SuperstepStats};
use clugp_graph::types::VertexId;

/// Which neighbor values a vertex gathers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherDirection {
    /// Gather along in-edges (e.g. PageRank: contributions flow src → dst).
    In,
    /// Gather along out-edges.
    Out,
    /// Gather along both (undirected semantics, e.g. connected components).
    Both,
}

/// Static per-vertex context available to programs.
#[derive(Debug, Clone, Copy)]
pub struct VertexCtx {
    /// Global out-degree.
    pub out_degree: u64,
    /// Global in-degree.
    pub in_degree: u64,
}

/// A GAS vertex program (PowerGraph's abstraction).
pub trait VertexProgram {
    /// Per-vertex state.
    type Value: Clone + PartialEq + Send + Sync;
    /// Gather accumulator (commutative-associative under [`Self::merge`]).
    type Accum: Clone + Send;

    /// Gather direction.
    fn direction(&self) -> GatherDirection;

    /// Initial value of vertex `v`.
    fn init(&self, v: VertexId, ctx: &VertexCtx) -> Self::Value;

    /// Contribution of a neighbor's value along one edge.
    fn gather(&self, neighbor: &Self::Value, neighbor_ctx: &VertexCtx) -> Self::Accum;

    /// Folds `b` into `a`.
    fn merge(&self, a: &mut Self::Accum, b: Self::Accum);

    /// Computes the new value of `v` from the merged accumulator (`None`
    /// when no edge contributed this superstep).
    fn apply(
        &self,
        v: VertexId,
        old: &Self::Value,
        acc: Option<Self::Accum>,
        ctx: &VertexCtx,
    ) -> Self::Value;

    /// Whether to stop as soon as no vertex value changes.
    fn halt_on_fixpoint(&self) -> bool {
        true
    }

    /// Hard cap on supersteps.
    fn max_supersteps(&self) -> usize;
}

/// The engine: binds a placed graph with precomputed degrees.
#[derive(Debug)]
pub struct Engine<'g> {
    graph: &'g DistributedGraph,
    ctx: Vec<VertexCtx>,
    replica_count: Vec<u32>,
}

impl<'g> Engine<'g> {
    /// Prepares an engine over `graph` (one pass to compute degrees and
    /// replica counts).
    pub fn new(graph: &'g DistributedGraph) -> Self {
        let n = graph.num_vertices as usize;
        let mut ctx = vec![
            VertexCtx {
                out_degree: 0,
                in_degree: 0
            };
            n
        ];
        let mut replica_count = vec![0u32; n];
        for m in &graph.machines {
            for &(sl, dl) in &m.edges {
                ctx[m.vertices[sl as usize] as usize].out_degree += 1;
                ctx[m.vertices[dl as usize] as usize].in_degree += 1;
            }
            for &v in &m.vertices {
                replica_count[v as usize] += 1;
            }
        }
        Engine {
            graph,
            ctx,
            replica_count,
        }
    }

    /// Per-vertex static context.
    pub fn vertex_ctx(&self) -> &[VertexCtx] {
        &self.ctx
    }

    /// Runs `program` to completion; returns final vertex values and the
    /// per-superstep statistics.
    pub fn run<P: VertexProgram>(&self, program: &P) -> (Vec<P::Value>, ExecutionStats) {
        let g = self.graph;
        let n = g.num_vertices as usize;
        let mut values: Vec<P::Value> = (0..n as u32)
            .map(|v| program.init(v, &self.ctx[v as usize]))
            .collect();
        let mut stats = ExecutionStats::default();

        for _ in 0..program.max_supersteps() {
            let t_step = if clugp_obs::enabled() {
                clugp_obs::now_us()
            } else {
                0
            };
            let mut step = SuperstepStats::new(g.k);
            // Merged accumulators per global vertex, in deterministic
            // machine order.
            let mut accums: Vec<Option<P::Accum>> = vec![None; n];

            for (mi, m) in g.machines.iter().enumerate() {
                // Local partials per local vertex.
                let mut partial: Vec<Option<P::Accum>> = vec![None; m.vertices.len()];
                let mut scanned = 0u64;
                for &(sl, dl) in &m.edges {
                    scanned += 1;
                    let sg = m.vertices[sl as usize];
                    let dg = m.vertices[dl as usize];
                    match program.direction() {
                        GatherDirection::In => {
                            contribute::<P>(
                                program,
                                &mut partial[dl as usize],
                                &values[sg as usize],
                                &self.ctx[sg as usize],
                            );
                        }
                        GatherDirection::Out => {
                            contribute::<P>(
                                program,
                                &mut partial[sl as usize],
                                &values[dg as usize],
                                &self.ctx[dg as usize],
                            );
                        }
                        GatherDirection::Both => {
                            contribute::<P>(
                                program,
                                &mut partial[dl as usize],
                                &values[sg as usize],
                                &self.ctx[sg as usize],
                            );
                            contribute::<P>(
                                program,
                                &mut partial[sl as usize],
                                &values[dg as usize],
                                &self.ctx[dg as usize],
                            );
                        }
                    }
                }
                step.gather_edges[mi] = scanned;

                // Ship partials: mirrors message their master, master-local
                // partials merge free of charge.
                for (li, part) in partial.into_iter().enumerate() {
                    let Some(part) = part else { continue };
                    let gv = m.vertices[li] as usize;
                    if !m.is_master[li] {
                        step.gather_messages[mi] += 1;
                    }
                    match &mut accums[gv] {
                        Some(acc) => program.merge(acc, part),
                        slot @ None => *slot = Some(part),
                    }
                }
            }

            // Apply at masters; sync changed values to mirrors.
            let mut changed = 0u64;
            for v in 0..n {
                let new = program.apply(v as u32, &values[v], accums[v].take(), &self.ctx[v]);
                if new != values[v] {
                    changed += 1;
                    let master = g.master_of[v];
                    if master != NOT_LOCAL {
                        // One sync message per mirror replica.
                        let mirrors = u64::from(self.replica_count[v]) - 1;
                        step.sync_messages[master as usize] += mirrors;
                    }
                    values[v] = new;
                }
                let master = g.master_of[v];
                if master != NOT_LOCAL {
                    step.apply_vertices[master as usize] += 1;
                }
            }
            step.active_vertices = changed;
            if clugp_obs::enabled() {
                clugp_obs::record_span("superstep", t_step, changed);
            }
            stats.supersteps.push(step);
            if changed == 0 && program.halt_on_fixpoint() {
                break;
            }
        }
        (values, stats)
    }
}

fn contribute<P: VertexProgram>(
    program: &P,
    slot: &mut Option<P::Accum>,
    neighbor: &P::Value,
    ctx: &VertexCtx,
) {
    let c = program.gather(neighbor, ctx);
    match slot {
        Some(acc) => program.merge(acc, c),
        None => *slot = Some(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clugp::Partitioning;
    use clugp_graph::types::Edge;

    /// Sums in-neighbor ids once (1 superstep) — a minimal gather check.
    struct SumInIds;

    impl VertexProgram for SumInIds {
        type Value = u64;
        type Accum = u64;

        fn direction(&self) -> GatherDirection {
            GatherDirection::In
        }

        fn init(&self, v: VertexId, _ctx: &VertexCtx) -> u64 {
            u64::from(v)
        }

        fn gather(&self, neighbor: &u64, _ctx: &VertexCtx) -> u64 {
            *neighbor
        }

        fn merge(&self, a: &mut u64, b: u64) {
            *a += b;
        }

        fn apply(&self, _v: VertexId, _old: &u64, acc: Option<u64>, _ctx: &VertexCtx) -> u64 {
            acc.unwrap_or(0)
        }

        fn max_supersteps(&self) -> usize {
            1
        }
    }

    fn placed(edges: &[Edge], k: u32, assignments: Vec<u32>) -> DistributedGraph {
        let n = clugp_graph::types::implied_num_vertices(edges);
        let mut loads = vec![0u64; k as usize];
        for &p in &assignments {
            loads[p as usize] += 1;
        }
        let p = Partitioning {
            k,
            num_vertices: n,
            assignments,
            loads,
        };
        DistributedGraph::place(edges, &p)
    }

    #[test]
    fn gather_sums_across_machines() {
        // 1→0 on machine 0, 2→0 on machine 1: vertex 0's accumulator must
        // merge partials from both machines.
        let edges = vec![Edge::new(1, 0), Edge::new(2, 0)];
        let d = placed(&edges, 2, vec![0, 1]);
        let engine = Engine::new(&d);
        let (values, stats) = engine.run(&SumInIds);
        assert_eq!(values[0], 1 + 2);
        // Vertex 0 is replicated on both machines: exactly one mirror
        // partial message.
        assert_eq!(stats.supersteps[0].gather_messages.iter().sum::<u64>(), 1);
    }

    #[test]
    fn degrees_computed_globally() {
        let edges = vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 2)];
        let d = placed(&edges, 2, vec![0, 1, 0]);
        let engine = Engine::new(&d);
        assert_eq!(engine.vertex_ctx()[0].out_degree, 2);
        assert_eq!(engine.vertex_ctx()[2].in_degree, 2);
    }

    #[test]
    fn fixpoint_halts_early() {
        // SumInIds with no edges: values become 0 after step 1, stay 0.
        struct Stable;
        impl VertexProgram for Stable {
            type Value = u64;
            type Accum = u64;
            fn direction(&self) -> GatherDirection {
                GatherDirection::In
            }
            fn init(&self, _v: VertexId, _c: &VertexCtx) -> u64 {
                7
            }
            fn gather(&self, n: &u64, _c: &VertexCtx) -> u64 {
                *n
            }
            fn merge(&self, a: &mut u64, b: u64) {
                *a = (*a).max(b);
            }
            fn apply(&self, _v: VertexId, old: &u64, _acc: Option<u64>, _c: &VertexCtx) -> u64 {
                *old
            }
            fn max_supersteps(&self) -> usize {
                100
            }
        }
        let edges = vec![Edge::new(0, 1)];
        let d = placed(&edges, 1, vec![0]);
        let engine = Engine::new(&d);
        let (_, stats) = engine.run(&Stable);
        assert_eq!(stats.num_supersteps(), 1, "should halt at first fixpoint");
    }

    #[test]
    fn sync_messages_follow_replication() {
        // Vertex 0 on 3 machines: a change to it costs 2 sync messages.
        let edges = vec![Edge::new(1, 0), Edge::new(2, 0), Edge::new(3, 0)];
        let d = placed(&edges, 3, vec![0, 1, 2]);
        let engine = Engine::new(&d);
        let (_, stats) = engine.run(&SumInIds);
        let step = &stats.supersteps[0];
        let total_sync: u64 = step.sync_messages.iter().sum();
        // v0 changed (0 → 6) with 3 replicas (2 mirrors); v1, v2, v3 changed
        // from id → 0 with 1 replica each (0 mirrors).
        assert_eq!(total_sync, 2);
    }
}
