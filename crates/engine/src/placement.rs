//! Master/mirror placement: turning a vertex-cut partitioning into
//! per-machine subgraphs (PowerGraph §3: "vertex-cut" representation).

use crate::ampc::ReplicaScatter;
use clugp::Partitioning;
use clugp_graph::stream::{chunk_edges, EdgeStream};
use clugp_graph::types::{Edge, VertexId};

/// Sentinel for "vertex not present on this machine".
pub const NOT_LOCAL: u32 = u32::MAX;

/// One machine's share of the graph.
#[derive(Debug, Clone)]
pub struct MachineSubgraph {
    /// Global ids of the vertices replicated on this machine (masters and
    /// mirrors), in ascending order.
    pub vertices: Vec<VertexId>,
    /// Local edges, as indices into `vertices` (`(src_local, dst_local)`).
    pub edges: Vec<(u32, u32)>,
    /// For each local vertex, whether this machine holds its master.
    pub is_master: Vec<bool>,
}

impl MachineSubgraph {
    /// Number of mirror (non-master) replicas hosted here.
    pub fn num_mirrors(&self) -> usize {
        self.is_master.iter().filter(|&&m| !m).count()
    }
}

/// The fully placed distributed graph.
#[derive(Debug, Clone)]
pub struct DistributedGraph {
    /// Number of machines (= partitions).
    pub k: u32,
    /// Number of global vertices.
    pub num_vertices: u64,
    /// Per-machine subgraphs.
    pub machines: Vec<MachineSubgraph>,
    /// Master machine per global vertex (`NOT_LOCAL` for vertices absent
    /// from every partition, i.e. isolated vertices).
    pub master_of: Vec<u32>,
    /// Local index of each global vertex on each machine
    /// (`local_index[machine][global]`, `NOT_LOCAL` if absent). Dense but
    /// simple; suitable for the simulator's scales.
    local_index: Vec<Vec<u32>>,
}

impl DistributedGraph {
    /// Places `edges` (stream order) according to `partitioning`.
    ///
    /// Masters are assigned to the least-loaded machine (by replica count)
    /// holding the vertex — PowerGraph's heuristic for balancing master
    /// duty.
    ///
    /// # Panics
    ///
    /// Panics if `edges.len() != partitioning.assignments.len()`, or if the
    /// partitioning's dimensions exceed the internal id space (impossible
    /// for a `Partitioning` produced by an in-tree partitioner, whose own
    /// `max_vertices` caps are checked first — see `clugp::vertex_table`).
    pub fn place(edges: &[Edge], partitioning: &Partitioning) -> Self {
        let mut stream = SliceStream { edges, pos: 0 };
        Self::place_stream(&mut stream, partitioning)
    }

    /// Places a streamed edge sequence according to `partitioning` —
    /// bounded-memory: the input is drained in chunks (never materialized
    /// whole), replica presence is scattered to keyspace-sharded state
    /// shards in parallel (see [`crate::ampc`]), and only the per-machine
    /// output subgraphs are held. Produces exactly the same placement as
    /// [`DistributedGraph::place`] over the equivalent edge slice.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`DistributedGraph::place`].
    pub fn place_stream(stream: &mut dyn EdgeStream, partitioning: &Partitioning) -> Self {
        let k = partitioning.k;
        let n = partitioning.num_vertices as usize;

        // Single pass: scatter replica bits to the shard threads and stage
        // each edge's endpoints on its machine (still as global ids — local
        // indices exist only after master selection below).
        let mut scatter = ReplicaScatter::new(n as u64, k, placement_shards());
        let mut machines: Vec<MachineSubgraph> = (0..k)
            .map(|_| MachineSubgraph {
                vertices: Vec::new(),
                edges: Vec::new(),
                is_master: Vec::new(),
            })
            .collect();
        let cap = chunk_edges();
        let mut buf = Vec::with_capacity(cap);
        let mut seen = 0usize;
        while stream.next_chunk(&mut buf, cap) != 0 {
            assert!(
                seen + buf.len() <= partitioning.assignments.len(),
                "edges and assignments must align"
            );
            for (e, &p) in buf.iter().zip(&partitioning.assignments[seen..]) {
                scatter.insert(u64::from(e.src), p);
                scatter.insert(u64::from(e.dst), p);
                machines[p as usize].edges.push((e.src, e.dst));
            }
            seen += buf.len();
        }
        assert_eq!(
            seen,
            partitioning.assignments.len(),
            "edges and assignments must align"
        );
        let mut replicas = scatter
            .finish()
            .expect("partitioning dimensions exceed the internal id space");
        // The scatter only covers touched vertices; pad to the declared
        // vertex count so isolated vertices read as replica-free.
        replicas
            .ensure_vertices(n as u64)
            .expect("partitioning dimensions exceed the internal id space");
        let n = n.max(replicas.num_vertices() as usize);

        // Master selection: least master-loaded machine among replicas.
        let mut master_of = vec![NOT_LOCAL; n];
        let mut master_load = vec![0u64; k as usize];
        for v in 0..n as u32 {
            let mut best: Option<u32> = None;
            for p in replicas.partitions_of(v) {
                best = match best {
                    None => Some(p),
                    Some(b) if master_load[p as usize] < master_load[b as usize] => Some(p),
                    keep => keep,
                };
            }
            if let Some(p) = best {
                master_of[v as usize] = p;
                master_load[p as usize] += 1;
            }
        }

        // Build per-machine vertex lists and local indices, then rewrite the
        // staged global edge pairs into local indices in place.
        let mut local_index = vec![vec![NOT_LOCAL; n]; k as usize];
        for v in 0..n as u32 {
            for p in replicas.partitions_of(v) {
                let m = &mut machines[p as usize];
                local_index[p as usize][v as usize] = m.vertices.len() as u32;
                m.vertices.push(v);
                m.is_master.push(master_of[v as usize] == p);
            }
        }
        for (p, m) in machines.iter_mut().enumerate() {
            for e in &mut m.edges {
                let sl = local_index[p][e.0 as usize];
                let dl = local_index[p][e.1 as usize];
                debug_assert_ne!(sl, NOT_LOCAL);
                debug_assert_ne!(dl, NOT_LOCAL);
                *e = (sl, dl);
            }
        }

        DistributedGraph {
            k,
            num_vertices: n as u64,
            machines,
            master_of,
            local_index,
        }
    }

    /// Local index of `v` on `machine`, or `NOT_LOCAL`.
    pub fn local_index(&self, machine: u32, v: VertexId) -> u32 {
        self.local_index[machine as usize][v as usize]
    }

    /// Total number of replicas across machines (`Σ_v |P(v)|`).
    pub fn total_replicas(&self) -> u64 {
        self.machines.iter().map(|m| m.vertices.len() as u64).sum()
    }

    /// Total number of mirrors (`Σ_v (|P(v)|−1)`).
    pub fn total_mirrors(&self) -> u64 {
        self.machines.iter().map(|m| m.num_mirrors() as u64).sum()
    }

    /// Total edges across machines (must equal the input edge count).
    pub fn total_edges(&self) -> u64 {
        self.machines.iter().map(|m| m.edges.len() as u64).sum()
    }
}

/// Shard-thread count for the replica scatter. The result is identical at
/// any count (BitOr merges are commutative); this only tunes parallelism.
fn placement_shards() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// Borrowed-slice adapter so the legacy `place(&edges, ..)` signature rides
/// the streamed path without copying the input.
struct SliceStream<'a> {
    edges: &'a [Edge],
    pos: usize,
}

impl EdgeStream for SliceStream<'_> {
    fn next_edge(&mut self) -> Option<Edge> {
        let e = self.edges.get(self.pos).copied();
        if e.is_some() {
            self.pos += 1;
        }
        e
    }

    fn next_chunk(&mut self, buf: &mut Vec<Edge>, cap: usize) -> usize {
        buf.clear();
        let take = cap.max(1).min(self.edges.len() - self.pos);
        buf.extend_from_slice(&self.edges[self.pos..self.pos + take]);
        self.pos += take;
        take
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.edges.len() as u64)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partitioning(k: u32, n: u64, assignments: Vec<u32>) -> Partitioning {
        let mut loads = vec![0u64; k as usize];
        for &p in &assignments {
            loads[p as usize] += 1;
        }
        Partitioning {
            k,
            num_vertices: n,
            assignments,
            loads,
        }
    }

    #[test]
    fn every_edge_lands_on_its_partition() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)];
        let p = partitioning(2, 4, vec![0, 1, 1]);
        let d = DistributedGraph::place(&edges, &p);
        assert_eq!(d.machines[0].edges.len(), 1);
        assert_eq!(d.machines[1].edges.len(), 2);
        assert_eq!(d.total_edges(), 3);
    }

    #[test]
    fn shared_vertex_has_one_master() {
        // Vertex 1 appears on both machines.
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2)];
        let p = partitioning(2, 3, vec![0, 1]);
        let d = DistributedGraph::place(&edges, &p);
        let m = d.master_of[1];
        assert!(m < 2);
        let masters: usize = d
            .machines
            .iter()
            .enumerate()
            .filter(|(mi, mach)| {
                let li = d.local_index(*mi as u32, 1);
                li != NOT_LOCAL && mach.is_master[li as usize]
            })
            .count();
        assert_eq!(masters, 1);
        assert_eq!(d.total_mirrors(), 1);
        assert_eq!(d.total_replicas(), 4); // v0:1 + v1:2 + v2:1
    }

    #[test]
    fn local_indices_resolve_round_trip() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2)];
        let p = partitioning(2, 3, vec![0, 1]);
        let d = DistributedGraph::place(&edges, &p);
        for (mi, m) in d.machines.iter().enumerate() {
            for (li, &g) in m.vertices.iter().enumerate() {
                assert_eq!(d.local_index(mi as u32, g), li as u32);
            }
        }
    }

    #[test]
    fn isolated_vertices_have_no_master() {
        let edges = vec![Edge::new(0, 1)];
        let p = partitioning(2, 10, vec![0]);
        let d = DistributedGraph::place(&edges, &p);
        assert_eq!(d.master_of[5], NOT_LOCAL);
        assert_ne!(d.master_of[0], NOT_LOCAL);
    }

    #[test]
    fn vertices_sorted_per_machine() {
        let edges = vec![Edge::new(3, 1), Edge::new(0, 2), Edge::new(1, 0)];
        let p = partitioning(2, 4, vec![0, 0, 0]);
        let d = DistributedGraph::place(&edges, &p);
        let vs = &d.machines[0].vertices;
        assert!(vs.windows(2).all(|w| w[0] < w[1]));
    }
}
