//! Execution statistics: per-superstep and aggregate message/work counts,
//! the raw material for the cost model.

use serde::Serialize;

/// Counters for one bulk-synchronous superstep.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SuperstepStats {
    /// Edges scanned during gather, per machine.
    pub gather_edges: Vec<u64>,
    /// Vertex apply operations, per machine (masters only).
    pub apply_vertices: Vec<u64>,
    /// Gather-accumulator messages sent mirror → master, per source machine.
    pub gather_messages: Vec<u64>,
    /// Value-sync messages sent master → mirror, per source machine.
    pub sync_messages: Vec<u64>,
    /// Number of active vertices at the start of the step.
    pub active_vertices: u64,
}

impl SuperstepStats {
    /// Creates zeroed counters for `k` machines.
    pub fn new(k: u32) -> Self {
        SuperstepStats {
            gather_edges: vec![0; k as usize],
            apply_vertices: vec![0; k as usize],
            gather_messages: vec![0; k as usize],
            sync_messages: vec![0; k as usize],
            active_vertices: 0,
        }
    }

    /// Total messages (gather + sync) this superstep.
    pub fn total_messages(&self) -> u64 {
        self.gather_messages.iter().sum::<u64>() + self.sync_messages.iter().sum::<u64>()
    }

    /// Maximum per-machine messages (the BSP bottleneck machine).
    pub fn max_machine_messages(&self) -> u64 {
        (0..self.gather_messages.len())
            .map(|i| self.gather_messages[i] + self.sync_messages[i])
            .max()
            .unwrap_or(0)
    }

    /// Maximum per-machine gather work (edges scanned).
    pub fn max_machine_edges(&self) -> u64 {
        self.gather_edges.iter().copied().max().unwrap_or(0)
    }
}

/// Aggregate statistics of a full vertex-program execution.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ExecutionStats {
    /// One entry per executed superstep.
    pub supersteps: Vec<SuperstepStats>,
}

impl ExecutionStats {
    /// Number of supersteps executed.
    pub fn num_supersteps(&self) -> usize {
        self.supersteps.len()
    }

    /// Total messages over the whole run.
    pub fn total_messages(&self) -> u64 {
        self.supersteps.iter().map(|s| s.total_messages()).sum()
    }

    /// Total edges scanned over the whole run.
    pub fn total_gather_edges(&self) -> u64 {
        self.supersteps
            .iter()
            .map(|s| s.gather_edges.iter().sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_totals() {
        let mut s = SuperstepStats::new(2);
        s.gather_messages = vec![3, 1];
        s.sync_messages = vec![2, 2];
        assert_eq!(s.total_messages(), 8);
        assert_eq!(s.max_machine_messages(), 5);
    }

    #[test]
    fn max_machine_edges() {
        let mut s = SuperstepStats::new(3);
        s.gather_edges = vec![5, 9, 2];
        assert_eq!(s.max_machine_edges(), 9);
    }

    #[test]
    fn aggregate_over_supersteps() {
        let mut a = SuperstepStats::new(1);
        a.gather_messages = vec![4];
        a.gather_edges = vec![10];
        let mut b = SuperstepStats::new(1);
        b.sync_messages = vec![6];
        b.gather_edges = vec![7];
        let stats = ExecutionStats {
            supersteps: vec![a, b],
        };
        assert_eq!(stats.num_supersteps(), 2);
        assert_eq!(stats.total_messages(), 10);
        assert_eq!(stats.total_gather_edges(), 17);
    }

    #[test]
    fn empty_stats() {
        let s = ExecutionStats::default();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.num_supersteps(), 0);
    }
}
