//! Single-source BFS levels (unit-weight SSSP), gathering along in-edges of
//! the *undirected* view like the PowerGraph SSSP example.

use crate::runtime::{GatherDirection, VertexCtx, VertexProgram};
use clugp_graph::csr::CsrGraph;
use clugp_graph::types::VertexId;
use std::collections::VecDeque;

/// Distance value for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// BFS level computation from a single source.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// Source vertex.
    pub source: VertexId,
    /// Superstep cap.
    pub max_supersteps: usize,
    /// Treat edges as undirected.
    pub undirected: bool,
}

impl Bfs {
    /// BFS from `source` over the undirected view.
    pub fn undirected(source: VertexId) -> Self {
        Bfs {
            source,
            max_supersteps: 10_000,
            undirected: true,
        }
    }

    /// BFS from `source` following edge direction.
    pub fn directed(source: VertexId) -> Self {
        Bfs {
            source,
            max_supersteps: 10_000,
            undirected: false,
        }
    }
}

impl VertexProgram for Bfs {
    type Value = u32;
    type Accum = u32;

    fn direction(&self) -> GatherDirection {
        if self.undirected {
            GatherDirection::Both
        } else {
            GatherDirection::In
        }
    }

    fn init(&self, v: VertexId, _ctx: &VertexCtx) -> u32 {
        if v == self.source {
            0
        } else {
            UNREACHED
        }
    }

    fn gather(&self, neighbor: &u32, _ctx: &VertexCtx) -> u32 {
        neighbor.saturating_add(1)
    }

    fn merge(&self, a: &mut u32, b: u32) {
        *a = (*a).min(b);
    }

    fn apply(&self, _v: VertexId, old: &u32, acc: Option<u32>, _ctx: &VertexCtx) -> u32 {
        match acc {
            Some(d) => (*old).min(d),
            None => *old,
        }
    }

    fn max_supersteps(&self) -> usize {
        self.max_supersteps
    }
}

/// Sequential reference BFS levels.
pub fn sequential_bfs_levels(graph: &CsrGraph, source: VertexId, undirected: bool) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut dist = vec![UNREACHED; n];
    if n == 0 {
        return dist;
    }
    let reverse = if undirected {
        Some(graph.transpose())
    } else {
        None
    };
    dist[source as usize] = 0;
    let mut q = VecDeque::from([source]);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        let mut visit = |t: u32| {
            if dist[t as usize] == UNREACHED {
                dist[t as usize] = du + 1;
                q.push_back(t);
            }
        };
        for &t in graph.out_neighbors(u) {
            visit(t);
        }
        if let Some(rev) = &reverse {
            for &t in rev.out_neighbors(u) {
                visit(t);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::DistributedGraph;
    use crate::runtime::Engine;
    use clugp::baselines::Hashing;
    use clugp::Partitioner;
    use clugp_graph::stream::InMemoryStream;
    use clugp_graph::types::Edge;

    fn run_bfs(edges: &[Edge], k: u32, prog: &Bfs) -> Vec<u32> {
        let n = clugp_graph::types::implied_num_vertices(edges);
        let mut s = InMemoryStream::new(n, edges.to_vec());
        let run = Hashing::default().partition(&mut s, k).unwrap();
        let d = DistributedGraph::place(edges, &run.partitioning);
        Engine::new(&d).run(prog).0
    }

    #[test]
    fn path_levels() {
        let edges: Vec<Edge> = (0..5).map(|i| Edge::new(i, i + 1)).collect();
        let levels = run_bfs(&edges, 2, &Bfs::directed(0));
        assert_eq!(levels, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn directed_unreachable() {
        let edges = vec![Edge::new(1, 0)];
        let levels = run_bfs(&edges, 1, &Bfs::directed(0));
        assert_eq!(levels[0], 0);
        assert_eq!(levels[1], UNREACHED);
    }

    #[test]
    fn undirected_reaches_backwards() {
        let edges = vec![Edge::new(1, 0)];
        let levels = run_bfs(&edges, 1, &Bfs::undirected(0));
        assert_eq!(levels, vec![0, 1]);
    }

    #[test]
    fn matches_reference_on_random_graph() {
        use clugp_graph::gen::{generate_er, ErConfig};
        let g = generate_er(&ErConfig {
            vertices: 200,
            edges: 500,
            seed: 3,
        });
        let edges = g.edge_vec();
        for undirected in [false, true] {
            let prog = Bfs {
                source: 0,
                max_supersteps: 10_000,
                undirected,
            };
            let engine_levels = run_bfs(&edges, 4, &prog);
            let reference = sequential_bfs_levels(&g, 0, undirected);
            assert_eq!(engine_levels, reference, "undirected={undirected}");
        }
    }
}
