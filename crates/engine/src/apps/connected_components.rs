//! Connected Components by min-label propagation — the paper's second
//! workload. Treats edges as undirected (gathers both directions);
//! converges exactly to the smallest vertex id of each weakly connected
//! component, which equals the union-find ground truth in
//! [`clugp_graph::analysis::connected_component_labels`].

use crate::runtime::{GatherDirection, VertexCtx, VertexProgram};
use clugp_graph::csr::CsrGraph;
use clugp_graph::types::VertexId;

/// The min-label-propagation vertex program.
#[derive(Debug, Clone)]
pub struct ConnectedComponents {
    /// Superstep cap (diameter bound; label propagation needs at most the
    /// graph diameter plus one rounds).
    pub max_supersteps: usize,
}

impl Default for ConnectedComponents {
    fn default() -> Self {
        ConnectedComponents {
            max_supersteps: 10_000,
        }
    }
}

impl VertexProgram for ConnectedComponents {
    type Value = u32;
    type Accum = u32;

    fn direction(&self) -> GatherDirection {
        GatherDirection::Both
    }

    fn init(&self, v: VertexId, _ctx: &VertexCtx) -> u32 {
        v
    }

    fn gather(&self, neighbor: &u32, _ctx: &VertexCtx) -> u32 {
        *neighbor
    }

    fn merge(&self, a: &mut u32, b: u32) {
        *a = (*a).min(b);
    }

    fn apply(&self, _v: VertexId, old: &u32, acc: Option<u32>, _ctx: &VertexCtx) -> u32 {
        match acc {
            Some(m) => (*old).min(m),
            None => *old,
        }
    }

    fn max_supersteps(&self) -> usize {
        self.max_supersteps
    }
}

/// Sequential reference: union-find component labels (min id per
/// component).
pub fn sequential_components(graph: &CsrGraph) -> Vec<u32> {
    clugp_graph::analysis::connected_component_labels(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::DistributedGraph;
    use crate::runtime::Engine;
    use clugp::baselines::{Dbh, Hashing};
    use clugp::Partitioner;
    use clugp_graph::stream::InMemoryStream;
    use clugp_graph::types::Edge;

    fn run_cc(edges: &[Edge], k: u32) -> Vec<u32> {
        let n = clugp_graph::types::implied_num_vertices(edges);
        let mut s = InMemoryStream::new(n, edges.to_vec());
        let run = Hashing::default().partition(&mut s, k).unwrap();
        let d = DistributedGraph::place(edges, &run.partitioning);
        Engine::new(&d).run(&ConnectedComponents::default()).0
    }

    #[test]
    fn two_components_exact() {
        let edges = vec![
            Edge::new(1, 0),
            Edge::new(1, 2),
            Edge::new(4, 3),
            Edge::new(4, 5),
        ];
        let labels = run_cc(&edges, 2);
        let g = CsrGraph::from_edges_auto(&edges);
        assert_eq!(labels, sequential_components(&g));
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn direction_is_ignored() {
        // Chain 4→3→2→1→0 all pointing "down": still one component.
        let edges: Vec<Edge> = (1..5).map(|i| Edge::new(i, i - 1)).collect();
        let labels = run_cc(&edges, 3);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn matches_union_find_on_random_graph() {
        use clugp_graph::gen::{generate_er, ErConfig};
        let g = generate_er(&ErConfig {
            vertices: 300,
            edges: 350,
            seed: 9,
        });
        let edges = g.edge_vec();
        let labels = run_cc(&edges, 4);
        assert_eq!(labels, sequential_components(&g));
    }

    #[test]
    fn partitioner_choice_does_not_change_result() {
        let edges: Vec<Edge> = (0..50u32)
            .map(|i| Edge::new(i % 13, (i * 7 + 1) % 13))
            .collect();
        let n = clugp_graph::types::implied_num_vertices(&edges);
        let mut s = InMemoryStream::new(n, edges.clone());
        let a = Hashing::default().partition(&mut s, 4).unwrap();
        let b = Dbh::default().partition(&mut s, 4).unwrap();
        let da = DistributedGraph::place(&edges, &a.partitioning);
        let db = DistributedGraph::place(&edges, &b.partitioning);
        let la = Engine::new(&da).run(&ConnectedComponents::default()).0;
        let lb = Engine::new(&db).run(&ConnectedComponents::default()).0;
        assert_eq!(la, lb);
    }

    #[test]
    fn message_volume_decays_as_labels_settle() {
        // On a long path the frontier of changing labels shrinks is not
        // monotone, but the final superstep must carry zero sync messages.
        let edges: Vec<Edge> = (0..40).map(|i| Edge::new(i, i + 1)).collect();
        let n = clugp_graph::types::implied_num_vertices(&edges);
        let mut s = InMemoryStream::new(n, edges.clone());
        let run = Hashing::default().partition(&mut s, 4).unwrap();
        let d = DistributedGraph::place(&edges, &run.partitioning);
        let (_, stats) = Engine::new(&d).run(&ConnectedComponents::default());
        let last = stats.supersteps.last().unwrap();
        assert_eq!(last.active_vertices, 0);
    }
}
