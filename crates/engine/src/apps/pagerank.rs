//! PageRank — the paper's headline workload (Fig. 4(b), Fig. 8).
//!
//! PowerGraph-style non-normalized PageRank: each superstep computes
//! `rank(v) = (1 − d) + d · Σ_{u→v} rank(u) / outdeg(u)` for a fixed number
//! of iterations (the paper runs PageRank to a fixed iteration budget).
//! Dangling vertices contribute nothing, matching PowerGraph's default.

use crate::runtime::{GatherDirection, VertexCtx, VertexProgram};
use clugp_graph::csr::CsrGraph;
use clugp_graph::types::VertexId;

/// The PageRank vertex program.
#[derive(Debug, Clone)]
pub struct PageRank {
    /// Damping factor `d` (0.85 in the paper's systems).
    pub damping: f64,
    /// Number of iterations (supersteps).
    pub iterations: usize,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            damping: 0.85,
            iterations: 10,
        }
    }
}

impl VertexProgram for PageRank {
    type Value = f64;
    type Accum = f64;

    fn direction(&self) -> GatherDirection {
        GatherDirection::In
    }

    fn init(&self, _v: VertexId, _ctx: &VertexCtx) -> f64 {
        1.0
    }

    fn gather(&self, neighbor: &f64, ctx: &VertexCtx) -> f64 {
        // Contribution of an in-neighbor: rank / out-degree. The out-degree
        // is ≥ 1 for any gathered neighbor (it has this out-edge).
        neighbor / ctx.out_degree as f64
    }

    fn merge(&self, a: &mut f64, b: f64) {
        *a += b;
    }

    fn apply(&self, _v: VertexId, _old: &f64, acc: Option<f64>, _ctx: &VertexCtx) -> f64 {
        (1.0 - self.damping) + self.damping * acc.unwrap_or(0.0)
    }

    fn halt_on_fixpoint(&self) -> bool {
        false // fixed iteration budget
    }

    fn max_supersteps(&self) -> usize {
        self.iterations
    }
}

/// Sequential reference PageRank with identical semantics.
pub fn sequential_pagerank(graph: &CsrGraph, damping: f64, iterations: usize) -> Vec<f64> {
    let n = graph.num_vertices() as usize;
    let mut rank = vec![1.0f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        for v in 0..n as u32 {
            let d = graph.out_degree(v);
            if d == 0 {
                continue;
            }
            let share = rank[v as usize] / d as f64;
            for &t in graph.out_neighbors(v) {
                next[t as usize] += share;
            }
        }
        for v in 0..n {
            rank[v] = (1.0 - damping) + damping * next[v];
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::DistributedGraph;
    use crate::runtime::Engine;
    use clugp::baselines::Hashing;
    use clugp::Partitioner;
    use clugp_graph::stream::InMemoryStream;
    use clugp_graph::types::Edge;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < 1e-9 * x.abs().max(1.0),
                "vertex {i}: engine {x} vs reference {y}"
            );
        }
    }

    #[test]
    fn matches_reference_on_cycle() {
        let edges: Vec<Edge> = (0..6).map(|i| Edge::new(i, (i + 1) % 6)).collect();
        let g = CsrGraph::from_edges_auto(&edges);
        let mut s = InMemoryStream::new(g.num_vertices(), edges.clone());
        let run = Hashing::default().partition(&mut s, 3).unwrap();
        let d = DistributedGraph::place(&edges, &run.partitioning);
        let engine = Engine::new(&d);
        let (values, _) = engine.run(&PageRank::default());
        let reference = sequential_pagerank(&g, 0.85, 10);
        assert_close(&values, &reference);
    }

    #[test]
    fn dangling_vertices_keep_base_rank() {
        let edges = vec![Edge::new(0, 1)];
        let g = CsrGraph::from_edges(3, &edges).unwrap();
        let reference = sequential_pagerank(&g, 0.85, 5);
        // Vertex 2 is isolated: rank = 1 - d.
        assert!((reference[2] - 0.15).abs() < 1e-12);
        // Vertex 0 has no in-edges: also base rank.
        assert!((reference[0] - 0.15).abs() < 1e-12);
        assert!(reference[1] > reference[0]);
    }

    #[test]
    fn rank_mass_flows_to_sinks_of_a_star() {
        let edges: Vec<Edge> = (1..=5).map(|i| Edge::new(i, 0)).collect();
        let g = CsrGraph::from_edges_auto(&edges);
        let r = sequential_pagerank(&g, 0.85, 10);
        assert!(r[0] > r[1] * 3.0, "hub should dominate: {r:?}");
    }

    #[test]
    fn iteration_count_is_respected() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 0)];
        let g = CsrGraph::from_edges_auto(&edges);
        let mut s = InMemoryStream::new(g.num_vertices(), edges.clone());
        let run = Hashing::default().partition(&mut s, 2).unwrap();
        let d = DistributedGraph::place(&edges, &run.partitioning);
        let engine = Engine::new(&d);
        let (_, stats) = engine.run(&PageRank {
            damping: 0.85,
            iterations: 7,
        });
        assert_eq!(stats.num_supersteps(), 7);
    }
}
