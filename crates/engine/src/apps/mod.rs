//! Vertex programs: the paper's workloads (PageRank, Connected Components)
//! plus BFS/SSSP and degree counting for wider coverage. Each module ships
//! a sequential reference implementation used by the correctness tests.

pub mod bfs;
pub mod connected_components;
pub mod degree_count;
pub mod label_propagation;
pub mod pagerank;

pub use bfs::{sequential_bfs_levels, Bfs};
pub use connected_components::{sequential_components, ConnectedComponents};
pub use degree_count::{sequential_in_degrees, DegreeCount};
pub use label_propagation::{sequential_label_propagation, LabelPropagation};
pub use pagerank::{sequential_pagerank, PageRank};
