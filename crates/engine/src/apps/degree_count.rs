//! In-degree counting — the one-superstep smoke-test program (PowerGraph's
//! "hello world"); exercises gather/merge/apply and message accounting
//! without iteration effects.

use crate::runtime::{GatherDirection, VertexCtx, VertexProgram};
use clugp_graph::csr::CsrGraph;
use clugp_graph::types::VertexId;

/// Counts each vertex's in-degree in a single superstep.
#[derive(Debug, Clone, Default)]
pub struct DegreeCount;

impl VertexProgram for DegreeCount {
    type Value = u64;
    type Accum = u64;

    fn direction(&self) -> GatherDirection {
        GatherDirection::In
    }

    fn init(&self, _v: VertexId, _ctx: &VertexCtx) -> u64 {
        0
    }

    fn gather(&self, _neighbor: &u64, _ctx: &VertexCtx) -> u64 {
        1
    }

    fn merge(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn apply(&self, _v: VertexId, _old: &u64, acc: Option<u64>, _ctx: &VertexCtx) -> u64 {
        acc.unwrap_or(0)
    }

    fn max_supersteps(&self) -> usize {
        1
    }
}

/// Sequential reference in-degrees.
pub fn sequential_in_degrees(graph: &CsrGraph) -> Vec<u64> {
    graph.in_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::DistributedGraph;
    use crate::runtime::Engine;
    use clugp::baselines::Hashing;
    use clugp::Partitioner;
    use clugp_graph::stream::InMemoryStream;
    use clugp_graph::types::Edge;

    #[test]
    fn counts_match_reference() {
        let edges: Vec<Edge> = (0..60u32)
            .map(|i| Edge::new(i % 11, (i * 3 + 1) % 11))
            .collect();
        let g = CsrGraph::from_edges_auto(&edges);
        let mut s = InMemoryStream::new(g.num_vertices(), edges.clone());
        let run = Hashing::default().partition(&mut s, 4).unwrap();
        let d = DistributedGraph::place(&edges, &run.partitioning);
        let (values, stats) = Engine::new(&d).run(&DegreeCount);
        assert_eq!(values, sequential_in_degrees(&g));
        assert_eq!(stats.num_supersteps(), 1);
        assert_eq!(stats.total_gather_edges(), 60);
    }

    #[test]
    fn duplicate_edges_count_twice() {
        let edges = vec![Edge::new(0, 1), Edge::new(0, 1)];
        let g = CsrGraph::from_edges_auto(&edges);
        let mut s = InMemoryStream::new(g.num_vertices(), edges.clone());
        let run = Hashing::default().partition(&mut s, 2).unwrap();
        let d = DistributedGraph::place(&edges, &run.partitioning);
        let (values, _) = Engine::new(&d).run(&DegreeCount);
        assert_eq!(values[1], 2);
    }
}
