//! Synchronous label propagation (community detection) — one of the
//! motivating workloads in the paper's introduction.
//!
//! Each superstep a vertex adopts the most frequent label among its
//! (undirected) neighbors, breaking ties toward the smaller label; the
//! smaller-label tie-break makes the synchronous update deterministic, so
//! the engine result can be checked against a sequential reference exactly.

use crate::runtime::{GatherDirection, VertexCtx, VertexProgram};
use clugp_graph::csr::CsrGraph;
use clugp_graph::types::VertexId;
use rustc_hash::FxHashMap;

/// The label-propagation vertex program.
#[derive(Debug, Clone)]
pub struct LabelPropagation {
    /// Number of synchronous rounds (label propagation is typically run for
    /// a fixed small budget; it need not converge).
    pub rounds: usize,
}

impl Default for LabelPropagation {
    fn default() -> Self {
        LabelPropagation { rounds: 5 }
    }
}

impl VertexProgram for LabelPropagation {
    type Value = u32;
    type Accum = FxHashMap<u32, u32>;

    fn direction(&self) -> GatherDirection {
        GatherDirection::Both
    }

    fn init(&self, v: VertexId, _ctx: &VertexCtx) -> u32 {
        v
    }

    fn gather(&self, neighbor: &u32, _ctx: &VertexCtx) -> Self::Accum {
        let mut m = FxHashMap::default();
        m.insert(*neighbor, 1);
        m
    }

    fn merge(&self, a: &mut Self::Accum, b: Self::Accum) {
        for (label, count) in b {
            *a.entry(label).or_insert(0) += count;
        }
    }

    fn apply(&self, _v: VertexId, old: &u32, acc: Option<Self::Accum>, _ctx: &VertexCtx) -> u32 {
        match acc {
            Some(counts) => pick_label(&counts),
            None => *old,
        }
    }

    fn halt_on_fixpoint(&self) -> bool {
        false // label propagation may oscillate; run the fixed budget
    }

    fn max_supersteps(&self) -> usize {
        self.rounds
    }
}

/// Most frequent label, ties toward the smaller label.
fn pick_label(counts: &FxHashMap<u32, u32>) -> u32 {
    let mut best: Option<(u32, u32)> = None;
    for (&label, &count) in counts {
        best = match best {
            None => Some((label, count)),
            Some((bl, bc)) if count > bc || (count == bc && label < bl) => Some((label, count)),
            keep => keep,
        };
    }
    best.map(|(l, _)| l).expect("non-empty accumulator")
}

/// Sequential reference with identical synchronous semantics.
pub fn sequential_label_propagation(graph: &CsrGraph, rounds: usize) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let rev = graph.transpose();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    for _ in 0..rounds {
        let mut next = labels.clone();
        for v in 0..n as u32 {
            let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
            for &t in graph.out_neighbors(v) {
                *counts.entry(labels[t as usize]).or_insert(0) += 1;
            }
            for &t in rev.out_neighbors(v) {
                *counts.entry(labels[t as usize]).or_insert(0) += 1;
            }
            if !counts.is_empty() {
                next[v as usize] = pick_label(&counts);
            }
        }
        labels = next;
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::DistributedGraph;
    use crate::runtime::Engine;
    use clugp::baselines::Hashing;
    use clugp::Partitioner;
    use clugp_graph::stream::InMemoryStream;
    use clugp_graph::types::Edge;

    fn run_lpa(edges: &[Edge], k: u32, rounds: usize) -> Vec<u32> {
        let n = clugp_graph::types::implied_num_vertices(edges);
        let mut s = InMemoryStream::new(n, edges.to_vec());
        let run = Hashing::default().partition(&mut s, k).unwrap();
        let d = DistributedGraph::place(edges, &run.partitioning);
        Engine::new(&d).run(&LabelPropagation { rounds }).0
    }

    #[test]
    fn matches_sequential_reference() {
        let edges: Vec<Edge> = (0..120u32)
            .map(|i| Edge::new((i * 13) % 31, (i * 7 + 2) % 31))
            .collect();
        let g = CsrGraph::from_edges_auto(&edges);
        for rounds in [1usize, 3, 5] {
            assert_eq!(
                run_lpa(&edges, 4, rounds),
                sequential_label_propagation(&g, rounds),
                "rounds={rounds}"
            );
        }
    }

    #[test]
    fn clique_converges_to_min_label() {
        // A 5-clique (both directions): everyone adopts label 0.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    edges.push(Edge::new(a, b));
                }
            }
        }
        let labels = run_lpa(&edges, 2, 4);
        assert!(labels.iter().all(|&l| l == 0), "{labels:?}");
    }

    #[test]
    fn two_cliques_keep_distinct_communities() {
        let mut edges = Vec::new();
        for base in [0u32, 10] {
            for a in 0..5u32 {
                for b in 0..5u32 {
                    if a != b {
                        edges.push(Edge::new(base + a, base + b));
                    }
                }
            }
        }
        let mut all = edges.clone();
        all.push(Edge::new(0, 10)); // weak bridge
        let labels = run_lpa(&all, 3, 4);
        assert_eq!(labels[2], 0);
        assert_eq!(labels[12], 10);
    }

    #[test]
    fn pick_label_tie_breaks_to_smaller() {
        let mut counts = FxHashMap::default();
        counts.insert(7, 2);
        counts.insert(3, 2);
        counts.insert(9, 1);
        assert_eq!(pick_label(&counts), 3);
    }
}
