//! Network/compute cost model turning measured execution statistics into
//! wall-clock and volume estimates (the Fig. 8 quantities).
//!
//! The model is deliberately simple and fully documented: per superstep,
//! compute time is the *maximum* per-machine work (BSP barrier), and
//! communication time is two message rounds (gather partials, value sync)
//! of `RTT + max-machine bytes / bandwidth`. Constants approximate the
//! paper's testbed (Xeon cores, dockerized GbE with PUMBA-injected RTT);
//! absolute seconds are indicative, trends are the claim.

use crate::stats::ExecutionStats;
use serde::Serialize;
use std::time::Duration;

/// Tunable cost constants.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Gather cost per scanned edge.
    pub edge_process_ns: f64,
    /// Apply cost per master vertex.
    pub vertex_apply_ns: f64,
    /// Wire size of one mirror↔master message (payload + framing).
    pub bytes_per_message: u64,
    /// Per-machine NIC bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Round-trip network latency (the PUMBA knob of Fig. 8(c)).
    pub rtt: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            edge_process_ns: 8.0,
            vertex_apply_ns: 20.0,
            bytes_per_message: 100,
            bandwidth_bytes_per_sec: 125_000_000.0, // 1 Gbps
            rtt: Duration::from_millis(10),
        }
    }
}

/// A cost estimate for one execution.
#[derive(Debug, Clone, Serialize)]
pub struct CostEstimate {
    /// Σ over supersteps of the slowest machine's gather+apply time.
    pub compute_secs: f64,
    /// Σ over supersteps of message-round time (2·RTT + max bytes/bw).
    pub communication_secs: f64,
    /// Total bytes moved over the network.
    pub total_bytes: u64,
    /// Total messages.
    pub total_messages: u64,
    /// Number of supersteps.
    pub supersteps: usize,
}

impl CostEstimate {
    /// End-to-end estimated runtime.
    pub fn total_secs(&self) -> f64 {
        self.compute_secs + self.communication_secs
    }
}

impl CostModel {
    /// Estimates runtime and network volume for `stats`.
    pub fn estimate(&self, stats: &ExecutionStats) -> CostEstimate {
        let mut compute = 0.0f64;
        let mut comm = 0.0f64;
        let mut bytes = 0u64;
        let mut messages = 0u64;
        for step in &stats.supersteps {
            // BSP: the barrier waits for the slowest machine.
            let worst_machine = (0..step.gather_edges.len())
                .map(|i| {
                    step.gather_edges[i] as f64 * self.edge_process_ns
                        + step.apply_vertices[i] as f64 * self.vertex_apply_ns
                })
                .fold(0.0, f64::max);
            compute += worst_machine * 1e-9;

            let step_messages = step.total_messages();
            let step_bytes = step_messages * self.bytes_per_message;
            let max_machine_bytes = step.max_machine_messages() * self.bytes_per_message;
            messages += step_messages;
            bytes += step_bytes;
            // Two message rounds per superstep: gather partials, value sync.
            comm += 2.0 * self.rtt.as_secs_f64()
                + max_machine_bytes as f64 / self.bandwidth_bytes_per_sec;
        }
        CostEstimate {
            compute_secs: compute,
            communication_secs: comm,
            total_bytes: bytes,
            total_messages: messages,
            supersteps: stats.supersteps.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SuperstepStats;

    fn one_step() -> ExecutionStats {
        let mut s = SuperstepStats::new(2);
        s.gather_edges = vec![1_000, 3_000];
        s.apply_vertices = vec![100, 50];
        s.gather_messages = vec![10, 20];
        s.sync_messages = vec![5, 5];
        ExecutionStats {
            supersteps: vec![s],
        }
    }

    #[test]
    fn compute_uses_slowest_machine() {
        let model = CostModel {
            edge_process_ns: 10.0,
            vertex_apply_ns: 0.0,
            ..Default::default()
        };
        let est = model.estimate(&one_step());
        // Machine 1 is slowest: 3000 edges × 10ns = 30µs.
        assert!((est.compute_secs - 30e-6).abs() < 1e-9);
    }

    #[test]
    fn bytes_and_messages_counted() {
        let model = CostModel {
            bytes_per_message: 100,
            ..Default::default()
        };
        let est = model.estimate(&one_step());
        assert_eq!(est.total_messages, 40);
        assert_eq!(est.total_bytes, 4_000);
    }

    #[test]
    fn latency_scales_with_supersteps() {
        let stats = ExecutionStats {
            supersteps: vec![SuperstepStats::new(1); 5],
        };
        let model = CostModel {
            rtt: Duration::from_millis(100),
            ..Default::default()
        };
        let est = model.estimate(&stats);
        // 5 supersteps × 2 rounds × 100ms RTT.
        assert!((est.communication_secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn higher_rtt_costs_more() {
        let stats = one_step();
        let fast = CostModel {
            rtt: Duration::from_millis(10),
            ..Default::default()
        }
        .estimate(&stats);
        let slow = CostModel {
            rtt: Duration::from_millis(100),
            ..Default::default()
        }
        .estimate(&stats);
        assert!(slow.total_secs() > fast.total_secs());
    }

    #[test]
    fn empty_run_costs_nothing() {
        let est = CostModel::default().estimate(&ExecutionStats::default());
        assert_eq!(est.total_secs(), 0.0);
        assert_eq!(est.total_bytes, 0);
    }
}
