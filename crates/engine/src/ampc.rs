//! Sharded replica scatter: builds the placement replica table through the
//! same keyspace-sharded state service the partitioning engine uses.
//!
//! The vertex keyspace is range-split over shard threads (one
//! [`StateShard`] each, fed by a bounded channel). Replica presence is a
//! bitset row merged with [`MergeOp::BitOr`] — a commutative merge, so the
//! resulting table is independent of batch arrival order (the property
//! `tests/distributed_equivalence.rs` pins) and the scatter can run fully
//! parallel without changing placement results.

use clugp::ampc::{Layout, MergeOp, StateShard};
use clugp::error::{PartitionError, Result};
use clugp::state::ReplicaTable;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::thread::JoinHandle;

/// One batch of replica-bit updates: parallel `keys`/`rows` arrays, one
/// bitset row (`words_per_row` words) per key.
type Batch = (Vec<u64>, Vec<u64>);

/// A parallel builder for the placement [`ReplicaTable`].
///
/// Feed it `(vertex, partition-bitset)` batches from any thread order;
/// [`ReplicaScatter::finish`] joins the shards and assembles the table by
/// ascending vertex id.
pub struct ReplicaScatter {
    senders: Vec<SyncSender<Batch>>,
    handles: Vec<JoinHandle<StateShard>>,
    layout: Layout,
    k: u32,
    words: usize,
    /// Per-shard staging batches, flushed when they reach `flush_rows`.
    staged: Vec<Batch>,
    flush_rows: usize,
}

impl ReplicaScatter {
    /// Starts `shards` shard threads for an `n_hint`-vertex, `k`-partition
    /// replica table.
    pub fn new(n_hint: u64, k: u32, shards: usize) -> Self {
        let shards = shards.max(1);
        let layout = Layout::range_for(n_hint, shards as u32);
        let words = (k as usize).div_ceil(64).max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for s in 0..shards {
            let (tx, rx) = sync_channel::<Batch>(4);
            let mut shard = StateShard::range(layout.base(s as u32), words);
            handles.push(std::thread::spawn(move || {
                while let Ok((keys, rows)) = rx.recv() {
                    shard.upsert_batch(MergeOp::BitOr, &keys, &rows);
                }
                shard
            }));
            senders.push(tx);
        }
        ReplicaScatter {
            senders,
            handles,
            layout,
            k,
            words,
            staged: vec![(Vec::new(), Vec::new()); shards],
            flush_rows: 4096,
        }
    }

    /// Words per bitset row (`ceil(k / 64)`).
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// Records "vertex `v` has a replica on partition `p`".
    pub fn insert(&mut self, v: u64, p: u32) {
        debug_assert!(p < self.k);
        let owner = self.layout.owner(v, self.senders.len() as u32) as usize;
        let (keys, rows) = &mut self.staged[owner];
        keys.push(v);
        let at = rows.len();
        rows.resize(at + self.words, 0);
        rows[at + (p as usize >> 6)] |= 1u64 << (p & 63);
        if keys.len() >= self.flush_rows {
            self.flush(owner);
        }
    }

    fn flush(&mut self, owner: usize) {
        let (keys, rows) = std::mem::take(&mut self.staged[owner]);
        if keys.is_empty() {
            return;
        }
        // A send only fails if the shard thread died; surface that in
        // `finish` where the join error is visible.
        let _ = self.senders[owner].send((keys, rows));
    }

    /// Drains the shards and assembles the replica table (ascending vertex
    /// id, shard by shard — range shards own contiguous key spans).
    pub fn finish(mut self) -> Result<ReplicaTable> {
        for owner in 0..self.staged.len() {
            self.flush(owner);
        }
        drop(std::mem::take(&mut self.senders));
        let mut table = ReplicaTable::new(0, self.k)?;
        for handle in self.handles {
            let shard = handle.join().map_err(|_| {
                PartitionError::InvalidParam("replica scatter shard thread panicked".into())
            })?;
            let mut failed = None;
            shard.scan(|key, row| {
                if failed.is_none() {
                    match table.ensure_vertices(key + 1) {
                        Ok(()) => table.import_row(key as u32, row),
                        Err(e) => failed = Some(e),
                    }
                }
            });
            if let Some(e) = failed {
                return Err(e);
            }
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_replica_table() {
        let k = 5;
        let inserts: Vec<(u64, u32)> = (0..10_000u64)
            .map(|i| (i.wrapping_mul(2654435761) % 997, (i % u64::from(k)) as u32))
            .collect();
        let mut reference = ReplicaTable::new(0, k).unwrap();
        for &(v, p) in &inserts {
            reference.ensure_vertices(v + 1).unwrap();
            reference.insert(v as u32, p);
        }
        for shards in [1usize, 3, 8] {
            let mut scatter = ReplicaScatter::new(997, k, shards);
            for &(v, p) in &inserts {
                scatter.insert(v, p);
            }
            let table = scatter.finish().unwrap();
            assert_eq!(table.num_vertices(), reference.num_vertices());
            for v in 0..reference.num_vertices() as u32 {
                assert_eq!(
                    table.partitions_of(v).collect::<Vec<_>>(),
                    reference.partitions_of(v).collect::<Vec<_>>(),
                    "vertex {v} diverged with {shards} shards"
                );
            }
        }
    }
}
