//! The edge-streaming graph model (paper Definition 1).
//!
//! A streaming partitioner consumes edges one at a time through
//! [`EdgeStream`]. One-pass algorithms (Hashing, DBH, Greedy, HDRF) need only
//! that; CLUGP's three-pass restreaming architecture additionally needs
//! [`RestreamableStream::reset`] to rewind the stream between passes.
//!
//! Two concrete sources are provided: [`InMemoryStream`] over a `Vec<Edge>`
//! and `FileEdgeStream` (in [`crate::io::binary`]) over the on-disk binary
//! format. The latter is what the Figure 10(a) experiment uses to separate
//! I/O cost from computation cost.

use crate::error::Result;
use crate::types::Edge;

/// A single-pass stream of directed edges.
///
/// Implementors yield edges in *stream order*; the order is significant
/// (the paper evaluates BFS order for CLUGP/Mint and random order for the
/// other baselines).
pub trait EdgeStream {
    /// Returns the next edge, or `None` when the stream is exhausted.
    fn next_edge(&mut self) -> Option<Edge>;

    /// Total number of edges this stream will yield over a full pass, if
    /// known. Partitioners use it to pre-size tables (e.g. `Vmax = |E|/k`).
    fn len_hint(&self) -> Option<u64>;

    /// Number of vertices of the underlying graph, if known. Streaming
    /// algorithms conventionally know `|V|` up front so per-vertex state can
    /// be array-backed (the paper's `clu[]`/`deg[]` arrays).
    fn num_vertices_hint(&self) -> Option<u64>;
}

/// An [`EdgeStream`] that can be rewound to the beginning, enabling
/// multi-pass (restreaming) algorithms.
pub trait RestreamableStream: EdgeStream {
    /// Rewinds the stream so the next `next_edge` yields the first edge
    /// again.
    fn reset(&mut self) -> Result<()>;
}

impl<T: EdgeStream + ?Sized> EdgeStream for &mut T {
    #[inline]
    fn next_edge(&mut self) -> Option<Edge> {
        (**self).next_edge()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        (**self).num_vertices_hint()
    }
}

impl<T: RestreamableStream + ?Sized> RestreamableStream for &mut T {
    fn reset(&mut self) -> Result<()> {
        (**self).reset()
    }
}

/// In-memory stream over an owned edge vector.
///
/// The cheapest resettable source; all experiments except the I/O-cost
/// breakdown use it.
#[derive(Debug, Clone)]
pub struct InMemoryStream {
    edges: Vec<Edge>,
    cursor: usize,
    num_vertices: u64,
}

impl InMemoryStream {
    /// Creates a stream over `edges` with an explicit vertex count.
    pub fn new(num_vertices: u64, edges: Vec<Edge>) -> Self {
        InMemoryStream {
            edges,
            cursor: 0,
            num_vertices,
        }
    }

    /// Creates a stream inferring the vertex count from the maximum id.
    pub fn from_edges(edges: Vec<Edge>) -> Self {
        let n = crate::types::implied_num_vertices(&edges);
        Self::new(n, edges)
    }

    /// Read-only view of the backing edges (in stream order).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Consumes the stream, returning the backing vector.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }
}

impl EdgeStream for InMemoryStream {
    #[inline]
    fn next_edge(&mut self) -> Option<Edge> {
        let e = self.edges.get(self.cursor).copied();
        if e.is_some() {
            self.cursor += 1;
        }
        e
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.edges.len() as u64)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.num_vertices)
    }
}

impl RestreamableStream for InMemoryStream {
    fn reset(&mut self) -> Result<()> {
        self.cursor = 0;
        Ok(())
    }
}

/// Drains a stream into a vector (one full pass from the current position).
pub fn collect_stream(stream: &mut dyn EdgeStream) -> Vec<Edge> {
    let mut out = match stream.len_hint() {
        Some(n) => Vec::with_capacity(n as usize),
        None => Vec::new(),
    };
    while let Some(e) = stream.next_edge() {
        out.push(e);
    }
    out
}

/// A stream wrapper that counts wall-clock time spent *inside* the source,
/// separating I/O cost from the consumer's computation (Figure 10a).
pub struct TimedStream<S> {
    inner: S,
    io_time: std::time::Duration,
}

impl<S: EdgeStream> TimedStream<S> {
    /// Wraps `inner`, starting with zero accumulated I/O time.
    pub fn new(inner: S) -> Self {
        TimedStream {
            inner,
            io_time: std::time::Duration::ZERO,
        }
    }

    /// Total time spent pulling edges from the wrapped source.
    pub fn io_time(&self) -> std::time::Duration {
        self.io_time
    }

    /// Returns the wrapped stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EdgeStream> EdgeStream for TimedStream<S> {
    fn next_edge(&mut self) -> Option<Edge> {
        let t = std::time::Instant::now();
        let e = self.inner.next_edge();
        self.io_time += t.elapsed();
        e
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        self.inner.num_vertices_hint()
    }
}

impl<S: RestreamableStream> RestreamableStream for TimedStream<S> {
    fn reset(&mut self) -> Result<()> {
        let t = std::time::Instant::now();
        let r = self.inner.reset();
        self.io_time += t.elapsed();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> Vec<Edge> {
        vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)]
    }

    #[test]
    fn in_memory_yields_in_order() {
        let mut s = InMemoryStream::from_edges(sample_edges());
        assert_eq!(s.next_edge(), Some(Edge::new(0, 1)));
        assert_eq!(s.next_edge(), Some(Edge::new(1, 2)));
        assert_eq!(s.next_edge(), Some(Edge::new(2, 0)));
        assert_eq!(s.next_edge(), None);
        assert_eq!(s.next_edge(), None);
    }

    #[test]
    fn reset_restarts_from_beginning() {
        let mut s = InMemoryStream::from_edges(sample_edges());
        let first_pass = collect_stream(&mut s);
        s.reset().unwrap();
        let second_pass = collect_stream(&mut s);
        assert_eq!(first_pass, second_pass);
        assert_eq!(first_pass.len(), 3);
    }

    #[test]
    fn hints_are_exact_for_in_memory() {
        let s = InMemoryStream::from_edges(sample_edges());
        assert_eq!(s.len_hint(), Some(3));
        assert_eq!(s.num_vertices_hint(), Some(3));
    }

    #[test]
    fn explicit_vertex_count_respected() {
        let s = InMemoryStream::new(100, sample_edges());
        assert_eq!(s.num_vertices_hint(), Some(100));
    }

    #[test]
    fn empty_stream() {
        let mut s = InMemoryStream::from_edges(vec![]);
        assert_eq!(s.next_edge(), None);
        assert_eq!(s.len_hint(), Some(0));
        assert_eq!(s.num_vertices_hint(), Some(0));
    }

    #[test]
    fn timed_stream_accumulates_and_preserves_content() {
        let inner = InMemoryStream::from_edges(sample_edges());
        let mut timed = TimedStream::new(inner);
        let collected = collect_stream(&mut timed);
        assert_eq!(collected, sample_edges());
        // Duration is monotone non-negative; just check the API works.
        let _ = timed.io_time();
        timed.reset().unwrap();
        assert_eq!(collect_stream(&mut timed).len(), 3);
    }

    #[test]
    fn into_edges_round_trips() {
        let s = InMemoryStream::from_edges(sample_edges());
        assert_eq!(s.into_edges(), sample_edges());
    }
}
