//! The edge-streaming graph model (paper Definition 1).
//!
//! A streaming partitioner consumes edges through [`EdgeStream`]. One-pass
//! algorithms (Hashing, DBH, Greedy, HDRF) need only that; CLUGP's
//! three-pass restreaming architecture additionally needs
//! [`RestreamableStream::reset`] to rewind the stream between passes.
//!
//! # Chunked pulls
//!
//! The ABI is *chunked*: the hot path is [`EdgeStream::next_chunk`] (copy a
//! block of edges into a caller buffer) with an optional zero-copy
//! [`EdgeStream::next_slice`] fast path for memory-backed sources. The
//! per-edge [`EdgeStream::next_edge`] remains for convenience and as the
//! compatibility default — `next_chunk` has a default implementation that
//! loops `next_edge`, so a third-party stream that only implements the
//! per-edge method keeps working unchanged. Consumers drive streams with
//! [`for_each_chunk`] and iterate tight `&[Edge]` loops, paying one virtual
//! dispatch per *chunk* instead of one per *edge*.
//!
//! Chunk boundaries are **not semantic**: a source may return fewer than the
//! requested number of edges at any time (block boundaries, internal buffer
//! sizes); only an empty chunk means exhaustion. Consumers must therefore be
//! insensitive to where chunks split — all in-tree consumers produce
//! bit-identical results for any chunking of the same edge sequence (see
//! `tests/chunked_equivalence.rs`).
//!
//! Two concrete sources are provided: [`InMemoryStream`] over a `Vec<Edge>`
//! and `FileEdgeStream` (in [`crate::io::binary`]) over the on-disk binary
//! format. The latter is what the Figure 10(a) experiment uses to separate
//! I/O cost from computation cost. [`PerEdgeStream`] and [`ChunkLimited`]
//! wrap any stream to force the legacy per-edge pull path or an arbitrary
//! chunk granularity — the A/B levers of the throughput benchmark and the
//! equivalence suite.
//!
//! Because only the *empty* chunk is semantic, a source is free to produce
//! its chunks on other threads, as `crate::pack::PipelinedPackStream` does:
//! pack blocks decode on workers ahead of the consumer while deliveries stay
//! in block order, so the chunk sequence — and therefore every consumer's
//! result — is bit-identical to the serial reader at any thread count
//! (`tests/pipelined_equivalence.rs`).

use crate::error::Result;
use crate::types::Edge;

/// Default number of edges per chunk pull.
///
/// 4096 edges = 32 KiB of `Edge` payload — large enough to amortize the
/// virtual dispatch and buffer bookkeeping to noise, small enough to stay
/// L1/L2-resident while the consumer's tables are hot. The throughput
/// experiment (`experiments throughput`) sweeps sizes around this value.
///
/// Consumers read the effective size through [`chunk_edges`], which starts
/// at this constant and can be overridden process-wide (the `clugp-part
/// --chunk-size` flag).
pub const DEFAULT_CHUNK_EDGES: usize = 4096;

static CHUNK_EDGES: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(DEFAULT_CHUNK_EDGES);

/// The effective edges-per-chunk every in-tree consumer passes to
/// [`for_each_chunk`]/[`try_for_each_chunk`]: [`DEFAULT_CHUNK_EDGES`]
/// unless overridden by [`set_chunk_edges`].
#[inline]
pub fn chunk_edges() -> usize {
    CHUNK_EDGES.load(std::sync::atomic::Ordering::Relaxed)
}

/// Overrides the process-wide chunk size ([`chunk_edges`]). A CLI-level
/// tuning knob: chunk granularity never changes any partition (pinned by
/// `tests/chunked_equivalence.rs`), only the dispatch/buffering amortization.
///
/// # Errors
///
/// Rejects `0` — a zero cap would read as an exhaustion signal.
pub fn set_chunk_edges(edges: usize) -> Result<()> {
    if edges == 0 {
        return Err(crate::error::GraphError::InvalidConfig(
            "chunk size must be >= 1 edge".into(),
        ));
    }
    CHUNK_EDGES.store(edges, std::sync::atomic::Ordering::Relaxed);
    Ok(())
}

/// A single-pass stream of directed edges.
///
/// Implementors yield edges in *stream order*; the order is significant
/// (the paper evaluates BFS order for CLUGP/Mint and random order for the
/// other baselines).
///
/// Only [`next_edge`](EdgeStream::next_edge) and the hints are required;
/// [`next_chunk`](EdgeStream::next_chunk) and
/// [`next_slice`](EdgeStream::next_slice) have compatibility defaults, so an
/// implementor written against the per-edge ABI compiles and behaves
/// identically under chunked consumers.
pub trait EdgeStream {
    /// Returns the next edge, or `None` when the stream is exhausted.
    fn next_edge(&mut self) -> Option<Edge>;

    /// Pulls the next block of up to `cap` edges into `buf`.
    ///
    /// `buf` is cleared first; the return value equals `buf.len()`. A return
    /// of `0` means the stream is exhausted — implementations treat
    /// `cap == 0` as 1, so an empty chunk *always* means exhaustion, even
    /// for consumers that compute `cap` dynamically. A source **may** return
    /// fewer than `cap` edges while more remain (e.g. at an internal block
    /// boundary) — consumers must keep pulling until an empty chunk and must
    /// not attach meaning to chunk boundaries.
    ///
    /// The default implementation loops [`next_edge`](EdgeStream::next_edge),
    /// preserving the per-edge ABI for implementors that don't override it.
    fn next_chunk(&mut self, buf: &mut Vec<Edge>, cap: usize) -> usize {
        let cap = cap.max(1);
        buf.clear();
        while buf.len() < cap {
            match self.next_edge() {
                Some(e) => buf.push(e),
                None => break,
            }
        }
        buf.len()
    }

    /// Zero-copy variant of [`next_chunk`](EdgeStream::next_chunk): lends a
    /// slice of up to `cap` edges directly from the source's backing storage
    /// and advances the cursor past it.
    ///
    /// Returns `None` if this source cannot lend slices (the answer must not
    /// change over the stream's lifetime); `Some(&[])` means the stream is
    /// exhausted. As with `next_chunk`, implementations treat `cap == 0` as
    /// 1 so the exhaustion signal is unambiguous. The default returns
    /// `None`.
    fn next_slice(&mut self, cap: usize) -> Option<&[Edge]> {
        let _ = cap;
        None
    }

    /// Total number of edges this stream will yield over a full pass, if
    /// known. Partitioners use it to pre-size tables (e.g. `Vmax = |E|/k`).
    fn len_hint(&self) -> Option<u64>;

    /// Number of vertices of the underlying graph, if known. Streaming
    /// algorithms conventionally know `|V|` up front so per-vertex state can
    /// be array-backed (the paper's `clu[]`/`deg[]` arrays).
    fn num_vertices_hint(&self) -> Option<u64>;
}

/// An [`EdgeStream`] that can be rewound to the beginning, enabling
/// multi-pass (restreaming) algorithms.
pub trait RestreamableStream: EdgeStream {
    /// Rewinds the stream so the next pull yields the first edge again.
    fn reset(&mut self) -> Result<()>;
}

impl<T: EdgeStream + ?Sized> EdgeStream for &mut T {
    #[inline]
    fn next_edge(&mut self) -> Option<Edge> {
        (**self).next_edge()
    }

    #[inline]
    fn next_chunk(&mut self, buf: &mut Vec<Edge>, cap: usize) -> usize {
        (**self).next_chunk(buf, cap)
    }

    #[inline]
    fn next_slice(&mut self, cap: usize) -> Option<&[Edge]> {
        (**self).next_slice(cap)
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        (**self).num_vertices_hint()
    }
}

impl<T: RestreamableStream + ?Sized> RestreamableStream for &mut T {
    fn reset(&mut self) -> Result<()> {
        (**self).reset()
    }
}

/// Drives `stream` to exhaustion in chunks of (at most) `cap` edges, calling
/// `f` on each non-empty chunk.
///
/// This is the consumer-side hot loop of the chunked ABI: one virtual
/// dispatch per chunk, then a tight borrow-checked iteration over `&[Edge]`.
/// Sources that lend slices ([`EdgeStream::next_slice`]) are drained
/// zero-copy; everything else goes through one reused copy buffer.
pub fn for_each_chunk(stream: &mut dyn EdgeStream, cap: usize, mut f: impl FnMut(&[Edge])) {
    // One drain loop to maintain: the infallible version is the fallible
    // one at an uninhabited error type (compiles to the same code).
    let Ok(()) = try_for_each_chunk::<std::convert::Infallible>(stream, cap, |chunk| {
        f(chunk);
        Ok(())
    });
}

/// Fallible variant of [`for_each_chunk`]: drives `stream` to exhaustion in
/// chunks, stopping at the first `Err` from `f` and propagating it.
///
/// This is the hot loop of consumers whose per-vertex state can refuse to
/// grow (the `max_vertices` guards against adversarial id explosions): the
/// chunk structure and dispatch cost are identical to [`for_each_chunk`],
/// plus one branch per chunk.
pub fn try_for_each_chunk<E>(
    stream: &mut dyn EdgeStream,
    cap: usize,
    mut f: impl FnMut(&[Edge]) -> std::result::Result<(), E>,
) -> std::result::Result<(), E> {
    let cap = cap.max(1);
    loop {
        // Borrow-scoped slice attempt; `None` (source can't lend) drops to
        // the copying path for the rest of the stream.
        let lent = match stream.next_slice(cap) {
            Some(slice) => {
                if slice.is_empty() {
                    return Ok(());
                }
                f(slice)?;
                true
            }
            None => false,
        };
        if !lent {
            let mut buf: Vec<Edge> = Vec::with_capacity(cap);
            while stream.next_chunk(&mut buf, cap) != 0 {
                f(&buf)?;
            }
            return Ok(());
        }
    }
}

/// In-memory stream over an owned edge vector.
///
/// The cheapest resettable source; all experiments except the I/O-cost
/// breakdown use it. Chunked consumers drain it zero-copy through
/// [`EdgeStream::next_slice`].
#[derive(Debug, Clone)]
pub struct InMemoryStream {
    edges: Vec<Edge>,
    cursor: usize,
    num_vertices: u64,
}

impl InMemoryStream {
    /// Creates a stream over `edges` with an explicit vertex count.
    pub fn new(num_vertices: u64, edges: Vec<Edge>) -> Self {
        InMemoryStream {
            edges,
            cursor: 0,
            num_vertices,
        }
    }

    /// Creates a stream inferring the vertex count from the maximum id.
    pub fn from_edges(edges: Vec<Edge>) -> Self {
        let n = crate::types::implied_num_vertices(&edges);
        Self::new(n, edges)
    }

    /// Read-only view of the backing edges (in stream order).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Consumes the stream, returning the backing vector.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }
}

impl EdgeStream for InMemoryStream {
    #[inline]
    fn next_edge(&mut self) -> Option<Edge> {
        // Single bounds check: `get` both tests and fetches; the cursor bump
        // only happens on the hit path.
        let e = *self.edges.get(self.cursor)?;
        self.cursor += 1;
        Some(e)
    }

    #[inline]
    fn next_chunk(&mut self, buf: &mut Vec<Edge>, cap: usize) -> usize {
        buf.clear();
        let n = cap.max(1).min(self.edges.len() - self.cursor);
        buf.extend_from_slice(&self.edges[self.cursor..self.cursor + n]);
        self.cursor += n;
        n
    }

    #[inline]
    fn next_slice(&mut self, cap: usize) -> Option<&[Edge]> {
        let n = cap.max(1).min(self.edges.len() - self.cursor);
        let s = &self.edges[self.cursor..self.cursor + n];
        self.cursor += n;
        Some(s)
    }

    #[inline]
    fn len_hint(&self) -> Option<u64> {
        Some(self.edges.len() as u64)
    }

    #[inline]
    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.num_vertices)
    }
}

impl RestreamableStream for InMemoryStream {
    fn reset(&mut self) -> Result<()> {
        self.cursor = 0;
        Ok(())
    }
}

/// Drains a stream into a vector (one full pass from the current position).
pub fn collect_stream(stream: &mut dyn EdgeStream) -> Vec<Edge> {
    let mut out = match stream.len_hint() {
        Some(n) => Vec::with_capacity(n as usize),
        None => Vec::new(),
    };
    for_each_chunk(stream, chunk_edges(), |chunk| {
        out.extend_from_slice(chunk);
    });
    out
}

/// A stream wrapper that counts wall-clock time spent *inside* the source,
/// separating I/O cost from the consumer's computation (Figure 10a).
///
/// Time is accumulated per *pull*: chunked consumers pay one `Instant`
/// read-pair per chunk rather than one per edge, so the accounting overhead
/// no longer distorts the I/O share it is meant to measure.
pub struct TimedStream<S> {
    inner: S,
    io_time: std::time::Duration,
}

impl<S: EdgeStream> TimedStream<S> {
    /// Wraps `inner`, starting with zero accumulated I/O time.
    pub fn new(inner: S) -> Self {
        TimedStream {
            inner,
            io_time: std::time::Duration::ZERO,
        }
    }

    /// Total time spent pulling edges from the wrapped source.
    pub fn io_time(&self) -> std::time::Duration {
        self.io_time
    }

    /// Returns the wrapped stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EdgeStream> EdgeStream for TimedStream<S> {
    fn next_edge(&mut self) -> Option<Edge> {
        let t = std::time::Instant::now();
        let e = self.inner.next_edge();
        self.io_time += t.elapsed();
        e
    }

    fn next_chunk(&mut self, buf: &mut Vec<Edge>, cap: usize) -> usize {
        let t = std::time::Instant::now();
        let n = self.inner.next_chunk(buf, cap);
        self.io_time += t.elapsed();
        n
    }

    fn next_slice(&mut self, cap: usize) -> Option<&[Edge]> {
        let t = std::time::Instant::now();
        let s = self.inner.next_slice(cap);
        self.io_time += t.elapsed();
        s
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        self.inner.num_vertices_hint()
    }
}

impl<S: RestreamableStream> RestreamableStream for TimedStream<S> {
    fn reset(&mut self) -> Result<()> {
        let t = std::time::Instant::now();
        let r = self.inner.reset();
        self.io_time += t.elapsed();
        r
    }
}

/// Forces the legacy per-edge pull path over any stream.
///
/// Hides the inner stream's `next_chunk`/`next_slice` overrides: every chunk
/// pull yields at most **one** edge, so a chunked consumer pays one virtual
/// dispatch, one branch, and one buffer round-trip per edge — the cost model
/// of the pre-chunking ABI. This is the "per-edge" leg of the throughput
/// benchmark and the baseline of the equivalence suite.
#[derive(Debug, Clone)]
pub struct PerEdgeStream<S>(S);

impl<S> PerEdgeStream<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        PerEdgeStream(inner)
    }

    /// Returns the wrapped stream.
    pub fn into_inner(self) -> S {
        self.0
    }
}

impl<S: EdgeStream> EdgeStream for PerEdgeStream<S> {
    #[inline]
    fn next_edge(&mut self) -> Option<Edge> {
        self.0.next_edge()
    }

    fn next_chunk(&mut self, buf: &mut Vec<Edge>, _cap: usize) -> usize {
        buf.clear();
        if let Some(e) = self.0.next_edge() {
            buf.push(e);
        }
        buf.len()
    }

    // next_slice deliberately not overridden: stays `None`, so chunked
    // consumers fall back to the copying path above.

    fn len_hint(&self) -> Option<u64> {
        self.0.len_hint()
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        self.0.num_vertices_hint()
    }
}

impl<S: RestreamableStream> RestreamableStream for PerEdgeStream<S> {
    fn reset(&mut self) -> Result<()> {
        self.0.reset()
    }
}

/// Caps every chunk or slice pull at `limit` edges, regardless of what the
/// consumer asks for.
///
/// Simulates a source with its own block granularity (a sharded reader, a
/// small I/O buffer). Consumers must produce identical results under any
/// `limit` — the chunk-size axis of the equivalence suite.
#[derive(Debug, Clone)]
pub struct ChunkLimited<S> {
    inner: S,
    limit: usize,
}

impl<S> ChunkLimited<S> {
    /// Wraps `inner`, capping pulls at `limit` (≥ 1) edges.
    pub fn new(inner: S, limit: usize) -> Self {
        ChunkLimited {
            inner,
            limit: limit.max(1),
        }
    }

    /// Returns the wrapped stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EdgeStream> EdgeStream for ChunkLimited<S> {
    #[inline]
    fn next_edge(&mut self) -> Option<Edge> {
        self.inner.next_edge()
    }

    fn next_chunk(&mut self, buf: &mut Vec<Edge>, cap: usize) -> usize {
        self.inner.next_chunk(buf, cap.min(self.limit))
    }

    fn next_slice(&mut self, cap: usize) -> Option<&[Edge]> {
        self.inner.next_slice(cap.min(self.limit))
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        self.inner.num_vertices_hint()
    }
}

impl<S: RestreamableStream> RestreamableStream for ChunkLimited<S> {
    fn reset(&mut self) -> Result<()> {
        self.inner.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> Vec<Edge> {
        vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)]
    }

    #[test]
    fn in_memory_yields_in_order() {
        let mut s = InMemoryStream::from_edges(sample_edges());
        assert_eq!(s.next_edge(), Some(Edge::new(0, 1)));
        assert_eq!(s.next_edge(), Some(Edge::new(1, 2)));
        assert_eq!(s.next_edge(), Some(Edge::new(2, 0)));
        assert_eq!(s.next_edge(), None);
        assert_eq!(s.next_edge(), None);
    }

    #[test]
    fn reset_restarts_from_beginning() {
        let mut s = InMemoryStream::from_edges(sample_edges());
        let first_pass = collect_stream(&mut s);
        s.reset().unwrap();
        let second_pass = collect_stream(&mut s);
        assert_eq!(first_pass, second_pass);
        assert_eq!(first_pass.len(), 3);
    }

    #[test]
    fn hints_are_exact_for_in_memory() {
        let s = InMemoryStream::from_edges(sample_edges());
        assert_eq!(s.len_hint(), Some(3));
        assert_eq!(s.num_vertices_hint(), Some(3));
    }

    #[test]
    fn explicit_vertex_count_respected() {
        let s = InMemoryStream::new(100, sample_edges());
        assert_eq!(s.num_vertices_hint(), Some(100));
    }

    #[test]
    fn empty_stream() {
        let mut s = InMemoryStream::from_edges(vec![]);
        assert_eq!(s.next_edge(), None);
        assert_eq!(s.len_hint(), Some(0));
        assert_eq!(s.num_vertices_hint(), Some(0));
        assert_eq!(s.next_slice(4096), Some(&[][..]));
        let mut buf = Vec::new();
        assert_eq!(s.next_chunk(&mut buf, 4096), 0);
    }

    #[test]
    fn zero_cap_is_clamped_never_a_false_exhaustion_signal() {
        // A dynamically computed cap can reach 0 mid-drain; that must not
        // read as "exhausted" while edges remain.
        let mut s = InMemoryStream::from_edges(sample_edges());
        assert_eq!(s.next_slice(0).map(<[Edge]>::len), Some(1));
        let mut buf = Vec::new();
        assert_eq!(s.next_chunk(&mut buf, 0), 1);
        // The default impl (per-edge implementors) clamps too.
        struct One(bool);
        impl EdgeStream for One {
            fn next_edge(&mut self) -> Option<Edge> {
                std::mem::take(&mut self.0).then_some(Edge::new(0, 1))
            }
            fn len_hint(&self) -> Option<u64> {
                None
            }
            fn num_vertices_hint(&self) -> Option<u64> {
                None
            }
        }
        assert_eq!(One(true).next_chunk(&mut buf, 0), 1);
    }

    #[test]
    fn in_memory_chunk_pull_matches_per_edge() {
        let edges = sample_edges();
        let mut s = InMemoryStream::from_edges(edges.clone());
        let mut buf = Vec::new();
        assert_eq!(s.next_chunk(&mut buf, 2), 2);
        assert_eq!(buf, &edges[..2]);
        assert_eq!(s.next_chunk(&mut buf, 2), 1);
        assert_eq!(buf, &edges[2..]);
        assert_eq!(s.next_chunk(&mut buf, 2), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn in_memory_slice_is_zero_copy_view() {
        let edges = sample_edges();
        let mut s = InMemoryStream::from_edges(edges.clone());
        assert_eq!(s.next_slice(2), Some(&edges[..2]));
        assert_eq!(s.next_slice(10), Some(&edges[2..]));
        assert_eq!(s.next_slice(10), Some(&[][..]));
        // Mixing pull styles keeps the single cursor coherent.
        s.reset().unwrap();
        assert_eq!(s.next_edge(), Some(edges[0]));
        assert_eq!(s.next_slice(10), Some(&edges[1..]));
    }

    #[test]
    fn default_next_chunk_loops_next_edge() {
        // A minimal implementor that only provides the per-edge method: the
        // compatibility contract of the chunked ABI.
        struct Countdown(u32);
        impl EdgeStream for Countdown {
            fn next_edge(&mut self) -> Option<Edge> {
                if self.0 == 0 {
                    return None;
                }
                self.0 -= 1;
                Some(Edge::new(self.0, self.0 + 1))
            }
            fn len_hint(&self) -> Option<u64> {
                None
            }
            fn num_vertices_hint(&self) -> Option<u64> {
                None
            }
        }
        let mut s = Countdown(5);
        assert_eq!(s.next_slice(8), None);
        let mut buf = Vec::new();
        assert_eq!(s.next_chunk(&mut buf, 3), 3);
        assert_eq!(s.next_chunk(&mut buf, 3), 2);
        assert_eq!(s.next_chunk(&mut buf, 3), 0);
        let collected = collect_stream(&mut Countdown(7));
        assert_eq!(collected.len(), 7);
    }

    #[test]
    fn for_each_chunk_covers_stream_exactly_once() {
        let edges: Vec<Edge> = (0..1000u32).map(|i| Edge::new(i, i + 1)).collect();
        for cap in [1usize, 7, 256, 4096] {
            let mut s = InMemoryStream::from_edges(edges.clone());
            let mut seen = Vec::new();
            for_each_chunk(&mut s, cap, |chunk| seen.extend_from_slice(chunk));
            assert_eq!(seen, edges, "cap={cap}");
        }
    }

    #[test]
    fn try_for_each_chunk_covers_stream_and_stops_on_error() {
        let edges: Vec<Edge> = (0..100u32).map(|i| Edge::new(i, i + 1)).collect();
        for cap in [1usize, 7, 4096] {
            // Success path: sees every edge exactly once, like for_each_chunk.
            let mut s = InMemoryStream::from_edges(edges.clone());
            let mut seen = Vec::new();
            let ok: std::result::Result<(), ()> = try_for_each_chunk(&mut s, cap, |chunk| {
                seen.extend_from_slice(chunk);
                Ok(())
            });
            assert!(ok.is_ok());
            assert_eq!(seen, edges, "cap={cap}");
            // Error path: stops at the failing chunk and propagates.
            let mut s = InMemoryStream::from_edges(edges.clone());
            let mut consumed = 0usize;
            let err: std::result::Result<(), &str> = try_for_each_chunk(&mut s, cap, |chunk| {
                consumed += chunk.len();
                if consumed > 50 {
                    Err("cap exceeded")
                } else {
                    Ok(())
                }
            });
            assert_eq!(err, Err("cap exceeded"), "cap={cap}");
            if cap < 50 {
                assert!(consumed < 100, "cap={cap}: error must stop the drain");
            }
        }
        // The per-edge fallback path propagates too.
        let mut legacy = PerEdgeStream::new(InMemoryStream::from_edges(edges));
        let err: std::result::Result<(), u8> = try_for_each_chunk(&mut legacy, 4096, |_| Err(7));
        assert_eq!(err, Err(7));
    }

    #[test]
    fn per_edge_wrapper_forces_singleton_chunks() {
        let edges = sample_edges();
        let mut s = PerEdgeStream::new(InMemoryStream::from_edges(edges.clone()));
        assert_eq!(s.next_slice(100), None, "slices must be hidden");
        let mut buf = Vec::new();
        assert_eq!(s.next_chunk(&mut buf, 100), 1);
        assert_eq!(buf, &edges[..1]);
        s.reset().unwrap();
        let mut seen = Vec::new();
        for_each_chunk(&mut s, 4096, |chunk| {
            assert_eq!(chunk.len(), 1);
            seen.extend_from_slice(chunk);
        });
        assert_eq!(seen, edges);
    }

    #[test]
    fn chunk_limited_caps_but_preserves_content() {
        let edges: Vec<Edge> = (0..100u32).map(|i| Edge::new(i, i + 1)).collect();
        for limit in [1usize, 7, 4096] {
            let mut s = ChunkLimited::new(InMemoryStream::from_edges(edges.clone()), limit);
            let mut seen = Vec::new();
            for_each_chunk(&mut s, 4096, |chunk| {
                assert!(chunk.len() <= limit);
                seen.extend_from_slice(chunk);
            });
            assert_eq!(seen, edges, "limit={limit}");
        }
    }

    #[test]
    fn timed_stream_accumulates_and_preserves_content() {
        let inner = InMemoryStream::from_edges(sample_edges());
        let mut timed = TimedStream::new(inner);
        let collected = collect_stream(&mut timed);
        assert_eq!(collected, sample_edges());
        // Duration is monotone non-negative; just check the API works.
        let _ = timed.io_time();
        timed.reset().unwrap();
        assert_eq!(collect_stream(&mut timed).len(), 3);
    }

    #[test]
    fn timed_stream_times_chunk_pulls() {
        let mut timed = TimedStream::new(InMemoryStream::from_edges(sample_edges()));
        let mut buf = Vec::new();
        assert_eq!(timed.next_chunk(&mut buf, 2), 2);
        assert_eq!(timed.next_slice(10), Some(&sample_edges()[2..]));
        let _ = timed.io_time();
    }

    #[test]
    fn chunk_edges_override_rejects_zero_and_round_trips() {
        assert!(set_chunk_edges(0).is_err());
        // The default is live until someone overrides it.
        assert!(chunk_edges() >= 1);
        // Override and restore: results are chunking-invariant everywhere
        // (the equivalence suite), so a transient override is safe even
        // with concurrently running tests.
        set_chunk_edges(777).unwrap();
        assert_eq!(chunk_edges(), 777);
        set_chunk_edges(DEFAULT_CHUNK_EDGES).unwrap();
        assert_eq!(chunk_edges(), DEFAULT_CHUNK_EDGES);
    }

    #[test]
    fn into_edges_round_trips() {
        let s = InMemoryStream::from_edges(sample_edges());
        assert_eq!(s.into_edges(), sample_edges());
    }
}
