//! Graph analysis: degree distributions, power-law exponent estimation, and
//! connected components.
//!
//! Used to validate that the synthetic corpora look like the paper's
//! (Table III) and to provide ground truth for the engine's Connected
//! Components application.

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Histogram of a degree distribution: `counts[d]` = number of vertices with
/// degree exactly `d` (index 0 = isolated vertices).
pub fn degree_histogram(degrees: &[u64]) -> Vec<u64> {
    let max = degrees.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0u64; max + 1];
    for &d in degrees {
        hist[d as usize] += 1;
    }
    hist
}

/// Histogram of total (in + out) degrees of `graph`.
pub fn total_degree_histogram(graph: &CsrGraph) -> Vec<u64> {
    degree_histogram(&graph.total_degrees())
}

/// Discrete maximum-likelihood estimate of the power-law exponent α for a
/// degree histogram, using the Clauset–Shalizi–Newman approximation
/// `α ≈ 1 + n / Σ ln(x_i / (x_min − ½))`.
///
/// `x_min = 2`: the continuous approximation is badly biased at `x_min = 1`
/// for discrete data, so degree-1 vertices are excluded from the fit (the
/// standard de-biasing practice).
///
/// Returns `f64::NAN` for degenerate inputs (no vertex with degree ≥ 2).
pub fn estimate_power_law_alpha(histogram: &[u64]) -> f64 {
    let x_min = 2.0f64;
    let mut n = 0u64;
    let mut log_sum = 0.0f64;
    for (degree, &count) in histogram.iter().enumerate().skip(x_min as usize) {
        n += count;
        log_sum += count as f64 * ((degree as f64) / (x_min - 0.5)).ln();
    }
    if n == 0 || log_sum == 0.0 {
        return f64::NAN;
    }
    1.0 + (n as f64) / log_sum
}

/// Union-find (disjoint set) over dense `u32` ids with path halving and
/// union by size. Ground truth for connected components.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Finds the representative of `v` (with path halving).
    pub fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            self.parent[v as usize] = self.parent[self.parent[v as usize] as usize];
            v = self.parent[v as usize];
        }
        v
    }

    /// Unions the sets containing `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// Weakly connected component labels: `labels[v]` = smallest vertex id in
/// `v`'s component (edges treated as undirected). This is exactly the fixed
/// point label-propagation converges to, so it doubles as engine ground
/// truth.
pub fn connected_component_labels(graph: &CsrGraph) -> Vec<VertexId> {
    let n = graph.num_vertices() as usize;
    let mut uf = UnionFind::new(n);
    for e in graph.edges() {
        uf.union(e.src, e.dst);
    }
    // Min-id per root, then per vertex.
    let mut min_of_root: Vec<u32> = (0..n as u32).collect();
    for v in 0..n as u32 {
        let r = uf.find(v);
        if v < min_of_root[r as usize] {
            min_of_root[r as usize] = v;
        }
    }
    (0..n as u32)
        .map(|v| {
            let r = uf.find(v);
            min_of_root[r as usize]
        })
        .collect()
}

/// Number of weakly connected components.
pub fn num_components(graph: &CsrGraph) -> usize {
    let labels = connected_component_labels(graph);
    let mut roots: Vec<VertexId> = labels.clone();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

/// Summary statistics printed by the dataset inventory (Table III analogue).
#[derive(Debug, Clone, serde::Serialize)]
pub struct GraphSummary {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Number of directed edges.
    pub num_edges: u64,
    /// Mean total degree.
    pub mean_degree: f64,
    /// Maximum total degree.
    pub max_degree: u64,
    /// MLE power-law exponent of the total-degree distribution.
    pub alpha: f64,
    /// Number of weakly connected components.
    pub components: usize,
}

/// Computes a [`GraphSummary`] in two passes over the graph.
pub fn summarize(graph: &CsrGraph) -> GraphSummary {
    let degrees = graph.total_degrees();
    let hist = degree_histogram(&degrees);
    GraphSummary {
        num_vertices: graph.num_vertices(),
        num_edges: graph.num_edges(),
        mean_degree: if graph.num_vertices() == 0 {
            0.0
        } else {
            2.0 * graph.num_edges() as f64 / graph.num_vertices() as f64
        },
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        alpha: estimate_power_law_alpha(&hist),
        components: num_components(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    #[test]
    fn histogram_counts_degrees() {
        let hist = degree_histogram(&[0, 1, 1, 3]);
        assert_eq!(hist, vec![1, 2, 0, 1]);
    }

    #[test]
    fn histogram_of_empty() {
        assert_eq!(degree_histogram(&[]), vec![0]);
    }

    #[test]
    fn alpha_estimate_on_true_power_law() {
        // Construct an exact power-law histogram f(d) = C d^-2.2.
        let alpha_true = 2.2f64;
        let mut hist = vec![0u64; 2001];
        for (d, slot) in hist.iter_mut().enumerate().skip(1) {
            *slot = ((1e7 * (d as f64).powf(-alpha_true)).round()) as u64;
        }
        let est = estimate_power_law_alpha(&hist);
        assert!(
            (est - alpha_true).abs() < 0.15,
            "estimated {est}, wanted ~{alpha_true}"
        );
    }

    #[test]
    fn alpha_estimate_degenerate_is_nan() {
        assert!(estimate_power_law_alpha(&[5]).is_nan());
        assert!(estimate_power_law_alpha(&[]).is_nan());
        // Only degree-1 vertices: excluded from the fit entirely.
        assert!(estimate_power_law_alpha(&[0, 10]).is_nan());
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
        assert_eq!(uf.len(), 4);
        assert!(!uf.is_empty());
    }

    #[test]
    fn component_labels_are_min_ids() {
        // Components {0,1,2} and {3,4}, vertex 5 isolated.
        let g =
            CsrGraph::from_edges(6, &[Edge::new(1, 0), Edge::new(1, 2), Edge::new(4, 3)]).unwrap();
        assert_eq!(connected_component_labels(&g), vec![0, 0, 0, 3, 3, 5]);
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn direction_is_ignored_for_components() {
        let g = CsrGraph::from_edges(3, &[Edge::new(2, 1), Edge::new(1, 0)]).unwrap();
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn summary_fields() {
        let g = CsrGraph::from_edges(3, &[Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
        let s = summarize(&g);
        assert_eq!(s.num_vertices, 3);
        assert_eq!(s.num_edges, 2);
        assert_eq!(s.components, 1);
        assert_eq!(s.max_degree, 2);
        assert!((s.mean_degree - 4.0 / 3.0).abs() < 1e-9);
    }
}
