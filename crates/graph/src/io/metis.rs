//! METIS graph format (the `.graph` adjacency format of METIS/KaHIP) —
//! the lingua franca of the offline partitioners the paper compares the
//! streaming family against (§I cites METIS taking 8.5 h for 2 partitions).
//!
//! Format: first line `n m [fmt]`; line `i` (1-based) lists the neighbors
//! of vertex `i` (1-based ids), each undirected edge appearing in both
//! lists. `%` lines are comments. Only the unweighted variant (`fmt`
//! absent or `0`) is supported; weighted files are rejected explicitly.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::types::Edge;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a METIS `.graph` file into an *undirected* graph represented as a
/// directed CSR with both edge directions materialized.
pub fn read_metis(path: &Path) -> Result<CsrGraph> {
    parse_metis(std::fs::File::open(path)?)
}

/// Parses METIS from any reader (exposed for tests).
pub fn parse_metis<R: Read>(reader: R) -> Result<CsrGraph> {
    let mut lines = BufReader::new(reader).lines();
    let mut line_no = 0u64;

    // Header: n m [fmt]
    let header = loop {
        line_no += 1;
        match lines.next() {
            Some(l) => {
                let l = l?;
                let t = l.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break t.to_string();
                }
            }
            None => {
                return Err(GraphError::Format("missing METIS header".into()));
            }
        }
    };
    let mut parts = header.split_whitespace();
    let n: u64 = parse_num(parts.next(), line_no, "vertex count")?;
    let m: u64 = parse_num(parts.next(), line_no, "edge count")?;
    if let Some(fmt) = parts.next() {
        if fmt != "0" && fmt != "000" {
            return Err(GraphError::Format(format!(
                "weighted METIS format {fmt:?} not supported"
            )));
        }
    }

    let mut edges = Vec::with_capacity(2 * m as usize);
    let mut vertex: u64 = 0;
    for line in lines {
        line_no += 1;
        let line = line?;
        let t = line.trim();
        if t.starts_with('%') {
            continue;
        }
        vertex += 1;
        if vertex > n {
            if t.is_empty() {
                continue;
            }
            return Err(GraphError::Format(format!(
                "more adjacency lines than the declared {n} vertices"
            )));
        }
        for tok in t.split_whitespace() {
            let nb: u64 = parse_num(Some(tok), line_no, "neighbor id")?;
            if nb == 0 || nb > n {
                return Err(GraphError::Format(format!(
                    "neighbor {nb} out of 1..={n} on line {line_no}"
                )));
            }
            edges.push(Edge {
                src: (vertex - 1) as u32,
                dst: (nb - 1) as u32,
            });
        }
    }
    if vertex < n {
        return Err(GraphError::Format(format!(
            "only {vertex} of {n} adjacency lines present"
        )));
    }
    if edges.len() as u64 != 2 * m {
        return Err(GraphError::Format(format!(
            "adjacency lists carry {} entries, header declares {m} undirected edges",
            edges.len()
        )));
    }
    CsrGraph::from_edges(n, &edges)
}

fn parse_num(tok: Option<&str>, line: u64, what: &str) -> Result<u64> {
    let s = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    s.parse().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad {what} {s:?}: {e}"),
    })
}

/// Writes `graph` as METIS, treating it as undirected: each directed edge
/// `(u,v)` becomes the undirected pair, deduplicated; self-loops are
/// dropped (METIS forbids them).
pub fn write_metis(path: &Path, graph: &CsrGraph) -> Result<()> {
    // Build symmetric dedup'd adjacency.
    let n = graph.num_vertices() as usize;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in graph.edges() {
        if e.src == e.dst {
            continue;
        }
        adj[e.src as usize].push(e.dst);
        adj[e.dst as usize].push(e.src);
    }
    let mut m: u64 = 0;
    for (v, list) in adj.iter_mut().enumerate() {
        list.sort_unstable();
        list.dedup();
        m += list.iter().filter(|&&nb| (nb as usize) > v).count() as u64;
    }
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "% written by clugp-graph")?;
    writeln!(w, "{n} {m}")?;
    for list in &adj {
        let mut first = true;
        for &nb in list {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{}", nb + 1)?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_triangle() {
        // Triangle on 3 vertices, 3 undirected edges.
        let input = "% comment\n3 3\n2 3\n1 3\n1 2\n";
        let g = parse_metis(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6); // both directions
        assert_eq!(g.out_neighbors(0), &[1, 2]);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let input = "3 1\n2\n1\n\n";
        let g = parse_metis(input.as_bytes()).unwrap();
        assert_eq!(g.out_degree(2), 0);
    }

    #[test]
    fn rejects_weighted_format() {
        assert!(matches!(
            parse_metis("2 1 011\n2\n1\n".as_bytes()).unwrap_err(),
            GraphError::Format(_)
        ));
    }

    #[test]
    fn rejects_out_of_range_neighbor() {
        assert!(parse_metis("2 1\n3\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_edge_count() {
        assert!(parse_metis("2 5\n2\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_missing_lines() {
        assert!(parse_metis("3 1\n2\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn round_trip_via_file() {
        let dir = std::env::temp_dir().join("clugp_metis_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.graph");
        // Directed diamond with a duplicate and a self-loop: writer
        // symmetrizes, dedups, drops the loop.
        let g = CsrGraph::from_edges(
            4,
            &[
                Edge::new(0, 1),
                Edge::new(0, 1),
                Edge::new(1, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(3, 0),
            ],
        )
        .unwrap();
        write_metis(&path, &g).unwrap();
        let back = read_metis(&path).unwrap();
        assert_eq!(back.num_vertices(), 4);
        // Ring 0-1-2-3-0: 4 undirected edges = 8 directed.
        assert_eq!(back.num_edges(), 8);
        assert_eq!(back.out_neighbors(0), &[1, 3]);
        std::fs::remove_file(&path).ok();
    }
}
