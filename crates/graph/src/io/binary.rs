//! Compact binary graph format and a file-backed resettable edge stream.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   [u8; 8]  = b"CLUGPGR1"
//! n       u64      number of vertices
//! m       u64      number of edges
//! edges   m × (u32 src, u32 dst)
//! ```
//!
//! 8 bytes per edge — the same density the paper's Table III sizes imply
//! (~12-16 B/edge for WebGraph-decompressed lists).

use crate::error::{GraphError, Result};
use crate::stream::{EdgeStream, RestreamableStream};
use crate::types::Edge;
use bytes::{Buf, BufMut};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

pub(crate) const MAGIC: &[u8; 8] = b"CLUGPGR1";
const HEADER_LEN: u64 = 8 + 8 + 8;

/// Validates that the file holds exactly the edge payload its header
/// promises, returning the dedicated size-mismatch error otherwise — the
/// fail-fast guard that keeps truncation from surfacing as a raw
/// short-read I/O error mid-stream.
fn check_payload_size(file: &std::fs::File, num_edges: u64) -> Result<()> {
    // The header's edge count is untrusted file input: a corrupt value near
    // u64::MAX must fail the check, not wrap it away.
    let expected_bytes = num_edges
        .checked_mul(8)
        .ok_or_else(|| GraphError::Format(format!("header edge count {num_edges} overflows")))?;
    let actual_bytes = file.metadata()?.len().saturating_sub(HEADER_LEN);
    if actual_bytes != expected_bytes {
        return Err(GraphError::TruncatedPayload {
            expected_bytes,
            actual_bytes,
        });
    }
    Ok(())
}

/// Writes `(num_vertices, edges)` to `path` in the binary format.
pub fn write_binary_graph(path: &Path, num_vertices: u64, edges: &[Edge]) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.put_slice(MAGIC);
    header.put_u64_le(num_vertices);
    header.put_u64_le(edges.len() as u64);
    w.write_all(&header)?;
    let mut buf = Vec::with_capacity(8 * 1024);
    for chunk in edges.chunks(1024) {
        buf.clear();
        for e in chunk {
            buf.put_u32_le(e.src);
            buf.put_u32_le(e.dst);
        }
        w.write_all(&buf)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a whole binary graph into memory, returning `(num_vertices, edges)`.
pub fn read_binary_graph(path: &Path) -> Result<(u64, Vec<Edge>)> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let (num_vertices, num_edges) = read_header(&mut r)?;
    check_payload_size(r.get_ref(), num_edges)?;
    let mut raw = vec![0u8; (num_edges * 8) as usize];
    r.read_exact(&mut raw)
        .map_err(|_| GraphError::Format("edge payload truncated".into()))?;
    let mut edges = Vec::with_capacity(num_edges as usize);
    let mut cursor = &raw[..];
    for _ in 0..num_edges {
        let src = cursor.get_u32_le();
        let dst = cursor.get_u32_le();
        edges.push(Edge { src, dst });
    }
    Ok((num_vertices, edges))
}

fn read_header<R: Read>(r: &mut R) -> Result<(u64, u64)> {
    let mut header = [0u8; HEADER_LEN as usize];
    r.read_exact(&mut header)
        .map_err(|_| GraphError::Format("file shorter than header".into()))?;
    if &header[..8] != MAGIC {
        return Err(GraphError::Format("bad magic bytes".into()));
    }
    let mut rest = &header[8..];
    let n = rest.get_u64_le();
    let m = rest.get_u64_le();
    Ok((n, m))
}

/// A resettable edge stream backed by a binary graph file.
///
/// Chunked pulls ([`EdgeStream::next_chunk`]) read whole blocks of records
/// in bulk `read` calls into a reused scratch buffer and decode them in a
/// tight loop; the per-edge path reads 8-byte records through the
/// [`BufReader`]. `reset` seeks back to the start of the edge payload. This
/// is the source used by the Figure 10(a) compute/I-O breakdown, where
/// CLUGP's three passes really do read the file three times.
///
/// A truncated or size-mismatched file is rejected at [`FileEdgeStream::open`]
/// with the dedicated [`GraphError::TruncatedPayload`] (exact expected-vs-
/// actual byte accounting) instead of surfacing a raw short-read I/O error
/// mid-stream. If the file shrinks *after* open, the stream ends early with
/// the same dedicated error parked in [`FileEdgeStream::error`]; genuine
/// I/O failures park their error too, and the next
/// [`RestreamableStream::reset`] reports it — same contract as
/// [`crate::io::edge_list::TextEdgeStream`], so a restreaming consumer
/// cannot silently loop over a half-read stream.
#[derive(Debug)]
pub struct FileEdgeStream {
    reader: BufReader<std::fs::File>,
    path: PathBuf,
    num_vertices: u64,
    num_edges: u64,
    yielded: u64,
    /// Scratch for block decodes; grown to one chunk's bytes and reused.
    raw: Vec<u8>,
    error: Option<GraphError>,
}

impl FileEdgeStream {
    /// Opens `path`, validating the header and that the file holds exactly
    /// the edge payload the header promises.
    ///
    /// # Errors
    ///
    /// [`GraphError::TruncatedPayload`] on a truncated or size-mismatched
    /// payload; [`GraphError::Format`] on a bad magic or short header.
    pub fn open(path: &Path) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        let mut reader = BufReader::new(file);
        let (num_vertices, num_edges) = read_header(&mut reader)?;
        check_payload_size(reader.get_ref(), num_edges)?;
        Ok(FileEdgeStream {
            reader,
            path: path.to_path_buf(),
            num_vertices,
            num_edges,
            yielded: 0,
            raw: Vec::new(),
            error: None,
        })
    }

    /// The file this stream reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The error that ended the stream early, if any — a
    /// [`GraphError::TruncatedPayload`] if the file shrank after open, or
    /// the underlying I/O failure. (Also reported by the next
    /// [`RestreamableStream::reset`].)
    pub fn error(&self) -> Option<&GraphError> {
        self.error.as_ref()
    }

    /// Parks the dedicated truncation error for a file that shrank after
    /// open; `decoded_now` (whole edges decoded from the current pull) is
    /// the fallback byte accounting if the file cannot be stat'ed.
    fn park_truncation(&mut self, decoded_now: u64) {
        let actual_bytes = self
            .reader
            .get_ref()
            .metadata()
            .map(|m| m.len().saturating_sub(HEADER_LEN))
            .unwrap_or((self.yielded + decoded_now).saturating_mul(8));
        self.error = Some(GraphError::TruncatedPayload {
            // Open validated num_edges * 8 against the real file size, so
            // this cannot overflow for a stream that ever opened; saturate
            // anyway rather than trust it.
            expected_bytes: self.num_edges.saturating_mul(8),
            actual_bytes,
        });
    }
}

impl EdgeStream for FileEdgeStream {
    fn next_edge(&mut self) -> Option<Edge> {
        if self.yielded >= self.num_edges || self.error.is_some() {
            return None;
        }
        let mut rec = [0u8; 8];
        match self.reader.read_exact(&mut rec) {
            Ok(()) => {
                self.yielded += 1;
                let mut cursor = &rec[..];
                let src = cursor.get_u32_le();
                let dst = cursor.get_u32_le();
                Some(Edge { src, dst })
            }
            // File shrank after open: end the stream with the dedicated
            // truncation error parked (open validated the original size).
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                self.park_truncation(0);
                None
            }
            // Real I/O failure: end the stream and park the error for
            // error()/reset().
            Err(e) => {
                self.error = Some(GraphError::from(e));
                None
            }
        }
    }

    fn next_chunk(&mut self, buf: &mut Vec<Edge>, cap: usize) -> usize {
        buf.clear();
        if self.error.is_some() {
            return 0;
        }
        let remaining = (self.num_edges - self.yielded) as usize;
        let want = cap.max(1).min(remaining);
        if want == 0 {
            return 0;
        }
        let want_bytes = want * 8;
        self.raw.resize(want_bytes, 0);
        let mut filled = 0usize;
        while filled < want_bytes {
            match self.reader.read(&mut self.raw[filled..want_bytes]) {
                Ok(0) => {
                    // File shrank after open: park the dedicated truncation
                    // error; the whole records already read still decode.
                    self.park_truncation((filled / 8) as u64);
                    break;
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.error = Some(GraphError::from(e));
                    break;
                }
            }
        }
        // A trailing partial record (truncated file) is dropped, matching
        // the per-edge path's end-early behavior.
        let complete = filled / 8;
        buf.reserve(complete);
        for rec in self.raw[..complete * 8].chunks_exact(8) {
            let src = u32::from_le_bytes(rec[..4].try_into().expect("4-byte field"));
            let dst = u32::from_le_bytes(rec[4..].try_into().expect("4-byte field"));
            buf.push(Edge { src, dst });
        }
        self.yielded += complete as u64;
        complete
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.num_edges)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.num_vertices)
    }
}

impl RestreamableStream for FileEdgeStream {
    /// Rewinds to the first edge record.
    ///
    /// # Errors
    ///
    /// Fails on seek errors, or reports (and clears) the I/O error that
    /// ended the previous pass early.
    fn reset(&mut self) -> Result<()> {
        let parked = self.error.take();
        self.reader.seek(SeekFrom::Start(HEADER_LEN))?;
        self.yielded = 0;
        match parked {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::collect_stream;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("clugp_binary_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Vec<Edge> {
        vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 0),
            Edge::new(0, 2),
        ]
    }

    #[test]
    fn round_trip_in_memory_read() {
        let path = tmp("rt.bin");
        write_binary_graph(&path, 3, &sample()).unwrap();
        let (n, edges) = read_binary_graph(&path).unwrap();
        assert_eq!(n, 3);
        assert_eq!(edges, sample());
    }

    #[test]
    fn file_stream_yields_all_edges() {
        let path = tmp("stream.bin");
        write_binary_graph(&path, 3, &sample()).unwrap();
        let mut s = FileEdgeStream::open(&path).unwrap();
        assert_eq!(s.len_hint(), Some(4));
        assert_eq!(s.num_vertices_hint(), Some(3));
        assert_eq!(collect_stream(&mut s), sample());
        assert_eq!(s.next_edge(), None);
    }

    #[test]
    fn file_stream_resets() {
        let path = tmp("reset.bin");
        write_binary_graph(&path, 3, &sample()).unwrap();
        let mut s = FileEdgeStream::open(&path).unwrap();
        let first = collect_stream(&mut s);
        s.reset().unwrap();
        let second = collect_stream(&mut s);
        assert_eq!(first, second);
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("bad_magic.bin");
        std::fs::write(&path, b"NOTMAGIC________________").unwrap();
        let err = FileEdgeStream::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)));
    }

    #[test]
    fn rejects_short_header() {
        let path = tmp("short.bin");
        std::fs::write(&path, b"CLU").unwrap();
        assert!(matches!(
            read_binary_graph(&path).unwrap_err(),
            GraphError::Format(_)
        ));
    }

    #[test]
    fn detects_truncated_payload() {
        let path = tmp("trunc.bin");
        write_binary_graph(&path, 3, &sample()).unwrap();
        // Chop off the last 4 bytes: 4 edges promised (32 payload bytes),
        // 28 on disk. Both open paths fail fast with the dedicated error
        // carrying the exact byte accounting — no raw short-read I/O error
        // can surface mid-stream.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 4]).unwrap();
        for err in [
            read_binary_graph(&path).unwrap_err(),
            FileEdgeStream::open(&path).unwrap_err(),
        ] {
            match err {
                GraphError::TruncatedPayload {
                    expected_bytes,
                    actual_bytes,
                } => {
                    assert_eq!(expected_bytes, 32);
                    assert_eq!(actual_bytes, 28);
                }
                other => panic!("expected TruncatedPayload, got {other}"),
            }
        }
    }

    #[test]
    fn rejects_overflowing_edge_count_header() {
        // A corrupt header whose edge count overflows `m * 8` must be a
        // clean error, not a wrap (release) or panic (debug).
        let path = tmp("overflow.bin");
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&4u64.to_le_bytes()); // n
        data.extend_from_slice(&((1u64 << 61) + 1).to_le_bytes()); // m * 8 wraps
        data.extend_from_slice(&[0u8; 8]); // one fake record
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            read_binary_graph(&path).unwrap_err(),
            GraphError::Format(_)
        ));
        assert!(matches!(
            FileEdgeStream::open(&path).unwrap_err(),
            GraphError::Format(_)
        ));
    }

    #[test]
    fn detects_oversized_payload() {
        // Trailing junk after the promised payload is a size mismatch too.
        let path = tmp("oversize.bin");
        write_binary_graph(&path, 3, &sample()).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&[0u8; 6]);
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            read_binary_graph(&path).unwrap_err(),
            GraphError::TruncatedPayload {
                expected_bytes: 32,
                actual_bytes: 38,
            }
        ));
        assert!(FileEdgeStream::open(&path).is_err());
    }

    #[test]
    fn file_shrinking_after_open_parks_truncation_error() {
        // Regression: truncation discovered *mid-stream* (the file shrank
        // between open and the read) must park the dedicated error — the
        // next reset reports it, so a restreaming consumer cannot silently
        // loop over a half-read stream.
        // Big enough that the payload tail is beyond the BufReader's
        // buffer, so the shrink is actually observed by a read.
        let edges: Vec<Edge> = (0..2_000u32).map(|i| Edge::new(i, i + 1)).collect();
        let path = tmp("shrink.bin");
        write_binary_graph(&path, 2_001, &edges).unwrap();
        let mut s = FileEdgeStream::open(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 4]).unwrap();
        let seen = collect_stream(&mut s);
        assert_eq!(seen.len(), 1_999, "whole records still decode");
        assert!(
            matches!(
                s.error(),
                Some(GraphError::TruncatedPayload {
                    expected_bytes: 16_000,
                    actual_bytes: 15_996,
                })
            ),
            "got {:?}",
            s.error()
        );
        let err = s.reset().unwrap_err();
        assert!(matches!(err, GraphError::TruncatedPayload { .. }));
        // The parked error is cleared by the reporting reset.
        assert!(s.error().is_none());

        // Same contract on the per-edge pull path.
        let path2 = tmp("shrink_per_edge.bin");
        write_binary_graph(&path2, 2_001, &edges).unwrap();
        let mut s = FileEdgeStream::open(&path2).unwrap();
        let data = std::fs::read(&path2).unwrap();
        std::fs::write(&path2, &data[..data.len() - 4]).unwrap();
        let mut seen = 0;
        while s.next_edge().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 1_999);
        assert!(matches!(
            s.error(),
            Some(GraphError::TruncatedPayload { .. })
        ));
    }

    #[test]
    fn chunked_reads_match_per_edge_reads() {
        let path = tmp("chunked.bin");
        let edges: Vec<Edge> = (0..1000u32).map(|i| Edge::new(i, (i * 7) % 1000)).collect();
        write_binary_graph(&path, 1000, &edges).unwrap();
        for cap in [1usize, 7, 256, 4096] {
            let mut s = FileEdgeStream::open(&path).unwrap();
            let mut seen = Vec::new();
            let mut buf = Vec::new();
            while s.next_chunk(&mut buf, cap) != 0 {
                seen.extend_from_slice(&buf);
            }
            assert_eq!(seen, edges, "cap={cap}");
        }
    }

    #[test]
    fn chunked_read_of_shrunk_file_ends_early_with_parked_error() {
        // Large enough that the tail lies beyond the BufReader's buffer.
        let edges: Vec<Edge> = (0..2_000u32).map(|i| Edge::new(i, i + 1)).collect();
        let path = tmp("trunc_chunk.bin");
        write_binary_graph(&path, 2_001, &edges).unwrap();
        let mut s = FileEdgeStream::open(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 4]).unwrap();
        let mut buf = Vec::new();
        let mut seen = Vec::new();
        while s.next_chunk(&mut buf, 4096) != 0 {
            seen.extend_from_slice(&buf);
        }
        assert_eq!(seen.len(), 1_999, "whole records of this pull decode");
        assert_eq!(seen, edges[..1_999]);
        assert!(matches!(
            s.error(),
            Some(GraphError::TruncatedPayload { .. })
        ));
    }

    #[test]
    fn chunked_stream_resets() {
        let path = tmp("chunk_reset.bin");
        write_binary_graph(&path, 3, &sample()).unwrap();
        let mut s = FileEdgeStream::open(&path).unwrap();
        let first = collect_stream(&mut s);
        s.reset().unwrap();
        let second = collect_stream(&mut s);
        assert_eq!(first, sample());
        assert_eq!(first, second);
    }

    #[test]
    fn empty_graph_round_trip() {
        let path = tmp("empty.bin");
        write_binary_graph(&path, 0, &[]).unwrap();
        let (n, edges) = read_binary_graph(&path).unwrap();
        assert_eq!(n, 0);
        assert!(edges.is_empty());
    }
}
