//! Compact binary graph format and a file-backed resettable edge stream.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   [u8; 8]  = b"CLUGPGR1"
//! n       u64      number of vertices
//! m       u64      number of edges
//! edges   m × (u32 src, u32 dst)
//! ```
//!
//! 8 bytes per edge — the same density the paper's Table III sizes imply
//! (~12-16 B/edge for WebGraph-decompressed lists).

use crate::error::{GraphError, Result};
use crate::stream::{EdgeStream, RestreamableStream};
use crate::types::Edge;
use bytes::{Buf, BufMut};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"CLUGPGR1";
const HEADER_LEN: u64 = 8 + 8 + 8;

/// Writes `(num_vertices, edges)` to `path` in the binary format.
pub fn write_binary_graph(path: &Path, num_vertices: u64, edges: &[Edge]) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.put_slice(MAGIC);
    header.put_u64_le(num_vertices);
    header.put_u64_le(edges.len() as u64);
    w.write_all(&header)?;
    let mut buf = Vec::with_capacity(8 * 1024);
    for chunk in edges.chunks(1024) {
        buf.clear();
        for e in chunk {
            buf.put_u32_le(e.src);
            buf.put_u32_le(e.dst);
        }
        w.write_all(&buf)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a whole binary graph into memory, returning `(num_vertices, edges)`.
pub fn read_binary_graph(path: &Path) -> Result<(u64, Vec<Edge>)> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let (num_vertices, num_edges) = read_header(&mut r)?;
    let mut raw = vec![0u8; (num_edges * 8) as usize];
    r.read_exact(&mut raw)
        .map_err(|_| GraphError::Format("edge payload truncated".into()))?;
    let mut edges = Vec::with_capacity(num_edges as usize);
    let mut cursor = &raw[..];
    for _ in 0..num_edges {
        let src = cursor.get_u32_le();
        let dst = cursor.get_u32_le();
        edges.push(Edge { src, dst });
    }
    Ok((num_vertices, edges))
}

fn read_header<R: Read>(r: &mut R) -> Result<(u64, u64)> {
    let mut header = [0u8; HEADER_LEN as usize];
    r.read_exact(&mut header)
        .map_err(|_| GraphError::Format("file shorter than header".into()))?;
    if &header[..8] != MAGIC {
        return Err(GraphError::Format("bad magic bytes".into()));
    }
    let mut rest = &header[8..];
    let n = rest.get_u64_le();
    let m = rest.get_u64_le();
    Ok((n, m))
}

/// A resettable edge stream backed by a binary graph file.
///
/// Reads through a [`BufReader`] in 8-byte records; `reset` seeks back to the
/// start of the edge payload. This is the source used by the Figure 10(a)
/// compute/I-O breakdown, where CLUGP's three passes really do read the file
/// three times.
#[derive(Debug)]
pub struct FileEdgeStream {
    reader: BufReader<std::fs::File>,
    path: PathBuf,
    num_vertices: u64,
    num_edges: u64,
    yielded: u64,
}

impl FileEdgeStream {
    /// Opens `path` and validates the header.
    pub fn open(path: &Path) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        let mut reader = BufReader::new(file);
        let (num_vertices, num_edges) = read_header(&mut reader)?;
        Ok(FileEdgeStream {
            reader,
            path: path.to_path_buf(),
            num_vertices,
            num_edges,
            yielded: 0,
        })
    }

    /// The file this stream reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl EdgeStream for FileEdgeStream {
    fn next_edge(&mut self) -> Option<Edge> {
        if self.yielded >= self.num_edges {
            return None;
        }
        let mut rec = [0u8; 8];
        match self.reader.read_exact(&mut rec) {
            Ok(()) => {
                self.yielded += 1;
                let mut cursor = &rec[..];
                let src = cursor.get_u32_le();
                let dst = cursor.get_u32_le();
                Some(Edge { src, dst })
            }
            // Truncated file: end the stream. Callers comparing against
            // len_hint can detect the shortfall.
            Err(_) => None,
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.num_edges)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.num_vertices)
    }
}

impl RestreamableStream for FileEdgeStream {
    fn reset(&mut self) -> Result<()> {
        self.reader.seek(SeekFrom::Start(HEADER_LEN))?;
        self.yielded = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::collect_stream;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("clugp_binary_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Vec<Edge> {
        vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 0),
            Edge::new(0, 2),
        ]
    }

    #[test]
    fn round_trip_in_memory_read() {
        let path = tmp("rt.bin");
        write_binary_graph(&path, 3, &sample()).unwrap();
        let (n, edges) = read_binary_graph(&path).unwrap();
        assert_eq!(n, 3);
        assert_eq!(edges, sample());
    }

    #[test]
    fn file_stream_yields_all_edges() {
        let path = tmp("stream.bin");
        write_binary_graph(&path, 3, &sample()).unwrap();
        let mut s = FileEdgeStream::open(&path).unwrap();
        assert_eq!(s.len_hint(), Some(4));
        assert_eq!(s.num_vertices_hint(), Some(3));
        assert_eq!(collect_stream(&mut s), sample());
        assert_eq!(s.next_edge(), None);
    }

    #[test]
    fn file_stream_resets() {
        let path = tmp("reset.bin");
        write_binary_graph(&path, 3, &sample()).unwrap();
        let mut s = FileEdgeStream::open(&path).unwrap();
        let first = collect_stream(&mut s);
        s.reset().unwrap();
        let second = collect_stream(&mut s);
        assert_eq!(first, second);
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("bad_magic.bin");
        std::fs::write(&path, b"NOTMAGIC________________").unwrap();
        let err = FileEdgeStream::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)));
    }

    #[test]
    fn rejects_short_header() {
        let path = tmp("short.bin");
        std::fs::write(&path, b"CLU").unwrap();
        assert!(matches!(
            read_binary_graph(&path).unwrap_err(),
            GraphError::Format(_)
        ));
    }

    #[test]
    fn detects_truncated_payload() {
        let path = tmp("trunc.bin");
        write_binary_graph(&path, 3, &sample()).unwrap();
        // Chop off the last 4 bytes.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 4]).unwrap();
        assert!(matches!(
            read_binary_graph(&path).unwrap_err(),
            GraphError::Format(_)
        ));
        // The streaming reader ends early instead of erroring.
        let mut s = FileEdgeStream::open(&path).unwrap();
        let edges = collect_stream(&mut s);
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn empty_graph_round_trip() {
        let path = tmp("empty.bin");
        write_binary_graph(&path, 0, &[]).unwrap();
        let (n, edges) = read_binary_graph(&path).unwrap();
        assert_eq!(n, 0);
        assert!(edges.is_empty());
    }
}
