//! Whitespace-separated text edge lists (`src dst` per line, `#` comments) —
//! the de-facto exchange format of SNAP/WebGraph-derived datasets.

use crate::error::{GraphError, Result};
use crate::types::Edge;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a text edge list. Lines starting with `#` or `%` and blank lines
/// are skipped. Each data line must contain two unsigned integers.
pub fn read_edge_list(path: &Path) -> Result<Vec<Edge>> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(file)
}

/// Parses an edge list from any reader (exposed for tests and in-memory use).
pub fn parse_edge_list<R: Read>(reader: R) -> Result<Vec<Edge>> {
    let mut edges = Vec::new();
    let mut line = String::new();
    let mut buf = BufReader::new(reader);
    let mut line_no: u64 = 0;
    loop {
        line.clear();
        let n = buf.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let src = parse_field(it.next(), line_no)?;
        let dst = parse_field(it.next(), line_no)?;
        edges.push(Edge { src, dst });
    }
    Ok(edges)
}

fn parse_field(field: Option<&str>, line: u64) -> Result<u32> {
    let s = field.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex ids".into(),
    })?;
    s.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad vertex id {s:?}: {e}"),
    })
}

/// Writes edges as a text edge list with a provenance header comment.
pub fn write_edge_list(path: &Path, edges: &[Edge]) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# directed edge list, {} edges", edges.len())?;
    for e in edges {
        writeln!(w, "{} {}", e.src, e.dst)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_list() {
        let input = "# comment\n0 1\n\n% also comment\n2 3\n";
        let edges = parse_edge_list(input.as_bytes()).unwrap();
        assert_eq!(edges, vec![Edge::new(0, 1), Edge::new(2, 3)]);
    }

    #[test]
    fn tolerates_extra_whitespace() {
        let edges = parse_edge_list("  7\t 8 \n".as_bytes()).unwrap();
        assert_eq!(edges, vec![Edge::new(7, 8)]);
    }

    #[test]
    fn reports_line_of_bad_token() {
        let err = parse_edge_list("0 1\nx y\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn reports_missing_field() {
        let err = parse_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("clugp_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        let edges = vec![Edge::new(0, 1), Edge::new(5, 2), Edge::new(5, 2)];
        write_edge_list(&path, &edges).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(back, edges);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_input() {
        assert!(parse_edge_list("".as_bytes()).unwrap().is_empty());
        assert!(parse_edge_list("# only comments\n".as_bytes())
            .unwrap()
            .is_empty());
    }
}
