//! Whitespace-separated text edge lists (`src dst` per line, `#` comments) —
//! the de-facto exchange format of SNAP/WebGraph-derived datasets.

use crate::error::{GraphError, Result};
use crate::idmap::RawEdgeStream;
use crate::stream::{EdgeStream, RestreamableStream};
use crate::types::{Edge, RawEdge};
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Reads a text edge list. Lines starting with `#` or `%` and blank lines
/// are skipped. Each data line must contain two unsigned integers.
pub fn read_edge_list(path: &Path) -> Result<Vec<Edge>> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(file)
}

/// Parses an edge list from any reader (exposed for tests and in-memory use).
pub fn parse_edge_list<R: Read>(reader: R) -> Result<Vec<Edge>> {
    let mut edges = Vec::new();
    let mut line = String::new();
    let mut buf = BufReader::new(reader);
    let mut line_no: u64 = 0;
    loop {
        line.clear();
        let n = buf.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let src = parse_field(it.next(), line_no)?;
        let dst = parse_field(it.next(), line_no)?;
        edges.push(Edge { src, dst });
    }
    Ok(edges)
}

fn parse_field(field: Option<&str>, line: u64) -> Result<u32> {
    let s = field.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex ids".into(),
    })?;
    s.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad vertex id {s:?}: {e}"),
    })
}

fn parse_field_u64(field: Option<&str>, line: u64) -> Result<u64> {
    let s = field.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex ids".into(),
    })?;
    s.parse::<u64>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad vertex id {s:?}: {e}"),
    })
}

/// A resettable edge stream over a text edge list, parsing lazily so the
/// whole file never has to sit in memory.
///
/// Lines are pulled through a [`BufReader`] (real buffered block reads);
/// chunked pulls ([`EdgeStream::next_chunk`]) parse a block of lines per
/// virtual dispatch. Comment (`#`/`%`) and blank lines are skipped.
///
/// [`TextEdgeStream::open`] validates the whole file up front (one extra
/// buffered pass) so a malformed line fails loudly at open time — never as
/// a silently truncated partition — and the stream carries exact
/// [`EdgeStream::len_hint`]/[`EdgeStream::num_vertices_hint`] values, which
/// CLUGP needs for `Vmax = |E|/k`. [`TextEdgeStream::open_lazy`] skips the
/// validation pass for trusted or too-large-to-rescan inputs; there a
/// malformed line ends the stream early (mirroring the truncation behavior
/// of the binary [`crate::io::binary::FileEdgeStream`]), parks the error in
/// [`TextEdgeStream::error`], and the next [`RestreamableStream::reset`]
/// reports it, so multi-pass consumers cannot keep re-reading a truncated
/// stream unknowingly.
#[derive(Debug)]
pub struct TextEdgeStream {
    reader: BufReader<std::fs::File>,
    path: PathBuf,
    line: String,
    line_no: u64,
    done: bool,
    error: Option<GraphError>,
    num_edges: Option<u64>,
    num_vertices: Option<u64>,
}

impl TextEdgeStream {
    /// Opens `path`, validating every line in one buffered pre-pass and
    /// recording exact edge/vertex hints.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or on the first malformed line (same contract as
    /// [`read_edge_list`]).
    pub fn open(path: &Path) -> Result<Self> {
        let mut s = Self::open_lazy(path)?;
        let mut edges = 0u64;
        let mut max_id: Option<u32> = None;
        while let Some(e) = s.parse_next() {
            edges += 1;
            let hi = e.src.max(e.dst);
            max_id = Some(max_id.map_or(hi, |m| m.max(hi)));
        }
        if let Some(err) = s.error.take() {
            return Err(err);
        }
        s.num_edges = Some(edges);
        s.num_vertices = Some(max_id.map_or(0, |m| u64::from(m) + 1));
        s.reset()?;
        Ok(s)
    }

    /// Opens `path` without the validation pre-pass: hints are `None` and a
    /// malformed line ends the stream early with the error parked (see the
    /// type docs for the failure contract).
    pub fn open_lazy(path: &Path) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        Ok(TextEdgeStream {
            reader: BufReader::new(file),
            path: path.to_path_buf(),
            line: String::new(),
            line_no: 0,
            done: false,
            error: None,
            num_edges: None,
            num_vertices: None,
        })
    }

    /// The file this stream reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The parse error that ended the stream early, if any. (Also reported
    /// by the next [`RestreamableStream::reset`].)
    pub fn error(&self) -> Option<&GraphError> {
        self.error.as_ref()
    }

    fn parse_next(&mut self) -> Option<Edge> {
        if self.done {
            return None;
        }
        loop {
            self.line.clear();
            let n = match self.reader.read_line(&mut self.line) {
                Ok(n) => n,
                Err(e) => {
                    self.done = true;
                    self.error = Some(GraphError::from(e));
                    return None;
                }
            };
            if n == 0 {
                self.done = true;
                return None;
            }
            self.line_no += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
                continue;
            }
            let mut it = trimmed.split_whitespace();
            let parsed = parse_field(it.next(), self.line_no)
                .and_then(|src| parse_field(it.next(), self.line_no).map(|dst| Edge { src, dst }));
            match parsed {
                Ok(e) => return Some(e),
                Err(e) => {
                    self.done = true;
                    self.error = Some(e);
                    return None;
                }
            }
        }
    }
}

impl EdgeStream for TextEdgeStream {
    // `next_chunk` is deliberately not overridden: the trait default loops
    // `next_edge`, which statically dispatches to `parse_next` here — an
    // override would duplicate it byte for byte. The chunking win for this
    // source is the BufReader's block reads plus one virtual dispatch per
    // chunk at the consumer, both of which the default already provides.
    fn next_edge(&mut self) -> Option<Edge> {
        self.parse_next()
    }

    fn len_hint(&self) -> Option<u64> {
        self.num_edges
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        self.num_vertices
    }
}

impl RestreamableStream for TextEdgeStream {
    /// Rewinds to the start of the file.
    ///
    /// # Errors
    ///
    /// Fails on seek errors, or — for lazily opened streams — reports (and
    /// clears) the parse/I-O error that ended the previous pass early, so a
    /// restreaming consumer cannot silently loop over a truncated stream.
    fn reset(&mut self) -> Result<()> {
        let parked = self.error.take();
        self.reader.seek(SeekFrom::Start(0))?;
        self.line_no = 0;
        self.done = false;
        match parked {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// A resettable [`RawEdgeStream`] over a text edge list whose vertex ids
/// may be arbitrary (sparse) 64-bit values — the form web corpora actually
/// ship in (hashed URLs, crawl ids).
///
/// Where [`TextEdgeStream`] parses `u32` ids for already-dense lists, this
/// stream parses full `u64` ids and is meant to be wrapped in
/// [`crate::idmap::RemappedStream`], which compacts the ids onto the dense
/// internal space during its first pass. [`RawTextEdgeStream::open`]
/// validates every line up front (one buffered pre-pass) and records an
/// exact [`RawEdgeStream::len_hint`], so later pulls only fail if the file
/// is mutated underneath the stream — in which case the error is *parked*,
/// the stream ends early, and the next [`RawEdgeStream::reset`] reports it
/// (the same contract as [`TextEdgeStream`], so a restreaming consumer
/// cannot silently loop over a truncated stream). [`RawTextEdgeStream::error`]
/// exposes the parked error for single-pass consumers.
#[derive(Debug)]
pub struct RawTextEdgeStream {
    reader: BufReader<std::fs::File>,
    path: PathBuf,
    line: String,
    line_no: u64,
    done: bool,
    error: Option<GraphError>,
    num_edges: u64,
}

impl RawTextEdgeStream {
    /// Opens `path`, validating every line in one buffered pre-pass.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or on the first malformed line.
    pub fn open(path: &Path) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        let mut s = RawTextEdgeStream {
            reader: BufReader::new(file),
            path: path.to_path_buf(),
            line: String::new(),
            line_no: 0,
            done: false,
            error: None,
            num_edges: 0,
        };
        let mut edges = 0u64;
        while s.parse_next()?.is_some() {
            edges += 1;
        }
        s.num_edges = edges;
        RawEdgeStream::reset(&mut s)?;
        Ok(s)
    }

    /// The file this stream reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The error that ended the stream early, if any (also reported by the
    /// next [`RawEdgeStream::reset`]). Only possible if the file changed
    /// after the validating open.
    pub fn error(&self) -> Option<&GraphError> {
        self.error.as_ref()
    }

    fn parse_next(&mut self) -> Result<Option<RawEdge>> {
        if self.done {
            return Ok(None);
        }
        loop {
            self.line.clear();
            let n = self.reader.read_line(&mut self.line)?;
            if n == 0 {
                self.done = true;
                return Ok(None);
            }
            self.line_no += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
                continue;
            }
            let mut it = trimmed.split_whitespace();
            let src = parse_field_u64(it.next(), self.line_no)?;
            let dst = parse_field_u64(it.next(), self.line_no)?;
            return Ok(Some(RawEdge { src, dst }));
        }
    }
}

impl RawEdgeStream for RawTextEdgeStream {
    fn next_raw(&mut self) -> Option<RawEdge> {
        // The validating open proved every line parses; a failure here can
        // only be a racing file mutation. Park it so the next reset reports
        // it instead of letting a restreaming consumer silently loop over a
        // truncated stream.
        if self.error.is_some() {
            return None;
        }
        match self.parse_next() {
            Ok(e) => e,
            Err(err) => {
                self.done = true;
                self.error = Some(err);
                None
            }
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.num_edges)
    }

    /// Rewinds to the start of the file.
    ///
    /// # Errors
    ///
    /// Fails on seek errors, or reports (and clears) the error that ended
    /// the previous pass early.
    fn reset(&mut self) -> Result<()> {
        let parked = self.error.take();
        self.reader.seek(SeekFrom::Start(0))?;
        self.line_no = 0;
        self.done = false;
        match parked {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Writes edges as a text edge list with a provenance header comment.
pub fn write_edge_list(path: &Path, edges: &[Edge]) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# directed edge list, {} edges", edges.len())?;
    for e in edges {
        writeln!(w, "{} {}", e.src, e.dst)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_list() {
        let input = "# comment\n0 1\n\n% also comment\n2 3\n";
        let edges = parse_edge_list(input.as_bytes()).unwrap();
        assert_eq!(edges, vec![Edge::new(0, 1), Edge::new(2, 3)]);
    }

    #[test]
    fn tolerates_extra_whitespace() {
        let edges = parse_edge_list("  7\t 8 \n".as_bytes()).unwrap();
        assert_eq!(edges, vec![Edge::new(7, 8)]);
    }

    #[test]
    fn reports_line_of_bad_token() {
        let err = parse_edge_list("0 1\nx y\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn reports_missing_field() {
        let err = parse_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("clugp_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        let edges = vec![Edge::new(0, 1), Edge::new(5, 2), Edge::new(5, 2)];
        write_edge_list(&path, &edges).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(back, edges);
        std::fs::remove_file(&path).unwrap();
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("clugp_text_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn text_stream_matches_eager_reader() {
        let path = tmp("stream.txt");
        let edges: Vec<Edge> = (0..500u32).map(|i| Edge::new(i, (i * 3) % 500)).collect();
        write_edge_list(&path, &edges).unwrap();
        let mut s = TextEdgeStream::open(&path).unwrap();
        // The validating open records exact hints.
        assert_eq!(s.len_hint(), Some(500));
        assert_eq!(s.num_vertices_hint(), Some(500));
        let streamed = crate::stream::collect_stream(&mut s);
        assert_eq!(streamed, read_edge_list(&path).unwrap());
        assert!(s.error().is_none());
        // The lazy open streams the same edges, just without hints.
        let mut lazy = TextEdgeStream::open_lazy(&path).unwrap();
        assert_eq!(lazy.len_hint(), None);
        assert_eq!(crate::stream::collect_stream(&mut lazy), streamed);
    }

    #[test]
    fn text_stream_resets() {
        let path = tmp("reset.txt");
        write_edge_list(&path, &[Edge::new(0, 1), Edge::new(2, 3)]).unwrap();
        let mut s = TextEdgeStream::open(&path).unwrap();
        let first = crate::stream::collect_stream(&mut s);
        s.reset().unwrap();
        let second = crate::stream::collect_stream(&mut s);
        assert_eq!(first, second);
        assert_eq!(first.len(), 2);
    }

    #[test]
    fn text_stream_chunked_pulls_skip_comments() {
        let path = tmp("comments.txt");
        std::fs::write(&path, "# header\n0 1\n\n% note\n2 3\n4 5\n").unwrap();
        let mut s = TextEdgeStream::open(&path).unwrap();
        let mut buf = Vec::new();
        assert_eq!(s.next_chunk(&mut buf, 2), 2);
        assert_eq!(buf, vec![Edge::new(0, 1), Edge::new(2, 3)]);
        assert_eq!(s.next_chunk(&mut buf, 2), 1);
        assert_eq!(buf, vec![Edge::new(4, 5)]);
        assert_eq!(s.next_chunk(&mut buf, 2), 0);
    }

    #[test]
    fn validating_open_rejects_malformed_file() {
        let path = tmp("bad_open.txt");
        std::fs::write(&path, "0 1\nnot numbers\n2 3\n").unwrap();
        let err = TextEdgeStream::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn lazy_stream_parks_parse_error_and_reset_reports_it() {
        let path = tmp("bad.txt");
        std::fs::write(&path, "0 1\nnot numbers\n2 3\n").unwrap();
        let mut s = TextEdgeStream::open_lazy(&path).unwrap();
        assert_eq!(s.next_edge(), Some(Edge::new(0, 1)));
        assert_eq!(s.next_edge(), None);
        assert!(matches!(s.error(), Some(GraphError::Parse { line: 2, .. })));
        // The next reset surfaces the parked error (a restreaming consumer
        // cannot silently loop over the truncated stream)...
        let err = s.reset().unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        // ...after which the stream is rewound and replays the good prefix.
        assert!(s.error().is_none());
        assert_eq!(s.next_edge(), Some(Edge::new(0, 1)));
    }

    #[test]
    fn raw_text_stream_parses_sparse_u64_ids() {
        let path = tmp("raw_sparse.txt");
        std::fs::write(
            &path,
            format!(
                "# hashed-url ids\n18446744073709551615 9000000000\n9000000000 {}\n",
                1u64 << 40
            ),
        )
        .unwrap();
        let mut s = RawTextEdgeStream::open(&path).unwrap();
        assert_eq!(RawEdgeStream::len_hint(&s), Some(2));
        assert_eq!(s.next_raw(), Some(RawEdge::new(u64::MAX, 9_000_000_000)));
        assert_eq!(s.next_raw(), Some(RawEdge::new(9_000_000_000, 1 << 40)));
        assert_eq!(s.next_raw(), None);
        // Resets for multi-pass consumption.
        RawEdgeStream::reset(&mut s).unwrap();
        assert_eq!(s.next_raw(), Some(RawEdge::new(u64::MAX, 9_000_000_000)));
    }

    #[test]
    fn raw_text_stream_feeds_the_remap_layer() {
        use crate::idmap::RemappedStream;
        use crate::stream::collect_stream;
        let path = tmp("raw_remap.txt");
        std::fs::write(&path, "18446744073709551615 7\n7 42\n").unwrap();
        let raw = RawTextEdgeStream::open(&path).unwrap();
        let mut s = RemappedStream::remap(raw).unwrap();
        assert_eq!(
            collect_stream(&mut s),
            vec![Edge::new(0, 1), Edge::new(1, 2)]
        );
        assert_eq!(s.id_map().external_of(0), u64::MAX);
    }

    #[test]
    fn raw_text_stream_parks_error_on_mid_stream_mutation() {
        // A file mutated *underneath* an open stream (after the validating
        // pre-pass) must not be silently truncated: the parse error is
        // parked and the next reset reports it, so a restreaming consumer
        // cannot loop over a corrupted stream. The file must exceed the
        // BufReader buffer (8 KiB) for the mutation to be observable.
        let path = tmp("raw_mutated.txt");
        let good: String = (0..4000u64).map(|i| format!("{i} {}\n", i + 1)).collect();
        std::fs::write(&path, &good).unwrap();
        let mut s = RawTextEdgeStream::open(&path).unwrap();
        assert_eq!(s.next_raw(), Some(RawEdge::new(0, 1)));
        // Same-length garbage so reads keep succeeding but parsing fails.
        std::fs::write(&path, good.replace(' ', "x")).unwrap();
        while s.next_raw().is_some() {}
        assert!(s.error().is_some(), "mutation must park an error");
        assert!(
            RawEdgeStream::reset(&mut s).is_err(),
            "reset must report it"
        );
        // After reporting, the stream is usable again (over the new bytes).
        assert!(s.error().is_none());
    }

    #[test]
    fn raw_text_stream_rejects_malformed_lines_at_open() {
        let path = tmp("raw_bad.txt");
        std::fs::write(&path, "1 2\nnot numbers\n").unwrap();
        let err = RawTextEdgeStream::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn empty_input() {
        assert!(parse_edge_list("".as_bytes()).unwrap().is_empty());
        assert!(parse_edge_list("# only comments\n".as_bytes())
            .unwrap()
            .is_empty());
    }
}
