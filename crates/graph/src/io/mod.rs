//! Graph I/O: a human-readable text edge list and a compact binary format
//! with a file-backed resettable stream.
//!
//! The binary format is what the Figure 10(a) experiment streams from disk to
//! charge I/O cost honestly (CLUGP makes three passes, one-pass baselines
//! one).

pub mod binary;
pub mod edge_list;
pub mod metis;

pub use binary::{read_binary_graph, write_binary_graph, FileEdgeStream};
pub use edge_list::{read_edge_list, write_edge_list, RawTextEdgeStream, TextEdgeStream};
pub use metis::{read_metis, write_metis};
