//! Graph I/O: a human-readable text edge list, a compact binary format
//! with a file-backed resettable stream, and magic-based format detection
//! over every on-disk representation (including the block-compressed
//! [`crate::pack`] format).
//!
//! The binary format is what the Figure 10(a) experiment streams from disk to
//! charge I/O cost honestly (CLUGP makes three passes, one-pass baselines
//! one). [`sniff_format`]/[`open_edge_stream`] are the single entry point
//! CLIs and the bench dataset layer use, so a graph file works regardless of
//! its extension.

pub mod binary;
pub mod edge_list;
pub mod metis;

pub use binary::{read_binary_graph, write_binary_graph, FileEdgeStream};
pub use edge_list::{read_edge_list, write_edge_list, RawTextEdgeStream, TextEdgeStream};
pub use metis::{read_metis, write_metis};

use crate::error::Result;
use crate::stream::RestreamableStream;
use std::io::Read;
use std::path::Path;

/// On-disk graph representations this crate can open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFileFormat {
    /// Flat binary (`CLUGPGR1` magic, 8 B/edge).
    Binary,
    /// Block-compressed pack (`CLUGPZ01` magic; see [`crate::pack`]).
    Packed,
    /// Text edge list (no magic — the fallback).
    Text,
}

impl GraphFileFormat {
    /// Short name for logs and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            GraphFileFormat::Binary => "binary",
            GraphFileFormat::Packed => "packed",
            GraphFileFormat::Text => "text",
        }
    }
}

/// Detects a file's format from its magic bytes (never from its extension):
/// `CLUGPGR1` → [`GraphFileFormat::Binary`], `CLUGPZ01` →
/// [`GraphFileFormat::Packed`], anything else (including files shorter than
/// a magic) → [`GraphFileFormat::Text`].
pub fn sniff_format(path: &Path) -> Result<GraphFileFormat> {
    let mut f = std::fs::File::open(path)?;
    let mut magic = [0u8; 8];
    let mut filled = 0usize;
    while filled < magic.len() {
        match f.read(&mut magic[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(match &magic[..filled] {
        m if m == binary::MAGIC => GraphFileFormat::Binary,
        m if m == crate::pack::PACK_MAGIC => GraphFileFormat::Packed,
        _ => GraphFileFormat::Text,
    })
}

/// Opens any on-disk edge file as a resettable stream, sniffing the format
/// by magic: flat binary → [`FileEdgeStream`], pack →
/// [`crate::pack::PackedEdgeStream`] or [`crate::pack::PipelinedPackStream`]
/// per the process-wide [`crate::pack::decode_options`] (serial decode with
/// 0 threads, staged pipeline otherwise — so every `for_each_chunk` consumer
/// inherits pipelined decode without changing), everything else →
/// [`TextEdgeStream`] (validated eagerly). This is the auto-detecting entry
/// point of `clugp-part` and the bench dataset layer.
pub fn open_edge_stream(path: &Path) -> Result<Box<dyn RestreamableStream>> {
    Ok(match sniff_format(path)? {
        GraphFileFormat::Binary => Box::new(FileEdgeStream::open(path)?),
        GraphFileFormat::Packed => {
            let opts = crate::pack::decode_options();
            if opts.threads > 0 {
                Box::new(crate::pack::PipelinedPackStream::open(path, opts)?)
            } else {
                Box::new(crate::pack::PackedEdgeStream::open_with(
                    path,
                    opts.checksums,
                )?)
            }
        }
        GraphFileFormat::Text => Box::new(TextEdgeStream::open(path)?),
    })
}

/// Opens a text edge list of arbitrary sparse 64-bit ids as a remapped
/// dense stream (ids interned in first-appearance order) — the shared
/// sparse-input entry point of the `clugp-part` and `clugp-pack` CLIs.
/// Non-text inputs are rejected up front: the binary and pack formats
/// store dense `u32` ids by construction, so remapping them is a usage
/// error, not a fallback.
pub fn open_sparse_edge_stream(
    path: &Path,
) -> Result<crate::idmap::RemappedStream<RawTextEdgeStream>> {
    let fmt = sniff_format(path)?;
    if fmt != GraphFileFormat::Text {
        return Err(crate::error::GraphError::InvalidConfig(format!(
            "sparse-id input must be a text edge list of 64-bit ids, but {} is a {} file",
            path.display(),
            fmt.name()
        )));
    }
    crate::idmap::RemappedStream::remap(RawTextEdgeStream::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::collect_stream;
    use crate::types::Edge;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("clugp_sniff_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Vec<Edge> {
        vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 2)]
    }

    #[test]
    fn sniffs_all_three_formats_regardless_of_extension() {
        let bin = tmp("misleading.txt");
        write_binary_graph(&bin, 3, &sample()).unwrap();
        assert_eq!(sniff_format(&bin).unwrap(), GraphFileFormat::Binary);

        let packed = tmp("misleading.bin");
        crate::pack::write_pack(&packed, 3, &sample(), &crate::pack::PackOptions::default())
            .unwrap();
        assert_eq!(sniff_format(&packed).unwrap(), GraphFileFormat::Packed);

        let text = tmp("plain.clugpz");
        write_edge_list(&text, &sample()).unwrap();
        assert_eq!(sniff_format(&text).unwrap(), GraphFileFormat::Text);

        // Short files fall back to text instead of erroring.
        let short = tmp("short");
        std::fs::write(&short, b"0 1").unwrap();
        assert_eq!(sniff_format(&short).unwrap(), GraphFileFormat::Text);

        for p in [bin, packed, text, short] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn open_edge_stream_yields_same_edges_for_every_format() {
        let edges = sample(); // already in canonical (src, dst) order
        let bin = tmp("auto.bin");
        write_binary_graph(&bin, 3, &edges).unwrap();
        let packed = tmp("auto.clugpz");
        crate::pack::write_pack(&packed, 3, &edges, &crate::pack::PackOptions::default()).unwrap();
        let text = tmp("auto.txt");
        write_edge_list(&text, &edges).unwrap();
        for p in [&bin, &packed, &text] {
            let mut s = open_edge_stream(p).unwrap();
            assert_eq!(collect_stream(s.as_mut()), edges, "{}", p.display());
            s.reset().unwrap();
            assert_eq!(collect_stream(s.as_mut()).len(), edges.len());
        }
        for p in [bin, packed, text] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn open_edge_stream_honors_pipelined_decode_options() {
        use crate::pack::{set_decode_options, ChecksumPolicy, DecodeOptions};
        let edges = sample();
        let packed = tmp("auto_pipelined.clugpz");
        crate::pack::write_pack(&packed, 3, &edges, &crate::pack::PackOptions::default()).unwrap();
        set_decode_options(DecodeOptions {
            threads: 2,
            prefetch: 2,
            checksums: ChecksumPolicy::Full,
        });
        let mut s = open_edge_stream(&packed).unwrap();
        assert_eq!(collect_stream(s.as_mut()), edges);
        s.reset().unwrap();
        set_decode_options(DecodeOptions::default());
        std::fs::remove_file(packed).ok();
    }

    #[test]
    fn sparse_open_remaps_text_and_rejects_dense_formats() {
        use crate::stream::EdgeStream;
        let text = tmp("sparse_in.txt");
        std::fs::write(&text, "9000000000 7\n7 9000000000\n").unwrap();
        let s = open_sparse_edge_stream(&text).unwrap();
        assert_eq!(s.num_vertices_hint(), Some(2));

        let bin = tmp("sparse_in.bin");
        write_binary_graph(&bin, 2, &sample()).unwrap();
        let err = open_sparse_edge_stream(&bin).unwrap_err();
        assert!(err.to_string().contains("binary"), "{err}");
        for p in [text, bin] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn format_names() {
        assert_eq!(GraphFileFormat::Binary.name(), "binary");
        assert_eq!(GraphFileFormat::Packed.name(), "packed");
        assert_eq!(GraphFileFormat::Text.name(), "text");
    }
}
