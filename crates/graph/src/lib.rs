//! Graph substrate for the CLUGP reproduction.
//!
//! This crate provides everything the partitioners in the `clugp` crate and
//! the GAS engine in `clugp-engine` need from a graph layer:
//!
//! * [`types`] — compact vertex/edge primitives (`u32` vertex ids, 8-byte
//!   edges).
//! * [`csr`] — immutable compressed-sparse-row adjacency used by generators,
//!   analysis, and the execution engine.
//! * [`stream`] — the edge-streaming model of the paper (Definition 1):
//!   single-pass [`stream::EdgeStream`]s and resettable
//!   [`stream::RestreamableStream`]s for CLUGP's three-pass architecture,
//!   with a chunked-pull ABI ([`stream::EdgeStream::next_chunk`] /
//!   [`stream::for_each_chunk`]) so hot loops pay one virtual dispatch per
//!   block of edges, not one per edge (see DESIGN.md §2).
//! * [`idmap`] — the id-space layer: [`idmap::IdMap`] compacts sparse
//!   64-bit external ids (hashed URLs, crawl ids) onto the dense internal
//!   `u32` space, with a zero-cost identity mode for already-dense sources
//!   and a first-appearance remap mode for raw text/file streams
//!   ([`idmap::RemappedStream`]); both modes cap growth at a configurable
//!   `max_vertices` (see DESIGN.md §5).
//! * [`order`] — BFS crawl order (the paper's assumed web-graph stream
//!   order), random order, and vertex relabeling.
//! * [`gen`] — synthetic web/social graph generators substituting for the
//!   WebGraph corpora of Table III (see DESIGN.md §4).
//! * [`io`] — text edge-list and binary formats with file-backed streaming,
//!   plus magic-based format detection ([`io::sniff_format`] /
//!   [`io::open_edge_stream`]).
//! * [`pack`] — `CLUGPZ`, the block-compressed on-disk graph storage layer:
//!   varint + gap encoding in independently decodable checksummed blocks
//!   with a trailing index, a bounded-memory external-sort writer, a
//!   chunked [`pack::PackedEdgeStream`] reader, and
//!   [`pack::ShardedPackReader`] for parallel shard streaming (see
//!   DESIGN.md §6).
//! * [`analysis`] — degree distributions, power-law exponent estimation,
//!   connected components.
//! * [`sampling`] — nested edge samples (Figure 5's sampled UK graphs).
//!
//! # Example
//!
//! ```
//! use clugp_graph::gen::{CopyingModelConfig, generate_copying_model};
//! use clugp_graph::order::bfs_edge_order;
//!
//! let graph = generate_copying_model(&CopyingModelConfig {
//!     vertices: 1_000,
//!     mean_out_degree: 8.0,
//!     copy_probability: 0.6,
//!     seed: 42,
//!     ..Default::default()
//! });
//! let stream = bfs_edge_order(&graph);
//! assert_eq!(stream.len() as u64, graph.num_edges());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod csr;
pub mod error;
pub mod gen;
pub mod idmap;
pub mod io;
pub mod order;
pub mod pack;
pub mod sampling;
pub mod stream;
pub mod types;

pub use csr::CsrGraph;
pub use error::{GraphError, Result};
pub use idmap::{IdMap, RawEdgeStream, RawInMemoryStream, RemappedStream};
pub use pack::{PackedEdgeStream, ShardedPackReader};
pub use stream::{EdgeStream, InMemoryStream, RestreamableStream};
pub use types::{Edge, ExternalId, RawEdge, VertexId};
