//! Error type shared by graph construction, I/O, and streaming.

use std::fmt;

/// Errors raised by the graph substrate.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure (file streams, loaders, writers).
    Io(std::io::Error),
    /// A text edge-list line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: u64,
        /// Description of what went wrong.
        message: String,
    },
    /// A binary graph file is malformed (bad magic, corrupt index, ...).
    Format(String),
    /// A binary graph file's edge payload does not match what its header
    /// promises: the file was truncated (or has trailing junk). Reported
    /// with the exact byte accounting instead of a raw short-read I/O
    /// error, and checked at open so the mismatch never surfaces
    /// mid-stream.
    TruncatedPayload {
        /// Edge-payload bytes the header promises.
        expected_bytes: u64,
        /// Edge-payload bytes the file actually holds.
        actual_bytes: u64,
    },
    /// An operation received an edge or vertex outside the declared range.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices the structure was built for.
        num_vertices: u64,
    },
    /// A caller-supplied configuration is unusable (e.g. zero vertices).
    InvalidConfig(String),
    /// An id map ran out of internal id space: the stream contains more
    /// distinct external ids than the configured `max_vertices` cap (or an
    /// identity-mode id exceeded it). The guard that turns adversarial id
    /// explosions into clean errors instead of OOM.
    TooManyVertices {
        /// The external id whose interning hit the cap.
        external: u64,
        /// The configured cap on internal vertex ids.
        max_vertices: u64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Format(m) => write!(f, "malformed graph file: {m}"),
            GraphError::TruncatedPayload {
                expected_bytes,
                actual_bytes,
            } => write!(
                f,
                "binary edge payload size mismatch: header promises \
                 {expected_bytes} bytes, file holds {actual_bytes}"
            ),
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            GraphError::TooManyVertices {
                external,
                max_vertices,
            } => write!(
                f,
                "external id {external} cannot be interned: max_vertices cap is {max_vertices}"
            ),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenience alias used across the graph substrate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let io = GraphError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        let parse = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(parse.to_string().contains("line 7"));
        let fmt = GraphError::Format("short file".into());
        assert!(fmt.to_string().contains("short file"));
        let trunc = GraphError::TruncatedPayload {
            expected_bytes: 32,
            actual_bytes: 28,
        };
        assert!(trunc.to_string().contains("promises 32 bytes"));
        assert!(trunc.to_string().contains("holds 28"));
        let range = GraphError::VertexOutOfRange {
            vertex: 10,
            num_vertices: 5,
        };
        assert!(range.to_string().contains("10"));
        let cfg = GraphError::InvalidConfig("zero vertices".into());
        assert!(cfg.to_string().contains("zero vertices"));
        let cap = GraphError::TooManyVertices {
            external: u64::MAX,
            max_vertices: 100,
        };
        assert!(cap.to_string().contains("max_vertices cap is 100"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }
}
