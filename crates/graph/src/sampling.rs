//! Graph sampling for the Figure 5 experiment (replication factor vs sampled
//! graph size): the paper samples UK-2002 down to a series of graph sizes.
//!
//! We use nested uniform edge samples: the `i`-th sample is a prefix of a
//! fixed random permutation of the edges, so smaller samples are subsets of
//! larger ones — the same growth-curve methodology the paper plots.

use crate::csr::CsrGraph;
use crate::types::Edge;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Produces nested edge samples of `graph` with the given edge counts
/// (clamped to `|E|`). Vertex ids are compacted per sample so each sample is
/// a standalone graph.
///
/// Returned graphs are ordered as `sizes` is.
pub fn nested_edge_samples(graph: &CsrGraph, sizes: &[u64], seed: u64) -> Vec<CsrGraph> {
    let mut edges = graph.edge_vec();
    let mut rng = SmallRng::seed_from_u64(seed);
    edges.shuffle(&mut rng);
    sizes
        .iter()
        .map(|&s| {
            let take = (s as usize).min(edges.len());
            compact(&edges[..take])
        })
        .collect()
}

/// Re-labels the endpoints of `edges` with dense ids (first-appearance
/// order) and builds a CSR graph over exactly the touched vertices.
pub fn compact(edges: &[Edge]) -> CsrGraph {
    let mut remap = rustc_hash::FxHashMap::default();
    let mut next: u32 = 0;
    let mut out = Vec::with_capacity(edges.len());
    for e in edges {
        let s = *remap.entry(e.src).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        let d = *remap.entry(e.dst).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        out.push(Edge { src: s, dst: d });
    }
    CsrGraph::from_edges(u64::from(next), &out).expect("compaction stays in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> CsrGraph {
        let mut edges = Vec::new();
        for i in 0..20u32 {
            edges.push(Edge::new(i, (i + 1) % 20));
            edges.push(Edge::new(i, (i + 5) % 20));
        }
        CsrGraph::from_edges(20, &edges).unwrap()
    }

    #[test]
    fn sample_sizes_respected() {
        let g = grid();
        let samples = nested_edge_samples(&g, &[5, 10, 40], 3);
        assert_eq!(samples[0].num_edges(), 5);
        assert_eq!(samples[1].num_edges(), 10);
        assert_eq!(samples[2].num_edges(), 40);
    }

    #[test]
    fn oversized_request_clamps() {
        let g = grid();
        let samples = nested_edge_samples(&g, &[1_000], 3);
        assert_eq!(samples[0].num_edges(), g.num_edges());
    }

    #[test]
    fn samples_are_nested() {
        let g = grid();
        let samples = nested_edge_samples(&g, &[5, 10], 7);
        // Degree sums grow monotonically for nested samples.
        assert!(samples[0].num_edges() <= samples[1].num_edges());
    }

    #[test]
    fn compact_touches_only_used_vertices() {
        let edges = vec![Edge::new(100, 200), Edge::new(200, 300)];
        let g = compact(&edges);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn compact_preserves_multiplicity() {
        let edges = vec![Edge::new(7, 9), Edge::new(7, 9)];
        let g = compact(&edges);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 2);
    }

    #[test]
    fn compact_empty() {
        let g = compact(&[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn deterministic_sampling() {
        let g = grid();
        let a = nested_edge_samples(&g, &[10], 9);
        let b = nested_edge_samples(&g, &[10], 9);
        assert_eq!(a[0], b[0]);
    }
}
