//! Compact primitives shared across the workspace.
//!
//! Vertex ids are `u32` (the paper's corpora top out at 118M vertices) and an
//! [`Edge`] is exactly 8 bytes, so a 10M-edge stream fits in 80 MB and copies
//! by value everywhere (see the perf-book guidance on small oft-instantiated
//! types).

use serde::{Deserialize, Serialize};

/// Identifier of a vertex. Dense, 0-based.
///
/// This is the *internal* id space: every structure that keeps per-vertex
/// state indexes by `VertexId`, so ids must be contiguous (or close to it).
/// Sparse 64-bit ids from the wild ([`ExternalId`]) enter through
/// [`crate::idmap::IdMap`], which compacts them onto this space.
pub type VertexId = u32;

/// Identifier of a vertex in an *external* dataset: an arbitrary — possibly
/// sparse — 64-bit value (hashed URL, crawl id, database key). External ids
/// are never used as array indices; [`crate::idmap::IdMap`] translates them
/// to dense internal [`VertexId`]s.
pub type ExternalId = u64;

/// A directed edge over external 64-bit ids, as read from raw datasets
/// before id compaction (16 bytes; the internal [`Edge`] is 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RawEdge {
    /// Source vertex (external id).
    pub src: ExternalId,
    /// Destination vertex (external id).
    pub dst: ExternalId,
}

impl RawEdge {
    /// Creates a raw edge from `src` to `dst`.
    #[inline]
    pub fn new(src: ExternalId, dst: ExternalId) -> Self {
        RawEdge { src, dst }
    }
}

impl From<Edge> for RawEdge {
    #[inline]
    fn from(e: Edge) -> Self {
        RawEdge {
            src: u64::from(e.src),
            dst: u64::from(e.dst),
        }
    }
}

impl std::fmt::Display for RawEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({} -> {})", self.src, self.dst)
    }
}

/// A directed edge `src -> dst` of the streamed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
}

impl Edge {
    /// Creates an edge from `src` to `dst`.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }

    /// Returns `true` if both endpoints are the same vertex.
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.src == self.dst
    }

    /// Returns the edge with endpoints swapped.
    #[inline]
    pub fn reversed(&self) -> Edge {
        Edge {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Returns the endpoint pair in canonical (sorted) order; useful for
    /// treating the graph as undirected.
    #[inline]
    pub fn canonical(&self) -> (VertexId, VertexId) {
        if self.src <= self.dst {
            (self.src, self.dst)
        } else {
            (self.dst, self.src)
        }
    }
}

impl From<(VertexId, VertexId)> for Edge {
    #[inline]
    fn from((src, dst): (VertexId, VertexId)) -> Self {
        Edge { src, dst }
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({} -> {})", self.src, self.dst)
    }
}

/// Computes the number of vertices implied by an edge list: `max id + 1`,
/// or 0 for an empty list.
pub fn implied_num_vertices(edges: &[Edge]) -> u64 {
    edges
        .iter()
        .map(|e| u64::from(e.src.max(e.dst)) + 1)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_8_bytes() {
        assert_eq!(std::mem::size_of::<Edge>(), 8);
    }

    #[test]
    fn self_loop_detection() {
        assert!(Edge::new(3, 3).is_self_loop());
        assert!(!Edge::new(3, 4).is_self_loop());
    }

    #[test]
    fn reversed_swaps_endpoints() {
        assert_eq!(Edge::new(1, 2).reversed(), Edge::new(2, 1));
    }

    #[test]
    fn canonical_orders_endpoints() {
        assert_eq!(Edge::new(5, 2).canonical(), (2, 5));
        assert_eq!(Edge::new(2, 5).canonical(), (2, 5));
    }

    #[test]
    fn implied_vertices_of_empty_is_zero() {
        assert_eq!(implied_num_vertices(&[]), 0);
    }

    #[test]
    fn implied_vertices_uses_max_endpoint() {
        let edges = vec![Edge::new(0, 9), Edge::new(3, 2)];
        assert_eq!(implied_num_vertices(&edges), 10);
    }

    #[test]
    fn tuple_conversion() {
        let e: Edge = (1u32, 2u32).into();
        assert_eq!(e, Edge::new(1, 2));
    }

    #[test]
    fn raw_edge_is_16_bytes_and_converts() {
        assert_eq!(std::mem::size_of::<RawEdge>(), 16);
        let r: RawEdge = Edge::new(3, 4).into();
        assert_eq!(r, RawEdge::new(3, 4));
        assert_eq!(r.to_string(), "(3 -> 4)");
    }

    #[test]
    fn display_format() {
        assert_eq!(Edge::new(1, 2).to_string(), "(1 -> 2)");
    }
}
