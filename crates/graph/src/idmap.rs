//! The id-space layer: compacting arbitrary sparse 64-bit external ids onto
//! the dense internal [`VertexId`] space every partitioner indexes by.
//!
//! Web corpora ship vertex ids that are hashed URLs or crawl identifiers —
//! sparse values anywhere in `u64`. Per-vertex state in this workspace is
//! array-backed (`VertexTable`, `ReplicaTable`, the clustering tables), so a
//! single edge with id `2^40` would otherwise force a multi-terabyte dense
//! allocation. [`IdMap`] closes that gap with two modes:
//!
//! * **Identity** — for sources that are already dense (generators, the
//!   binary format): `intern` is a bounds check, no hashing, no extra
//!   memory. Zero cost on the paths that don't need remapping.
//! * **Remap** — for raw text/file streams: external ids are interned in
//!   *first-appearance order*, so the internal id sequence is exactly the
//!   dense relabeling of the stream. A multi-pass consumer sees the same
//!   internal ids on every pass, and any partitioner's output over the
//!   remapped stream is bit-identical to a run over the pre-relabeled dense
//!   graph (pinned by `tests/chunked_equivalence.rs` and the proptest
//!   round-trip suite).
//!
//! Both modes carry a configurable `max_vertices` cap: interning past it is
//! a clean [`GraphError::TooManyVertices`] instead of an OOM abort — the
//! first line of defense against adversarial id explosions (the second is
//! the `VertexTable` cap inside the partitioners).
//!
//! [`RemappedStream`] is the adapter that puts a map under any
//! [`RawEdgeStream`]: it builds the map in one eager pass (remap mode),
//! then yields internal [`Edge`]s through the standard chunked
//! [`EdgeStream`] ABI, with `len_hint`/`num_vertices_hint` flowing through —
//! `num_vertices_hint` becomes the *exact distinct-vertex count*, which is
//! tighter than the `max id + 1` convention of dense sources. Partition
//! output translates back through [`IdMap::external_of`].

use crate::error::{GraphError, Result};
use crate::stream::{chunk_edges, EdgeStream, RestreamableStream};
use crate::types::{Edge, ExternalId, RawEdge, VertexId};
use rustc_hash::FxHashMap;

/// Default cap on internal vertex ids: the full `u32` index space minus the
/// sentinel (`u32::MAX` marks "no cluster" / "not local" across the
/// workspace). Configure a smaller cap to budget per-vertex state.
pub const DEFAULT_MAX_VERTICES: u64 = u32::MAX as u64;

#[derive(Debug, Clone)]
enum Repr {
    Identity,
    Remap {
        /// Internal → external (push order = first appearance).
        external_of: Vec<ExternalId>,
        /// External → internal.
        internal_of: FxHashMap<ExternalId, VertexId>,
    },
}

/// A bijection between external 64-bit ids and dense internal [`VertexId`]s.
#[derive(Debug, Clone)]
pub struct IdMap {
    repr: Repr,
    max_vertices: u64,
}

impl IdMap {
    /// Identity map with the [`DEFAULT_MAX_VERTICES`] cap: external ids are
    /// already dense internal ids. `intern` is a bounds check.
    pub fn identity() -> Self {
        Self::identity_with_cap(DEFAULT_MAX_VERTICES)
    }

    /// Identity map accepting only ids `< max_vertices`.
    pub fn identity_with_cap(max_vertices: u64) -> Self {
        IdMap {
            repr: Repr::Identity,
            max_vertices: max_vertices.min(DEFAULT_MAX_VERTICES),
        }
    }

    /// Empty remap with the [`DEFAULT_MAX_VERTICES`] cap: ids are interned
    /// in first-appearance order.
    pub fn remap() -> Self {
        Self::remap_with_cap(DEFAULT_MAX_VERTICES)
    }

    /// Empty remap admitting at most `max_vertices` distinct external ids.
    pub fn remap_with_cap(max_vertices: u64) -> Self {
        IdMap {
            repr: Repr::Remap {
                external_of: Vec::new(),
                internal_of: FxHashMap::default(),
            },
            max_vertices: max_vertices.min(DEFAULT_MAX_VERTICES),
        }
    }

    /// `true` for the zero-cost identity mode.
    pub fn is_identity(&self) -> bool {
        matches!(self.repr, Repr::Identity)
    }

    /// The configured cap on internal ids.
    pub fn max_vertices(&self) -> u64 {
        self.max_vertices
    }

    /// Number of interned ids (0 for identity maps, which intern nothing).
    pub fn len(&self) -> u64 {
        match &self.repr {
            Repr::Identity => 0,
            Repr::Remap { external_of, .. } => external_of.len() as u64,
        }
    }

    /// `true` if no id has been interned (always `true` for identity maps).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Translates `ext` to its internal id, interning it if new.
    ///
    /// # Errors
    ///
    /// [`GraphError::TooManyVertices`] if the id (identity mode) or the
    /// distinct-id count (remap mode) would exceed the `max_vertices` cap.
    #[inline]
    pub fn intern(&mut self, ext: ExternalId) -> Result<VertexId> {
        let cap = self.max_vertices;
        match &mut self.repr {
            Repr::Identity => {
                if ext >= cap {
                    return Err(GraphError::TooManyVertices {
                        external: ext,
                        max_vertices: cap,
                    });
                }
                Ok(ext as VertexId)
            }
            Repr::Remap {
                external_of,
                internal_of,
            } => {
                if let Some(&i) = internal_of.get(&ext) {
                    return Ok(i);
                }
                let next = external_of.len() as u64;
                if next >= cap {
                    return Err(GraphError::TooManyVertices {
                        external: ext,
                        max_vertices: cap,
                    });
                }
                external_of.push(ext);
                internal_of.insert(ext, next as VertexId);
                Ok(next as VertexId)
            }
        }
    }

    /// Read-only lookup: the internal id of `ext`, if known (identity mode:
    /// any in-cap id resolves to itself).
    #[inline]
    pub fn resolve(&self, ext: ExternalId) -> Option<VertexId> {
        match &self.repr {
            Repr::Identity => {
                if ext < self.max_vertices {
                    Some(ext as VertexId)
                } else {
                    None
                }
            }
            Repr::Remap { internal_of, .. } => internal_of.get(&ext).copied(),
        }
    }

    /// Translates an internal id back to its external id.
    ///
    /// # Panics
    ///
    /// Panics in remap mode if `internal` was never handed out by this map.
    #[inline]
    pub fn external_of(&self, internal: VertexId) -> ExternalId {
        match &self.repr {
            Repr::Identity => u64::from(internal),
            Repr::Remap { external_of, .. } => external_of[internal as usize],
        }
    }

    /// Heap bytes held by the map (0 in identity mode — the zero-cost
    /// claim, honestly measured).
    pub fn memory_bytes(&self) -> usize {
        match &self.repr {
            Repr::Identity => 0,
            Repr::Remap {
                external_of,
                internal_of,
            } => {
                external_of.capacity() * std::mem::size_of::<ExternalId>()
                    + internal_of.capacity()
                        * (std::mem::size_of::<ExternalId>() + std::mem::size_of::<VertexId>())
            }
        }
    }
}

/// Scrambles a dense id into a sparse pseudo-random 64-bit external id via
/// the splitmix64 finalizer. The mix is *bijective* on `u64`, so distinct
/// dense ids always get distinct external ids — the generator behind the
/// `sparse-web` dataset (64-bit hashed ids standing in for hashed URLs).
#[inline]
pub fn scramble_id(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Maps a dense internal edge list to sparse external ids via
/// [`scramble_id`].
pub fn scramble_edges(edges: &[Edge]) -> Vec<RawEdge> {
    edges
        .iter()
        .map(|e| RawEdge::new(scramble_id(u64::from(e.src)), scramble_id(u64::from(e.dst))))
        .collect()
}

/// A single-pass stream of [`RawEdge`]s over external 64-bit ids — the raw
/// side of the id-space layer. Mirrors [`EdgeStream`]'s chunked ABI: only
/// [`next_raw`](RawEdgeStream::next_raw) and the hints are required.
pub trait RawEdgeStream {
    /// Returns the next raw edge, or `None` when exhausted.
    fn next_raw(&mut self) -> Option<RawEdge>;

    /// Pulls up to `cap` raw edges into `buf` (cleared first); `0` means
    /// exhaustion. The default loops [`next_raw`](RawEdgeStream::next_raw).
    fn next_raw_chunk(&mut self, buf: &mut Vec<RawEdge>, cap: usize) -> usize {
        let cap = cap.max(1);
        buf.clear();
        while buf.len() < cap {
            match self.next_raw() {
                Some(e) => buf.push(e),
                None => break,
            }
        }
        buf.len()
    }

    /// Total number of raw edges over a full pass, if known.
    fn len_hint(&self) -> Option<u64>;

    /// Rewinds to the first raw edge.
    fn reset(&mut self) -> Result<()>;
}

/// In-memory [`RawEdgeStream`] over an owned raw-edge vector.
#[derive(Debug, Clone)]
pub struct RawInMemoryStream {
    edges: Vec<RawEdge>,
    cursor: usize,
}

impl RawInMemoryStream {
    /// Creates a stream over `edges`.
    pub fn new(edges: Vec<RawEdge>) -> Self {
        RawInMemoryStream { edges, cursor: 0 }
    }

    /// Read-only view of the backing raw edges.
    pub fn edges(&self) -> &[RawEdge] {
        &self.edges
    }
}

impl RawEdgeStream for RawInMemoryStream {
    #[inline]
    fn next_raw(&mut self) -> Option<RawEdge> {
        let e = *self.edges.get(self.cursor)?;
        self.cursor += 1;
        Some(e)
    }

    fn next_raw_chunk(&mut self, buf: &mut Vec<RawEdge>, cap: usize) -> usize {
        buf.clear();
        let n = cap.max(1).min(self.edges.len() - self.cursor);
        buf.extend_from_slice(&self.edges[self.cursor..self.cursor + n]);
        self.cursor += n;
        n
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.edges.len() as u64)
    }

    fn reset(&mut self) -> Result<()> {
        self.cursor = 0;
        Ok(())
    }
}

/// Adapts a [`RawEdgeStream`] into a resettable internal [`EdgeStream`]
/// through an [`IdMap`].
///
/// * [`RemappedStream::remap`] builds the map **eagerly in one extra pass**
///   over the raw source (in stream order, so internal ids are the
///   first-appearance dense relabeling), then every subsequent pull is a
///   pure lookup that cannot fail. CLUGP's restreaming architecture pays
///   this pass once and reuses the map across all three passes.
/// * [`RemappedStream::identity`] skips the build pass entirely (zero cost)
///   and validates ids lazily: an out-of-cap id ends the stream early with
///   the error *parked*, and the next [`RestreamableStream::reset`] reports
///   it — the same failure contract as the lazily-opened text and binary
///   file streams, so a restreaming consumer cannot silently loop over a
///   truncated stream.
#[derive(Debug)]
pub struct RemappedStream<S> {
    inner: S,
    map: IdMap,
    raw: Vec<RawEdge>,
    error: Option<GraphError>,
}

impl<S: RawEdgeStream> RemappedStream<S> {
    /// Builds a remap-mode stream with the [`DEFAULT_MAX_VERTICES`] cap.
    ///
    /// # Errors
    ///
    /// Fails on raw-source errors or if the stream holds more than
    /// `max_vertices` distinct external ids.
    pub fn remap(inner: S) -> Result<Self> {
        Self::remap_with_cap(inner, DEFAULT_MAX_VERTICES)
    }

    /// Builds a remap-mode stream admitting at most `max_vertices` distinct
    /// external ids (see [`RemappedStream::remap`]).
    pub fn remap_with_cap(mut inner: S, max_vertices: u64) -> Result<Self> {
        inner.reset()?;
        let mut map = IdMap::remap_with_cap(max_vertices);
        let mut buf: Vec<RawEdge> = Vec::with_capacity(chunk_edges());
        loop {
            let n = inner.next_raw_chunk(&mut buf, chunk_edges());
            if n == 0 {
                break;
            }
            for e in &buf {
                map.intern(e.src)?;
                map.intern(e.dst)?;
            }
        }
        inner.reset()?;
        Ok(RemappedStream {
            inner,
            map,
            raw: Vec::new(),
            error: None,
        })
    }

    /// Wraps an already-dense raw source with a zero-cost identity map and
    /// the [`DEFAULT_MAX_VERTICES`] cap (see the type docs for the lazy
    /// failure contract).
    pub fn identity(inner: S) -> Self {
        Self::identity_with_cap(inner, DEFAULT_MAX_VERTICES)
    }

    /// Identity mode with an explicit cap.
    pub fn identity_with_cap(inner: S, max_vertices: u64) -> Self {
        RemappedStream {
            inner,
            map: IdMap::identity_with_cap(max_vertices),
            raw: Vec::new(),
            error: None,
        }
    }

    /// The id map (translate output back via [`IdMap::external_of`]).
    pub fn id_map(&self) -> &IdMap {
        &self.map
    }

    /// The error that ended the stream early, if any (also reported by the
    /// next [`RestreamableStream::reset`]).
    pub fn error(&self) -> Option<&GraphError> {
        self.error.as_ref()
    }

    /// Consumes the adapter, returning the raw source and the map.
    pub fn into_parts(self) -> (S, IdMap) {
        (self.inner, self.map)
    }

    /// Translates one raw edge; parks the error and ends the stream on
    /// failure. A remap-mode lookup can only fail if the raw source yields
    /// different edges across passes, which the parked `Format` error makes
    /// loud instead of silently mispartitioning.
    #[inline]
    fn translate(&mut self, e: RawEdge) -> Option<Edge> {
        if self.map.is_identity() {
            let src = match self.map.intern(e.src) {
                Ok(i) => i,
                Err(err) => {
                    self.error = Some(err);
                    return None;
                }
            };
            let dst = match self.map.intern(e.dst) {
                Ok(i) => i,
                Err(err) => {
                    self.error = Some(err);
                    return None;
                }
            };
            return Some(Edge::new(src, dst));
        }
        match (self.map.resolve(e.src), self.map.resolve(e.dst)) {
            (Some(src), Some(dst)) => Some(Edge::new(src, dst)),
            _ => {
                self.error = Some(GraphError::Format(format!(
                    "raw source yielded edge {e} with an id absent from the remap \
                     table built on the first pass (non-deterministic source?)"
                )));
                None
            }
        }
    }
}

impl<S: RawEdgeStream> EdgeStream for RemappedStream<S> {
    fn next_edge(&mut self) -> Option<Edge> {
        if self.error.is_some() {
            return None;
        }
        let e = self.inner.next_raw()?;
        self.translate(e)
    }

    fn next_chunk(&mut self, buf: &mut Vec<Edge>, cap: usize) -> usize {
        buf.clear();
        if self.error.is_some() {
            return 0;
        }
        let mut raw = std::mem::take(&mut self.raw);
        let n = self.inner.next_raw_chunk(&mut raw, cap.max(1));
        buf.reserve(n);
        for &r in raw.iter().take(n) {
            match self.translate(r) {
                Some(e) => buf.push(e),
                // Park-and-truncate: the translated prefix is still valid.
                None => break,
            }
        }
        self.raw = raw;
        buf.len()
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }

    /// Remap mode: the exact distinct-vertex count (the map is complete
    /// after the eager build). Identity mode: unknown — dense callers use
    /// explicit counts.
    fn num_vertices_hint(&self) -> Option<u64> {
        if self.map.is_identity() {
            None
        } else {
            Some(self.map.len())
        }
    }
}

impl<S: RawEdgeStream> RestreamableStream for RemappedStream<S> {
    /// Rewinds the raw source.
    ///
    /// # Errors
    ///
    /// Fails on raw-source reset errors, or reports (and clears) the
    /// translation error that ended the previous pass early.
    fn reset(&mut self) -> Result<()> {
        let parked = self.error.take();
        self.inner.reset()?;
        match parked {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::collect_stream;

    fn sparse_raw() -> Vec<RawEdge> {
        // First-appearance order: 1e18→0, 7→1, u64::MAX→2, 42→3.
        vec![
            RawEdge::new(1_000_000_000_000_000_000, 7),
            RawEdge::new(u64::MAX, 1_000_000_000_000_000_000),
            RawEdge::new(7, 42),
        ]
    }

    #[test]
    fn remap_interns_in_first_appearance_order() {
        let mut s = RemappedStream::remap(RawInMemoryStream::new(sparse_raw())).unwrap();
        let edges = collect_stream(&mut s);
        assert_eq!(
            edges,
            vec![Edge::new(0, 1), Edge::new(2, 0), Edge::new(1, 3)]
        );
        assert_eq!(s.num_vertices_hint(), Some(4));
        assert_eq!(s.len_hint(), Some(3));
    }

    #[test]
    fn remap_round_trips_external_ids() {
        let s = RemappedStream::remap(RawInMemoryStream::new(sparse_raw())).unwrap();
        let map = s.id_map();
        assert_eq!(map.len(), 4);
        for internal in 0..4u32 {
            let ext = map.external_of(internal);
            assert_eq!(map.resolve(ext), Some(internal));
        }
        assert_eq!(map.external_of(2), u64::MAX);
        assert!(map.memory_bytes() > 0);
    }

    #[test]
    fn remap_is_stable_across_passes() {
        let mut s = RemappedStream::remap(RawInMemoryStream::new(sparse_raw())).unwrap();
        let first = collect_stream(&mut s);
        s.reset().unwrap();
        let second = collect_stream(&mut s);
        assert_eq!(first, second);
    }

    #[test]
    fn remap_accepts_u64_max_but_caps_distinct_count() {
        // u64::MAX as an *id value* is fine in remap mode — that is the
        // point of the layer. Only the distinct count is capped.
        let mut map = IdMap::remap_with_cap(2);
        assert_eq!(map.intern(u64::MAX).unwrap(), 0);
        assert_eq!(map.intern(0).unwrap(), 1);
        assert_eq!(map.intern(u64::MAX).unwrap(), 0); // existing: no growth
        let err = map.intern(5).unwrap_err();
        assert!(matches!(
            err,
            GraphError::TooManyVertices {
                external: 5,
                max_vertices: 2
            }
        ));
    }

    #[test]
    fn remap_build_rejects_id_explosion() {
        let raw: Vec<RawEdge> = (0..10u64).map(|i| RawEdge::new(i * 1_000, i)).collect();
        let err = RemappedStream::remap_with_cap(RawInMemoryStream::new(raw), 5).unwrap_err();
        assert!(matches!(err, GraphError::TooManyVertices { .. }));
    }

    #[test]
    fn identity_rejects_u64_max_and_parks_the_error() {
        let raw = vec![RawEdge::new(0, 1), RawEdge::new(u64::MAX, 0)];
        let mut s = RemappedStream::identity(RawInMemoryStream::new(raw));
        assert_eq!(s.next_edge(), Some(Edge::new(0, 1)));
        assert_eq!(s.next_edge(), None);
        assert!(matches!(
            s.error(),
            Some(GraphError::TooManyVertices { .. })
        ));
        // The next reset surfaces the parked error...
        assert!(s.reset().is_err());
        // ...after which the stream replays the valid prefix.
        assert_eq!(s.next_edge(), Some(Edge::new(0, 1)));
    }

    #[test]
    fn identity_is_zero_cost_and_transparent() {
        let raw: Vec<RawEdge> = (0..100u64).map(|i| RawEdge::new(i, i + 1)).collect();
        let mut s = RemappedStream::identity(RawInMemoryStream::new(raw));
        assert_eq!(s.id_map().memory_bytes(), 0);
        let edges = collect_stream(&mut s);
        assert_eq!(edges.len(), 100);
        assert_eq!(edges[5], Edge::new(5, 6));
        assert_eq!(s.id_map().external_of(9), 9);
    }

    #[test]
    fn identity_cap_is_configurable() {
        let raw = vec![RawEdge::new(0, 500)];
        let mut s = RemappedStream::identity_with_cap(RawInMemoryStream::new(raw), 100);
        assert_eq!(s.next_edge(), None);
        assert!(s.error().is_some());
    }

    #[test]
    fn chunked_pulls_match_per_edge_pulls() {
        for cap in [1usize, 2, 4096] {
            let mut s = RemappedStream::remap(RawInMemoryStream::new(sparse_raw())).unwrap();
            let mut buf = Vec::new();
            let mut seen = Vec::new();
            while s.next_chunk(&mut buf, cap) != 0 {
                seen.extend_from_slice(&buf);
            }
            assert_eq!(
                seen,
                vec![Edge::new(0, 1), Edge::new(2, 0), Edge::new(1, 3)],
                "cap={cap}"
            );
        }
    }

    #[test]
    fn scramble_is_injective_on_a_range() {
        let mut seen: Vec<u64> = (0..10_000u64).map(scramble_id).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10_000);
        // And actually sparse: some ids must leave the u32 range.
        assert!((0..100u64)
            .map(scramble_id)
            .any(|x| x > u64::from(u32::MAX)));
    }

    #[test]
    fn scrambled_edges_remap_back_to_dense_relabeling_of_stream_order() {
        // Scramble a dense edge list, remap it, and check the internal
        // stream equals the first-appearance relabeling of the original.
        let dense = vec![Edge::new(3, 1), Edge::new(1, 0), Edge::new(3, 2)];
        let raw = scramble_edges(&dense);
        let mut s = RemappedStream::remap(RawInMemoryStream::new(raw)).unwrap();
        let remapped = collect_stream(&mut s);
        // First appearances: 3→0, 1→1, 0→2, 2→3.
        assert_eq!(
            remapped,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 3)]
        );
        // External ids round-trip to the scrambled values.
        assert_eq!(s.id_map().external_of(0), scramble_id(3));
    }

    #[test]
    fn empty_raw_stream() {
        let mut s = RemappedStream::remap(RawInMemoryStream::new(vec![])).unwrap();
        assert_eq!(s.next_edge(), None);
        assert_eq!(s.num_vertices_hint(), Some(0));
        let mut buf = Vec::new();
        assert_eq!(s.next_chunk(&mut buf, 16), 0);
    }

    #[test]
    fn default_raw_chunk_loops_next_raw() {
        struct Two(u8);
        impl RawEdgeStream for Two {
            fn next_raw(&mut self) -> Option<RawEdge> {
                if self.0 == 0 {
                    return None;
                }
                self.0 -= 1;
                Some(RawEdge::new(u64::from(self.0), 99))
            }
            fn len_hint(&self) -> Option<u64> {
                None
            }
            fn reset(&mut self) -> Result<()> {
                self.0 = 2;
                Ok(())
            }
        }
        let mut buf = Vec::new();
        assert_eq!(Two(2).next_raw_chunk(&mut buf, 10), 2);
        let mut s = RemappedStream::remap(Two(2)).unwrap();
        assert_eq!(collect_stream(&mut s).len(), 2);
    }
}
