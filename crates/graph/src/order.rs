//! Edge stream orders.
//!
//! The paper assumes web-graph streams arrive in BFS (crawl) order
//! (footnote 1, following Mint and Gemini), and gives each baseline its best
//! order: random for Hashing/DBH/Greedy/HDRF, BFS for Mint/CLUGP. This
//! module produces both orders from a materialized graph, plus the BFS vertex
//! relabeling a crawler would induce.

use crate::csr::CsrGraph;
use crate::types::{Edge, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::VecDeque;

/// The stream orders evaluated in the paper's experiments (plus DFS, used
/// by the stream-order sensitivity studies of Abbas et al., VLDB'18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum StreamOrder {
    /// Breadth-first crawl order: for each vertex in BFS discovery order,
    /// emit all of its out-edges. Unreached vertices are appended as new BFS
    /// roots in id order, so every edge is emitted exactly once.
    Bfs,
    /// Depth-first order: for each vertex in DFS pre-order, emit all of its
    /// out-edges (same root policy as BFS).
    Dfs,
    /// Uniformly random permutation of the edge multiset, seeded.
    Random(u64),
    /// CSR order (sorted by source id); the "as crawled" order of our
    /// generators, which already label vertices in crawl order.
    AsIs,
}

/// Emits the edge stream of `graph` in the requested order.
pub fn ordered_edges(graph: &CsrGraph, order: StreamOrder) -> Vec<Edge> {
    match order {
        StreamOrder::Bfs => bfs_edge_order(graph),
        StreamOrder::Dfs => dfs_edge_order(graph),
        StreamOrder::Random(seed) => random_edge_order(graph, seed),
        StreamOrder::AsIs => graph.edge_vec(),
    }
}

/// DFS pre-order edge stream: vertices are visited depth-first (iterative,
/// explicit stack); a vertex's whole out-burst is emitted at first visit.
pub fn dfs_edge_order(graph: &CsrGraph) -> Vec<Edge> {
    let n = graph.num_vertices() as usize;
    let mut visited = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut stream = Vec::with_capacity(graph.num_edges() as usize);
    for root in 0..n as u32 {
        if visited[root as usize] {
            continue;
        }
        stack.push(root);
        while let Some(u) = stack.pop() {
            if visited[u as usize] {
                continue;
            }
            visited[u as usize] = true;
            for &v in graph.out_neighbors(u) {
                stream.push(Edge { src: u, dst: v });
            }
            // Push in reverse so the first neighbor is explored first.
            for &v in graph.out_neighbors(u).iter().rev() {
                if !visited[v as usize] {
                    stack.push(v);
                }
            }
        }
    }
    stream
}

/// BFS crawl order over the whole graph (Definition 1's assumed order).
///
/// Starts from vertex 0; when a BFS tree is exhausted, the smallest-id
/// undiscovered vertex seeds the next tree, so disconnected graphs still
/// stream every edge.
pub fn bfs_edge_order(graph: &CsrGraph) -> Vec<Edge> {
    let n = graph.num_vertices() as usize;
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    let mut stream = Vec::with_capacity(graph.num_edges() as usize);
    for root in 0..n as u32 {
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in graph.out_neighbors(u) {
                stream.push(Edge { src: u, dst: v });
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    stream
}

/// Uniformly random edge order with a fixed seed.
pub fn random_edge_order(graph: &CsrGraph, seed: u64) -> Vec<Edge> {
    let mut edges = graph.edge_vec();
    let mut rng = SmallRng::seed_from_u64(seed);
    edges.shuffle(&mut rng);
    edges
}

/// BFS discovery ranks: `rank[v]` is the position of `v` in BFS discovery
/// order (roots chosen as in [`bfs_edge_order`]).
pub fn bfs_ranks(graph: &CsrGraph) -> Vec<VertexId> {
    let n = graph.num_vertices() as usize;
    let mut rank = vec![VertexId::MAX; n];
    let mut next_rank: VertexId = 0;
    let mut queue = VecDeque::new();
    for root in 0..n as u32 {
        if rank[root as usize] != VertexId::MAX {
            continue;
        }
        rank[root as usize] = next_rank;
        next_rank += 1;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in graph.out_neighbors(u) {
                if rank[v as usize] == VertexId::MAX {
                    rank[v as usize] = next_rank;
                    next_rank += 1;
                    queue.push_back(v);
                }
            }
        }
    }
    rank
}

/// Relabels all vertices by BFS discovery rank, producing the graph a web
/// crawler would have recorded. After relabeling, [`StreamOrder::AsIs`] on
/// the result approximates a crawl stream.
pub fn relabel_by_bfs(graph: &CsrGraph) -> CsrGraph {
    let rank = bfs_ranks(graph);
    let edges: Vec<Edge> = graph
        .edges()
        .map(|e| Edge {
            src: rank[e.src as usize],
            dst: rank[e.dst as usize],
        })
        .collect();
    CsrGraph::from_edges(graph.num_vertices(), &edges)
        .expect("relabeling is a bijection on the same vertex range")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with_branch() -> CsrGraph {
        // 0 -> 1 -> 2, 0 -> 3, plus island 4 -> 5
        CsrGraph::from_edges(
            6,
            &[
                Edge::new(0, 1),
                Edge::new(0, 3),
                Edge::new(1, 2),
                Edge::new(4, 5),
            ],
        )
        .unwrap()
    }

    fn sorted(mut v: Vec<Edge>) -> Vec<Edge> {
        v.sort();
        v
    }

    #[test]
    fn bfs_order_is_a_permutation_of_edges() {
        let g = chain_with_branch();
        let bfs = bfs_edge_order(&g);
        assert_eq!(sorted(bfs), sorted(g.edge_vec()));
    }

    #[test]
    fn bfs_order_emits_source_before_descendants() {
        let g = chain_with_branch();
        let bfs = bfs_edge_order(&g);
        // All of vertex 0's edges precede vertex 1's edges.
        let pos_01 = bfs.iter().position(|e| *e == Edge::new(0, 1)).unwrap();
        let pos_12 = bfs.iter().position(|e| *e == Edge::new(1, 2)).unwrap();
        assert!(pos_01 < pos_12);
    }

    #[test]
    fn bfs_covers_disconnected_components() {
        let g = chain_with_branch();
        let bfs = bfs_edge_order(&g);
        assert!(bfs.contains(&Edge::new(4, 5)));
    }

    #[test]
    fn random_order_is_permutation_and_seed_deterministic() {
        let g = chain_with_branch();
        let a = random_edge_order(&g, 7);
        let b = random_edge_order(&g, 7);
        let c = random_edge_order(&g, 8);
        assert_eq!(a, b);
        assert_eq!(sorted(a.clone()), sorted(g.edge_vec()));
        assert_eq!(sorted(c.clone()), sorted(g.edge_vec()));
    }

    #[test]
    fn ordered_edges_dispatches() {
        let g = chain_with_branch();
        assert_eq!(ordered_edges(&g, StreamOrder::AsIs), g.edge_vec());
        assert_eq!(
            sorted(ordered_edges(&g, StreamOrder::Bfs)),
            sorted(g.edge_vec())
        );
        assert_eq!(
            sorted(ordered_edges(&g, StreamOrder::Random(3))),
            sorted(g.edge_vec())
        );
    }

    #[test]
    fn bfs_ranks_are_a_bijection() {
        let g = chain_with_branch();
        let ranks = bfs_ranks(&g);
        let mut seen = vec![false; ranks.len()];
        for &r in &ranks {
            assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
        // Root keeps rank 0.
        assert_eq!(ranks[0], 0);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = chain_with_branch();
        let r = relabel_by_bfs(&g);
        assert_eq!(r.num_vertices(), g.num_vertices());
        assert_eq!(r.num_edges(), g.num_edges());
        // Degree multiset is preserved under relabeling.
        let mut dg: Vec<u64> = (0..g.num_vertices() as u32)
            .map(|v| g.out_degree(v))
            .collect();
        let mut dr: Vec<u64> = (0..r.num_vertices() as u32)
            .map(|v| r.out_degree(v))
            .collect();
        dg.sort_unstable();
        dr.sort_unstable();
        assert_eq!(dg, dr);
    }

    #[test]
    fn empty_graph_orders() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        assert!(bfs_edge_order(&g).is_empty());
        assert!(dfs_edge_order(&g).is_empty());
        assert!(random_edge_order(&g, 1).is_empty());
        assert!(bfs_ranks(&g).is_empty());
    }

    #[test]
    fn dfs_order_is_a_permutation_of_edges() {
        let g = chain_with_branch();
        assert_eq!(sorted(dfs_edge_order(&g)), sorted(g.edge_vec()));
        assert_eq!(
            sorted(ordered_edges(&g, StreamOrder::Dfs)),
            sorted(g.edge_vec())
        );
    }

    #[test]
    fn dfs_explores_depth_first() {
        // 0 -> {1, 3}, 1 -> 2: DFS emits 1's burst before returning to 3's
        // subtree, so e(1,2) precedes any edge out of 3.
        let g = CsrGraph::from_edges(
            5,
            &[
                Edge::new(0, 1),
                Edge::new(0, 3),
                Edge::new(1, 2),
                Edge::new(3, 4),
            ],
        )
        .unwrap();
        let dfs = dfs_edge_order(&g);
        let pos_12 = dfs.iter().position(|e| *e == Edge::new(1, 2)).unwrap();
        let pos_34 = dfs.iter().position(|e| *e == Edge::new(3, 4)).unwrap();
        assert!(
            pos_12 < pos_34,
            "DFS should finish 1's subtree first: {dfs:?}"
        );
    }

    #[test]
    fn dfs_covers_disconnected_components() {
        let g = chain_with_branch();
        assert!(dfs_edge_order(&g).contains(&Edge::new(4, 5)));
    }
}
