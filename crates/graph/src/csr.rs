//! Immutable compressed-sparse-row (CSR) adjacency.
//!
//! [`CsrGraph`] stores the out-adjacency of a directed graph in two flat
//! arrays (offsets + targets), the standard layout for cache-friendly
//! sequential scans. It is the substrate for the generators, BFS ordering,
//! analysis, and the GAS engine's per-machine subgraphs.

use crate::error::{GraphError, Result};
use crate::types::{implied_num_vertices, Edge, VertexId};

/// A directed graph in CSR (out-adjacency) form.
///
/// Construction sorts edges by source, so `out_neighbors(v)` is a contiguous
/// slice. Duplicate edges and self-loops are preserved (the streaming model
/// partitions every streamed edge, duplicates included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    offsets: Vec<u64>,
    /// Concatenated out-neighbor lists.
    targets: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list with an explicit vertex count.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any endpoint is `>=
    /// num_vertices`.
    pub fn from_edges(num_vertices: u64, edges: &[Edge]) -> Result<Self> {
        if num_vertices > u64::from(u32::MAX) + 1 {
            return Err(GraphError::InvalidConfig(format!(
                "num_vertices {num_vertices} exceeds u32 id space"
            )));
        }
        // Checked sizing: on 32-bit-usize targets a u32-ranged count can
        // still overflow the address space; fail cleanly instead of
        // truncating the allocation.
        let n = usize::try_from(num_vertices)
            .ok()
            .filter(|n| n.checked_add(1).is_some())
            .ok_or_else(|| {
                GraphError::InvalidConfig(format!(
                    "num_vertices {num_vertices} exceeds addressable memory on this target"
                ))
            })?;
        for e in edges {
            let max = u64::from(e.src.max(e.dst));
            if max >= num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: max,
                    num_vertices,
                });
            }
        }
        // Counting sort by source: one pass to count, one to place.
        let mut offsets = vec![0u64; n + 1];
        for e in edges {
            offsets[e.src as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; edges.len()];
        for e in edges {
            let pos = cursor[e.src as usize];
            targets[pos as usize] = e.dst;
            cursor[e.src as usize] += 1;
        }
        Ok(CsrGraph { offsets, targets })
    }

    /// Builds a CSR graph, inferring the vertex count from the maximum
    /// endpoint id.
    pub fn from_edges_auto(edges: &[Edge]) -> Self {
        let n = implied_num_vertices(edges);
        // Cannot fail: every endpoint is < n by construction.
        Self::from_edges(n, edges).expect("implied vertex count covers all endpoints")
    }

    /// Number of vertices (including isolated ones if constructed with an
    /// explicit count).
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbors of `v` as a contiguous slice.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Iterates all edges in CSR order (sorted by source).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices() as u32).flat_map(move |v| {
            self.out_neighbors(v)
                .iter()
                .map(move |&d| Edge { src: v, dst: d })
        })
    }

    /// Collects all edges into a vector (CSR order).
    pub fn edge_vec(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.targets.len());
        out.extend(self.edges());
        out
    }

    /// In-degree array, computed in one pass.
    pub fn in_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.num_vertices() as usize];
        for &t in &self.targets {
            deg[t as usize] += 1;
        }
        deg
    }

    /// Total degree (in + out) array, the degree notion used by the
    /// partitioning heuristics on directed streams.
    pub fn total_degrees(&self) -> Vec<u64> {
        let mut deg = self.in_degrees();
        for (v, d) in deg.iter_mut().enumerate() {
            *d += self.offsets[v + 1] - self.offsets[v];
        }
        deg
    }

    /// Returns the transposed graph (all edges reversed).
    pub fn transpose(&self) -> CsrGraph {
        let edges: Vec<Edge> = self.edges().map(|e| e.reversed()).collect();
        CsrGraph::from_edges(self.num_vertices(), &edges).expect("transpose preserves vertex range")
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_out_degree(&self) -> u64 {
        (0..self.num_vertices() as u32)
            .map(|v| self.out_degree(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Vec<Edge> {
        vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(1, 3),
            Edge::new(2, 3),
        ]
    }

    #[test]
    fn builds_and_counts() {
        let g = CsrGraph::from_edges(4, &diamond()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn neighbors_are_grouped_by_source() {
        let g = CsrGraph::from_edges(4, &diamond()).unwrap();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(1), &[3]);
        assert_eq!(g.out_neighbors(3), &[] as &[u32]);
    }

    #[test]
    fn edges_iterator_matches_input_multiset() {
        let mut input = diamond();
        let g = CsrGraph::from_edges(4, &input).unwrap();
        let mut output = g.edge_vec();
        input.sort();
        output.sort();
        assert_eq!(input, output);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = CsrGraph::from_edges(2, &[Edge::new(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn auto_vertex_count() {
        let g = CsrGraph::from_edges_auto(&[Edge::new(0, 7)]);
        assert_eq!(g.num_vertices(), 8);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edge_vec(), vec![]);
        assert_eq!(g.max_out_degree(), 0);
    }

    #[test]
    fn preserves_duplicates_and_self_loops() {
        let edges = vec![Edge::new(1, 1), Edge::new(0, 1), Edge::new(0, 1)];
        let g = CsrGraph::from_edges(2, &edges).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
        assert_eq!(g.out_neighbors(1), &[1]);
    }

    #[test]
    fn in_degrees_and_total_degrees() {
        let g = CsrGraph::from_edges(4, &diamond()).unwrap();
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
        assert_eq!(g.total_degrees(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn transpose_reverses_all_edges() {
        let g = CsrGraph::from_edges(4, &diamond()).unwrap();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        assert_eq!(t.out_neighbors(3), &[1, 2]);
        assert_eq!(t.out_degree(0), 0);
    }

    #[test]
    fn max_out_degree_found() {
        let g = CsrGraph::from_edges(4, &diamond()).unwrap();
        assert_eq!(g.max_out_degree(), 2);
    }
}
