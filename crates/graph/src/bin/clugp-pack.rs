//! `clugp-pack` — build, inspect, and verify `CLUGPZ` compressed graph
//! packs (see `clugp_graph::pack` and DESIGN.md §6).
//!
//! ```text
//! clugp-pack pack <in> <out.clugpz> [options]
//!
//! <in>              text edge list, flat binary (CLUGPGR1), or an existing
//!                   pack — detected by magic, never by extension
//! --block-bytes N   target payload bytes per block (default 65536)
//! --spill-edges N   in-memory sort buffer before a run spills (default 4Mi)
//! --sparse          input is a text edge list of arbitrary 64-bit ids;
//!                   they are remapped onto the dense internal space in
//!                   first-appearance order before packing (the pack stores
//!                   the dense relabeling)
//! --checksums <p>   full (default) | header | off — CRC verification when
//!                   the *input* is itself a pack
//! --trace-out <f>   write a single-lane Chrome trace-event JSON of the
//!                   pack run (encode span, spill counter); loads in
//!                   Perfetto or chrome://tracing
//!
//! clugp-pack info <file.clugpz> [--checksums p]
//!                   header + block statistics, bytes/edge; echoes the
//!                   read policy (off lets a pack with damaged metadata
//!                   CRCs still be inspected)
//! clugp-pack verify <file.clugpz>
//!                   full decode of every block: checksums, canonical
//!                   order, counts, id ranges — reports *every* failing
//!                   block with its index and byte offset, not just the
//!                   first
//! ```
//!
//! Exit codes: 0 success, 1 runtime error (including verify failures),
//! 2 usage error.

use clugp_graph::io::{open_edge_stream, open_sparse_edge_stream, sniff_format};
use clugp_graph::pack::{
    pack_edge_stream, read_pack_summary_with, set_decode_options, verify_pack_report,
    ChecksumPolicy, DecodeOptions, PackOptions, PackStats,
};
use clugp_graph::stream::RestreamableStream;
use clugp_obs as obs;
use std::path::Path;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct PackArgs {
    input: String,
    output: String,
    block_bytes: usize,
    spill_edges: usize,
    sparse: bool,
    checksums: ChecksumPolicy,
    trace_out: Option<String>,
}

fn parse_pack_args(args: &[String]) -> Result<PackArgs, String> {
    let mut out = PackArgs {
        input: String::new(),
        output: String::new(),
        block_bytes: clugp_graph::pack::DEFAULT_BLOCK_BYTES,
        spill_edges: clugp_graph::pack::DEFAULT_SPILL_EDGES,
        sparse: false,
        checksums: ChecksumPolicy::Full,
        trace_out: None,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match a.as_str() {
            "--block-bytes" => {
                out.block_bytes = value("--block-bytes")?
                    .parse()
                    .map_err(|e| format!("--block-bytes: {e}"))?;
                if out.block_bytes == 0 {
                    return Err("--block-bytes must be >= 1".into());
                }
            }
            "--spill-edges" => {
                out.spill_edges = value("--spill-edges")?
                    .parse()
                    .map_err(|e| format!("--spill-edges: {e}"))?;
                if out.spill_edges == 0 {
                    return Err("--spill-edges must be >= 1".into());
                }
            }
            "--sparse" => out.sparse = true,
            "--checksums" => {
                out.checksums = value("--checksums")?
                    .parse()
                    .map_err(|e| format!("--checksums: {e}"))?;
            }
            "--trace-out" => out.trace_out = Some(value("--trace-out")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            _ => positional.push(a.clone()),
        }
    }
    match positional.as_slice() {
        [input, output] => {
            out.input = input.clone();
            out.output = output.clone();
        }
        _ => return Err("pack expects exactly <in> and <out> paths".into()),
    }
    Ok(out)
}

fn report_stats(stats: &PackStats, sparse_distinct: Option<u64>) {
    println!("vertices       = {}", stats.num_vertices);
    if let Some(d) = sparse_distinct {
        println!("distinct ids   = {d} (remapped, first-appearance order)");
    }
    println!("edges          = {}", stats.num_edges);
    println!("blocks         = {}", stats.num_blocks);
    println!("payload bytes  = {}", stats.payload_bytes);
    println!("file bytes     = {}", stats.file_bytes);
    println!(
        "bytes per edge = {:.3} (flat binary: 8.000)",
        stats.bytes_per_edge()
    );
    println!("spill runs     = {}", stats.spill_runs);
}

fn run_pack(args: &PackArgs) -> Result<(), String> {
    let input = Path::new(&args.input);
    let output = Path::new(&args.output);
    let opts = PackOptions {
        block_bytes: args.block_bytes,
        spill_edges: args.spill_edges,
    };
    if args.trace_out.is_some() {
        obs::set_enabled(true);
    }
    let t_encode = obs::now_us();
    if args.sparse {
        let mut stream = open_sparse_edge_stream(input).map_err(|e| format!("--sparse: {e}"))?;
        let distinct = stream.id_map().len();
        let stats = pack_edge_stream(&mut stream, output, &opts).map_err(|e| e.to_string())?;
        surface_stream_errors(&mut stream, output)?;
        trace_pack(&stats, t_encode);
        report_stats(&stats, Some(distinct));
    } else {
        let fmt = sniff_format(input).map_err(|e| e.to_string())?;
        eprintln!("input format: {}", fmt.name());
        // Applies when the input is itself a pack: how much CRC checking
        // its decode performs (the *output* is always fully checksummed).
        set_decode_options(DecodeOptions {
            checksums: args.checksums,
            ..DecodeOptions::default()
        });
        let mut stream = open_edge_stream(input).map_err(|e| e.to_string())?;
        let stats = pack_edge_stream(stream.as_mut(), output, &opts).map_err(|e| e.to_string())?;
        surface_stream_errors(stream.as_mut(), output)?;
        trace_pack(&stats, t_encode);
        report_stats(&stats, None);
    }
    if let Some(path) = &args.trace_out {
        write_trace(path)?;
        obs::set_enabled(false);
    }
    Ok(())
}

/// Records the pack run's spans into the process-wide sink (no-op unless
/// `--trace-out` enabled recording).
fn trace_pack(stats: &PackStats, t_encode: u64) {
    obs::record_span("pack:encode", t_encode, stats.num_edges);
    obs::record_instant("spill_runs", stats.spill_runs as u64);
}

/// Drains the sink and writes a single-lane Chrome trace-event JSON.
fn write_trace(path: &str) -> Result<(), String> {
    let (events, dropped) = obs::take_events();
    let rec = obs::TraceRecord {
        events: events
            .into_iter()
            .map(|e| (obs::LANE_COORDINATOR, e))
            .collect(),
        dropped,
    };
    let json = obs::export::chrome_trace(&rec, 0, None);
    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("trace written to {path} (load in Perfetto or chrome://tracing)");
    Ok(())
}

/// File-backed sources end early with their error *parked* (the crate-wide
/// stream contract, reported by the next `reset`) — without this check a
/// damaged input would silently pack to a truncated but valid-looking
/// output. On a parked error the partial output is removed.
fn surface_stream_errors(stream: &mut dyn RestreamableStream, output: &Path) -> Result<(), String> {
    stream.reset().map_err(|e| {
        std::fs::remove_file(output).ok();
        format!("input ended early, output discarded: {e}")
    })
}

fn run_info(path: &str, policy: ChecksumPolicy) -> Result<(), String> {
    let sum = read_pack_summary_with(Path::new(path), policy).map_err(|e| e.to_string())?;
    println!("format         = CLUGPZ v1");
    println!(
        "checksums      = {} ({})",
        policy.name(),
        match policy {
            ChecksumPolicy::Full => "metadata CRCs verified at open, payload CRCs on decode",
            ChecksumPolicy::HeaderAndIndex => {
                "metadata CRCs verified at open, payload CRCs skipped"
            }
            ChecksumPolicy::Off => "CRCs not compared; structure only",
        }
    );
    println!("vertices       = {}", sum.header.num_vertices);
    println!("edges          = {}", sum.header.num_edges);
    println!("blocks         = {}", sum.num_blocks);
    println!("block target   = {} bytes", sum.header.block_target);
    println!(
        "block bytes    = min {} / max {}",
        sum.min_block_bytes, sum.max_block_bytes
    );
    println!("edges per blk  = {:.1} mean", sum.mean_block_edges);
    println!("payload bytes  = {}", sum.payload_bytes);
    println!("file bytes     = {}", sum.file_bytes);
    println!(
        "bytes per edge = {:.3} (flat binary: 8.000)",
        sum.bytes_per_edge()
    );
    Ok(())
}

fn run_verify(path: &str) -> Result<(), String> {
    let report = verify_pack_report(Path::new(path)).map_err(|e| e.to_string())?;
    if report.is_ok() {
        println!(
            "OK: {} edges in {} blocks, all checksums and invariants verified",
            report.decoded_edges, report.num_blocks
        );
        return Ok(());
    }
    // Every damaged block, not just the first: index + byte offset locate
    // each one for surgical re-packing or forensics.
    for f in &report.failures {
        println!(
            "FAIL block {} at byte offset {}: {}",
            f.block, f.byte_offset, f.error
        );
    }
    for g in &report.global_errors {
        println!("FAIL pack-wide: {g}");
    }
    Err(format!(
        "{} of {} blocks failed verification ({} pack-wide violations); \
         {} of {} edges decoded from the blocks that passed",
        report.failures.len(),
        report.num_blocks,
        report.global_errors.len(),
        report.decoded_edges,
        report.num_edges
    ))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: clugp-pack pack <in> <out.clugpz> [--block-bytes N] [--spill-edges N] [--sparse] \
         [--checksums full|header|off] [--trace-out file]\n\
         \x20      clugp-pack info <file.clugpz> [--checksums full|header|off]\n\
         \x20      clugp-pack verify <file.clugpz>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return usage();
    }
    let result = match args[0].as_str() {
        "pack" => match parse_pack_args(&args[1..]) {
            Ok(p) => run_pack(&p),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        "info" if args.len() == 2 => run_info(&args[1], ChecksumPolicy::Full),
        "info" if args.len() == 4 && args[2] == "--checksums" => match args[3].parse() {
            Ok(policy) => run_info(&args[1], policy),
            Err(e) => {
                eprintln!("error: --checksums: {e}");
                return ExitCode::from(2);
            }
        },
        "verify" if args.len() == 2 => run_verify(&args[1]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clugp_graph::pack::{write_pack, PackOptions};
    use clugp_graph::stream::EdgeStream;
    use clugp_graph::types::Edge;
    use std::path::PathBuf;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("clugp_pack_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn parses_pack_args() {
        let p = parse_pack_args(&strs(&[
            "in.txt",
            "out.clugpz",
            "--block-bytes",
            "1024",
            "--spill-edges",
            "100",
            "--sparse",
        ]))
        .unwrap();
        assert_eq!(p.input, "in.txt");
        assert_eq!(p.output, "out.clugpz");
        assert_eq!(p.block_bytes, 1024);
        assert_eq!(p.spill_edges, 100);
        assert!(p.sparse);
    }

    #[test]
    fn pack_args_parse_checksums_policy() {
        let p = parse_pack_args(&strs(&["a", "b"])).unwrap();
        assert_eq!(p.checksums, ChecksumPolicy::Full);
        let p = parse_pack_args(&strs(&["a", "b", "--checksums", "off"])).unwrap();
        assert_eq!(p.checksums, ChecksumPolicy::Off);
        let p = parse_pack_args(&strs(&["a", "b", "--checksums", "HEADER"])).unwrap();
        assert_eq!(p.checksums, ChecksumPolicy::HeaderAndIndex);
        assert!(parse_pack_args(&strs(&["a", "b", "--checksums", "some"])).is_err());
    }

    #[test]
    fn verify_names_every_damaged_block() {
        let edges: Vec<Edge> = (0..4_000u32).map(|i| Edge::new(i / 7, i % 97)).collect();
        let path = tmp("verify_multi_damage.clugpz");
        write_pack(
            &path,
            0,
            &edges,
            &PackOptions {
                block_bytes: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let sum = clugp_graph::pack::read_pack_summary(&path).unwrap();
        assert!(sum.num_blocks >= 3, "need a multi-block pack");
        // Flip one payload byte in the first block and one in the last.
        let mut data = std::fs::read(&path).unwrap();
        data[36 + 10] ^= 0xFF;
        data[36 + sum.payload_bytes as usize - 10] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let err = run_verify(&path.to_string_lossy()).unwrap_err();
        assert!(
            err.starts_with(&format!("2 of {} blocks failed", sum.num_blocks)),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn info_off_policy_reads_a_pack_with_damaged_header_crc() {
        let path = tmp("info_damaged_header.clugpz");
        write_pack(
            &path,
            3,
            &[Edge::new(0, 1), Edge::new(1, 2)],
            &PackOptions::default(),
        )
        .unwrap();
        // Flip a byte of the stored header CRC (bytes 32..36): the full
        // policy refuses the file, the off policy still inspects it.
        let mut data = std::fs::read(&path).unwrap();
        data[33] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let err = run_info(&path.to_string_lossy(), ChecksumPolicy::Full).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        run_info(&path.to_string_lossy(), ChecksumPolicy::Off).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_pack_args() {
        assert!(parse_pack_args(&strs(&["only-one"])).is_err());
        assert!(parse_pack_args(&strs(&["a", "b", "c"])).is_err());
        assert!(parse_pack_args(&strs(&["a", "b", "--block-bytes", "0"])).is_err());
        assert!(parse_pack_args(&strs(&["a", "b", "--spill-edges", "0"])).is_err());
        assert!(parse_pack_args(&strs(&["a", "b", "--bogus"])).is_err());
    }

    #[test]
    fn pack_info_verify_round_trip_from_text() {
        let input = tmp("in.txt");
        let output = tmp("out.clugpz");
        std::fs::write(&input, "0 1\n1 2\n2 0\n0 2\n").unwrap();
        let args = PackArgs {
            input: input.to_string_lossy().into_owned(),
            output: output.to_string_lossy().into_owned(),
            block_bytes: 64,
            spill_edges: 2, // force the spill path
            sparse: false,
            checksums: ChecksumPolicy::Full,
            trace_out: None,
        };
        run_pack(&args).unwrap();
        for policy in [
            ChecksumPolicy::Full,
            ChecksumPolicy::HeaderAndIndex,
            ChecksumPolicy::Off,
        ] {
            run_info(&output.to_string_lossy(), policy).unwrap();
        }
        run_verify(&output.to_string_lossy()).unwrap();
        let mut s = clugp_graph::pack::PackedEdgeStream::open(&output).unwrap();
        let edges = clugp_graph::stream::collect_stream(&mut s);
        assert_eq!(
            edges,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(1, 2),
                Edge::new(2, 0)
            ]
        );
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn sparse_pack_remaps_dense() {
        let input = tmp("sparse.txt");
        let output = tmp("sparse.clugpz");
        std::fs::write(
            &input,
            "18446744073709551615 9000000000\n9000000000 1099511627776\n",
        )
        .unwrap();
        let args = PackArgs {
            input: input.to_string_lossy().into_owned(),
            output: output.to_string_lossy().into_owned(),
            block_bytes: clugp_graph::pack::DEFAULT_BLOCK_BYTES,
            spill_edges: clugp_graph::pack::DEFAULT_SPILL_EDGES,
            sparse: true,
            checksums: ChecksumPolicy::Full,
            trace_out: None,
        };
        run_pack(&args).unwrap();
        let mut s = clugp_graph::pack::PackedEdgeStream::open(&output).unwrap();
        assert_eq!(s.num_vertices_hint(), Some(3), "3 distinct ids remapped");
        let edges = clugp_graph::stream::collect_stream(&mut s);
        // First-appearance relabeling (0→1, 1→2), canonically sorted.
        assert_eq!(edges, vec![Edge::new(0, 1), Edge::new(1, 2)]);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn sparse_rejects_non_text_input() {
        let input = tmp("dense.clugpz");
        write_pack(&input, 2, &[Edge::new(0, 1)], &PackOptions::default()).unwrap();
        let args = PackArgs {
            input: input.to_string_lossy().into_owned(),
            output: tmp("never.clugpz").to_string_lossy().into_owned(),
            block_bytes: 64,
            spill_edges: 64,
            sparse: true,
            checksums: ChecksumPolicy::Full,
            trace_out: None,
        };
        let err = run_pack(&args).unwrap_err();
        assert!(err.contains("--sparse"), "{err}");
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn packing_a_damaged_input_fails_and_discards_the_output() {
        // Regression: a source that ends early with a *parked* error (the
        // crate-wide file-stream contract) must fail the pack run, not
        // silently write a truncated but valid-looking output.
        let edges: Vec<Edge> = (0..4_000u32).map(|i| Edge::new(i / 7, i % 97)).collect();
        let input = tmp("damaged_in.clugpz");
        write_pack(
            &input,
            0,
            &edges,
            &PackOptions {
                block_bytes: 512,
                ..Default::default()
            },
        )
        .unwrap();
        // Flip a payload byte past the first block: header/index stay
        // valid, so the stream opens fine and dies mid-drain.
        let mut data = std::fs::read(&input).unwrap();
        data[36 + 700] ^= 0xFF;
        std::fs::write(&input, &data).unwrap();
        let output = tmp("damaged_out.clugpz");
        let err = run_pack(&PackArgs {
            input: input.to_string_lossy().into_owned(),
            output: output.to_string_lossy().into_owned(),
            block_bytes: 512,
            spill_edges: 64,
            sparse: false,
            checksums: ChecksumPolicy::Full,
            trace_out: None,
        })
        .unwrap_err();
        assert!(err.contains("ended early"), "{err}");
        assert!(!output.exists(), "partial output must be discarded");
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn pack_trace_out_writes_valid_chrome_trace() {
        let input = tmp("trace_in.txt");
        let output = tmp("trace_out.clugpz");
        let trace = tmp("trace.json");
        std::fs::write(&input, "0 1\n1 2\n2 0\n0 2\n").unwrap();
        run_pack(&PackArgs {
            input: input.to_string_lossy().into_owned(),
            output: output.to_string_lossy().into_owned(),
            block_bytes: 64,
            spill_edges: 2,
            sparse: false,
            checksums: ChecksumPolicy::Full,
            trace_out: Some(trace.to_string_lossy().into_owned()),
        })
        .unwrap();
        let json = std::fs::read_to_string(&trace).unwrap();
        obs::json::validate(&json).unwrap_or_else(|e| panic!("trace not valid JSON: {e}"));
        assert!(json.contains("\"pack:encode\""), "encode span missing");
        assert!(json.contains("\"spill_runs\""), "spill counter missing");
        for p in [input, output, trace] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn repack_from_binary_and_existing_pack() {
        let edges = vec![Edge::new(2, 1), Edge::new(0, 1), Edge::new(0, 0)];
        let bin = tmp("re.bin");
        clugp_graph::io::write_binary_graph(&bin, 3, &edges).unwrap();
        let out1 = tmp("re1.clugpz");
        run_pack(&PackArgs {
            input: bin.to_string_lossy().into_owned(),
            output: out1.to_string_lossy().into_owned(),
            block_bytes: 64,
            spill_edges: 64,
            sparse: false,
            checksums: ChecksumPolicy::Full,
            trace_out: None,
        })
        .unwrap();
        // Packing an existing pack is idempotent on content.
        let out2 = tmp("re2.clugpz");
        run_pack(&PackArgs {
            input: out1.to_string_lossy().into_owned(),
            output: out2.to_string_lossy().into_owned(),
            block_bytes: 64,
            spill_edges: 64,
            sparse: false,
            checksums: ChecksumPolicy::Full,
            trace_out: None,
        })
        .unwrap();
        let mut a = clugp_graph::pack::PackedEdgeStream::open(&out1).unwrap();
        let mut b = clugp_graph::pack::PackedEdgeStream::open(&out2).unwrap();
        assert_eq!(
            clugp_graph::stream::collect_stream(&mut a),
            clugp_graph::stream::collect_stream(&mut b)
        );
        for p in [bin, out1, out2] {
            std::fs::remove_file(p).ok();
        }
    }
}
