//! Synthetic graph generators.
//!
//! The paper evaluates on WebGraph corpora (UK-2002, Arabic-2005,
//! WebBase-2001, IT-2004) and the Twitter social graph — multi-billion-edge
//! datasets we cannot ship. DESIGN.md §4 documents the substitution: the
//! site-structured crawl generator ([`generate_web_crawl`]) and the Kumar
//! copying model ([`generate_copying_model`]) stand in for the web corpora,
//! and Barabási–Albert preferential attachment ([`generate_ba`]) stands in
//! for Twitter. Chung-Lu ([`generate_chung_lu`]), R-MAT ([`generate_rmat`]),
//! and Erdős–Rényi ([`generate_er`]) widen test/bench coverage.
//!
//! All generators are deterministic for a fixed seed and label vertices in
//! creation (crawl) order, so `StreamOrder::AsIs` approximates the crawl
//! stream and `StreamOrder::Bfs` re-derives a strict BFS order.

mod ba;
mod chung_lu;
mod copying;
mod degree;
mod er;
mod rmat;
mod web_crawl;

pub use ba::{generate_ba, BaConfig};
pub use chung_lu::{generate_chung_lu, ChungLuConfig};
pub use copying::{generate_copying_model, CopyingModelConfig};
pub use degree::{CalibratedPowerLaw, PowerLawDegrees};
pub use er::{generate_er, ErConfig};
pub use rmat::{generate_rmat, RmatConfig};
pub use web_crawl::{generate_web_crawl, site_boundaries, WebCrawlConfig};
