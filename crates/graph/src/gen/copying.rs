//! Kumar et al. copying model — the web-graph substitute (DESIGN.md §4).
//!
//! Vertices arrive one at a time (crawl order). Each new page picks a random
//! *prototype* among existing pages and emits a power-law number of
//! out-links; each link is, with probability `copy_probability`, copied from
//! the prototype's out-links, and otherwise points to a page chosen by
//! preferential attachment on in-degree. Copying is what produces both the
//! power-law in-degrees and the dense link-locality (communities) that web
//! crawls exhibit — the two properties CLUGP's clustering step exploits.

use super::degree::CalibratedPowerLaw;
use crate::csr::CsrGraph;
use crate::types::{Edge, VertexId};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration of the copying-model generator.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CopyingModelConfig {
    /// Number of pages (vertices) to create.
    pub vertices: u64,
    /// Target mean out-degree; per-vertex out-degrees are power-law with this
    /// mean (so `|E| ≈ vertices * mean_out_degree`).
    pub mean_out_degree: f64,
    /// Probability that a link is copied from the prototype instead of drawn
    /// by preferential attachment. Higher values yield stronger locality.
    pub copy_probability: f64,
    /// Power-law exponent for out-degrees.
    pub out_degree_alpha: f64,
    /// Maximum out-degree of a single page.
    pub max_out_degree: u64,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
}

impl Default for CopyingModelConfig {
    fn default() -> Self {
        CopyingModelConfig {
            vertices: 10_000,
            mean_out_degree: 12.0,
            copy_probability: 0.6,
            out_degree_alpha: 2.1,
            max_out_degree: 1 << 14,
            seed: 0xC1_06_9F,
        }
    }
}

/// Generates a copying-model web graph.
///
/// Vertex ids are creation (crawl) order, so streaming the result `AsIs`
/// resembles a crawl; `StreamOrder::Bfs` gives the strict BFS order the
/// paper assumes.
///
/// # Panics
///
/// Panics if `vertices == 0` or probabilities are outside `[0, 1]`.
pub fn generate_copying_model(cfg: &CopyingModelConfig) -> CsrGraph {
    assert!(cfg.vertices > 0, "copying model needs at least one vertex");
    assert!(
        (0.0..=1.0).contains(&cfg.copy_probability),
        "copy_probability must be a probability"
    );
    let n = cfg.vertices as usize;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let sampler = CalibratedPowerLaw::new(
        cfg.out_degree_alpha,
        cfg.mean_out_degree,
        cfg.max_out_degree.max(2),
    );

    let mut edges: Vec<Edge> =
        Vec::with_capacity((cfg.vertices as f64 * cfg.mean_out_degree) as usize);
    // Preferential attachment pool: vertex ids repeated once per in-link,
    // plus one base entry per vertex so new pages are reachable targets.
    let mut pa_pool: Vec<VertexId> = Vec::with_capacity(edges.capacity() + n);
    // Out-adjacency built incrementally; prototypes copy from it.
    let mut out_adj: Vec<Vec<VertexId>> = Vec::with_capacity(n);

    // Seed page.
    out_adj.push(Vec::new());
    pa_pool.push(0);

    for v in 1..cfg.vertices as u32 {
        let prototype = rng.gen_range(0..v);
        let d = sampler.sample(&mut rng).min(u64::from(v)) as usize;
        let mut links: Vec<VertexId> = Vec::with_capacity(d);
        let proto_links = out_adj[prototype as usize].clone();
        for i in 0..d {
            let copied = !proto_links.is_empty() && rng.gen_bool(cfg.copy_probability);
            let target = if copied {
                proto_links[rng.gen_range(0..proto_links.len())]
            } else if rng.gen_bool(0.15) {
                // Occasional uniform link keeps the graph connected-ish and
                // mimics navigational cross-site links.
                rng.gen_range(0..v)
            } else {
                pa_pool[rng.gen_range(0..pa_pool.len())]
            };
            // The prototype itself is a natural link target for the first
            // copied link (a page links to the page it was derived from).
            let target = if i == 0 && rng.gen_bool(0.3) {
                prototype
            } else {
                target
            };
            if target != v {
                links.push(target);
            }
        }
        for &t in &links {
            edges.push(Edge { src: v, dst: t });
            pa_pool.push(t);
        }
        pa_pool.push(v);
        out_adj.push(links);
    }

    CsrGraph::from_edges(cfg.vertices, &edges).expect("generator stays in vertex range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    fn small_cfg() -> CopyingModelConfig {
        CopyingModelConfig {
            vertices: 3_000,
            mean_out_degree: 8.0,
            copy_probability: 0.6,
            out_degree_alpha: 2.1,
            max_out_degree: 512,
            seed: 11,
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate_copying_model(&small_cfg());
        let b = generate_copying_model(&small_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small_cfg();
        let a = generate_copying_model(&cfg);
        cfg.seed = 12;
        let b = generate_copying_model(&cfg);
        assert_ne!(a.edge_vec(), b.edge_vec());
    }

    #[test]
    fn edge_count_tracks_mean_degree() {
        let cfg = small_cfg();
        let g = generate_copying_model(&cfg);
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            (mean - cfg.mean_out_degree).abs() < cfg.mean_out_degree * 0.5,
            "mean degree {mean} too far from target {}",
            cfg.mean_out_degree
        );
    }

    #[test]
    fn no_self_loops() {
        let g = generate_copying_model(&small_cfg());
        assert!(g.edges().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn in_degree_distribution_is_heavy_tailed() {
        let g = generate_copying_model(&CopyingModelConfig {
            vertices: 20_000,
            ..small_cfg()
        });
        let in_deg = g.in_degrees();
        let max_in = *in_deg.iter().max().unwrap();
        let mean_in = in_deg.iter().sum::<u64>() as f64 / in_deg.len() as f64;
        // Power-law in-degree: the hub is orders of magnitude above the mean.
        assert!(
            max_in as f64 > 20.0 * mean_in,
            "max in-degree {max_in} vs mean {mean_in}"
        );
    }

    #[test]
    fn estimated_alpha_is_plausible() {
        let g = generate_copying_model(&CopyingModelConfig {
            vertices: 20_000,
            ..small_cfg()
        });
        let alpha = analysis::estimate_power_law_alpha(&analysis::total_degree_histogram(&g));
        assert!(
            (1.3..3.5).contains(&alpha),
            "estimated alpha {alpha} outside plausible power-law band"
        );
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn rejects_zero_vertices() {
        let _ = generate_copying_model(&CopyingModelConfig {
            vertices: 0,
            ..Default::default()
        });
    }

    #[test]
    fn single_vertex_graph_is_empty() {
        let g = generate_copying_model(&CopyingModelConfig {
            vertices: 1,
            ..small_cfg()
        });
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn calibrated_sampler_mean_close_to_target() {
        let cal = super::CalibratedPowerLaw::new(2.1, 12.0, 1 << 14);
        assert!((cal.mean() - 12.0).abs() < 0.6);
    }
}
