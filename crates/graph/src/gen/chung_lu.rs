//! Chung-Lu random graphs with a prescribed expected power-law degree
//! sequence. Used in tests and benches as a locality-free power-law control:
//! same degree law as the copying model but no community structure.

use super::degree::PowerLawDegrees;
use crate::csr::CsrGraph;
use crate::types::Edge;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration for the Chung-Lu generator.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ChungLuConfig {
    /// Number of vertices.
    pub vertices: u64,
    /// Power-law exponent of the target degree sequence.
    pub alpha: f64,
    /// Minimum expected degree.
    pub min_degree: u64,
    /// Maximum expected degree.
    pub max_degree: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChungLuConfig {
    fn default() -> Self {
        ChungLuConfig {
            vertices: 10_000,
            alpha: 2.1,
            min_degree: 2,
            max_degree: 1 << 12,
            seed: 0xC1,
        }
    }
}

/// Generates a Chung-Lu graph: draws a power-law weight per vertex, then
/// creates `Σw_i / 2` edges whose endpoints are sampled proportionally to
/// weight (the "edge-skeleton" formulation, O(|E|)).
///
/// # Panics
///
/// Panics if `vertices == 0`.
pub fn generate_chung_lu(cfg: &ChungLuConfig) -> CsrGraph {
    assert!(cfg.vertices > 0, "Chung-Lu needs at least one vertex");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let sampler = PowerLawDegrees::new(cfg.alpha, cfg.min_degree.max(1), cfg.max_degree.max(1));
    let weights: Vec<u64> = (0..cfg.vertices)
        .map(|_| sampler.sample(&mut rng))
        .collect();

    // Ticket pool: vertex v appears weight[v] times; sampling two tickets
    // uniformly yields endpoint probabilities proportional to weights.
    let total: u64 = weights.iter().sum();
    let mut pool = Vec::with_capacity(total as usize);
    for (v, &w) in weights.iter().enumerate() {
        for _ in 0..w {
            pool.push(v as u32);
        }
    }
    let num_edges = (total / 2) as usize;
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        if a != b {
            edges.push(Edge { src: a, dst: b });
        }
    }
    CsrGraph::from_edges(cfg.vertices, &edges).expect("generator stays in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = ChungLuConfig {
            vertices: 1_000,
            ..Default::default()
        };
        assert_eq!(generate_chung_lu(&cfg), generate_chung_lu(&cfg));
    }

    #[test]
    fn edge_count_is_half_total_weight_ish() {
        let cfg = ChungLuConfig {
            vertices: 5_000,
            ..Default::default()
        };
        let g = generate_chung_lu(&cfg);
        assert!(g.num_edges() > 0);
        // Mean degree should be near the power-law mean (> min_degree).
        let mean = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(mean >= cfg.min_degree as f64 * 0.8);
    }

    #[test]
    fn no_self_loops() {
        let g = generate_chung_lu(&ChungLuConfig {
            vertices: 2_000,
            ..Default::default()
        });
        assert!(g.edges().all(|e| !e.is_self_loop()));
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn rejects_empty() {
        let _ = generate_chung_lu(&ChungLuConfig {
            vertices: 0,
            ..Default::default()
        });
    }
}
