//! Power-law degree sampling.
//!
//! Web graphs have degree distributions `f(x) ∝ x^{-α}` (paper §II-C). This
//! module samples from a bounded discrete power law by inverting the
//! continuous Pareto CDF and rounding — the standard fast approximation for
//! generator workloads.

use rand::Rng;

/// Sampler for a bounded discrete power-law distribution
/// `P(X = x) ∝ x^{-alpha}` over `x ∈ [min_degree, max_degree]`.
#[derive(Debug, Clone)]
pub struct PowerLawDegrees {
    alpha: f64,
    min_degree: u64,
    max_degree: u64,
}

impl PowerLawDegrees {
    /// Creates a sampler. `alpha` must be > 1 for the tail to be
    /// normalizable; web graphs typically have `alpha ∈ [1.7, 2.5]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 1.0` or `min_degree == 0` or
    /// `min_degree > max_degree`.
    pub fn new(alpha: f64, min_degree: u64, max_degree: u64) -> Self {
        assert!(alpha > 1.0, "power-law exponent must exceed 1");
        assert!(min_degree >= 1, "minimum degree must be at least 1");
        assert!(min_degree <= max_degree, "min_degree must be <= max_degree");
        PowerLawDegrees {
            alpha,
            min_degree,
            max_degree,
        }
    }

    /// Draws one degree.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Inverse-CDF sampling of a truncated Pareto, rounded down.
        // CDF^{-1}(u) = [xmin^{1-α} - u (xmin^{1-α} - xmax^{1-α})]^{1/(1-α)}
        let a = 1.0 - self.alpha;
        let lo = (self.min_degree as f64).powf(a);
        let hi = ((self.max_degree as f64) + 1.0).powf(a);
        let u: f64 = rng.gen();
        let x = (lo - u * (lo - hi)).powf(1.0 / a);
        (x.floor() as u64).clamp(self.min_degree, self.max_degree)
    }

    /// The configured exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The configured support bounds `(min, max)`.
    pub fn bounds(&self) -> (u64, u64) {
        (self.min_degree, self.max_degree)
    }

    /// Mean of the distribution [`Self::sample`] actually draws from: the
    /// floored truncated Pareto, `P(X = x) ∝ x^{1−α} − (x+1)^{1−α}` over
    /// `[min, max]` (exact summation, capped support).
    pub fn mean(&self) -> f64 {
        let a = 1.0 - self.alpha;
        let cap = self.max_degree.min(self.min_degree + 1_000_000);
        let lo = (self.min_degree as f64).powf(a);
        let hi = ((self.max_degree as f64) + 1.0).powf(a);
        let norm = lo - hi;
        if norm <= 0.0 {
            return self.min_degree as f64;
        }
        let mut ex = 0.0;
        for x in self.min_degree..=cap {
            let p = ((x as f64).powf(a) - ((x + 1) as f64).powf(a)) / norm;
            ex += x as f64 * p;
        }
        ex
    }
}

/// A power-law sampler calibrated to a fractional target mean by mixing two
/// adjacent minimum degrees (integer minimums alone quantize the achievable
/// means too coarsely for the Table III `|E|/|V|` ratios).
#[derive(Debug, Clone)]
pub struct CalibratedPowerLaw {
    low: PowerLawDegrees,
    high: PowerLawDegrees,
    p_low: f64,
}

impl CalibratedPowerLaw {
    /// Builds a sampler with expected value ≈ `target_mean` and exponent
    /// `alpha` over `[?, max_degree]`.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid inputs as [`PowerLawDegrees::new`].
    pub fn new(alpha: f64, target_mean: f64, max_degree: u64) -> Self {
        let max = max_degree.max(2);
        // Find the bracket mean(m) ≤ target < mean(m+1).
        let mut m = 1u64;
        loop {
            let next = PowerLawDegrees::new(alpha, (m + 1).min(max), max).mean();
            if next > target_mean || m + 1 >= max {
                break;
            }
            m += 1;
        }
        let low = PowerLawDegrees::new(alpha, m, max);
        let high = PowerLawDegrees::new(alpha, (m + 1).min(max), max);
        let (ml, mh) = (low.mean(), high.mean());
        let p_low = if mh <= ml {
            1.0
        } else {
            ((mh - target_mean) / (mh - ml)).clamp(0.0, 1.0)
        };
        CalibratedPowerLaw { low, high, p_low }
    }

    /// Draws one degree.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if rng.gen_bool(self.p_low) {
            self.low.sample(rng)
        } else {
            self.high.sample(rng)
        }
    }

    /// Expected value of the mixture.
    pub fn mean(&self) -> f64 {
        self.p_low * self.low.mean() + (1.0 - self.p_low) * self.high.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_bounds() {
        let d = PowerLawDegrees::new(2.1, 1, 100);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1..=100).contains(&x));
        }
    }

    #[test]
    fn low_degrees_dominate() {
        let d = PowerLawDegrees::new(2.1, 1, 1000);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 50_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1).count();
        // For α=2.1 over [1,1000], P(X=1) ≈ 1 - 2^{-1.1} ≈ 0.53.
        assert!(ones as f64 > 0.4 * n as f64, "got {ones} ones out of {n}");
    }

    #[test]
    fn tail_is_populated() {
        let d = PowerLawDegrees::new(1.8, 1, 10_000);
        let mut rng = SmallRng::seed_from_u64(3);
        let big = (0..200_000).filter(|_| d.sample(&mut rng) > 100).count();
        assert!(big > 0, "heavy tail should produce some large degrees");
    }

    #[test]
    fn degenerate_support_is_constant() {
        let d = PowerLawDegrees::new(2.0, 5, 5);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 5);
        }
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_alpha_at_most_one() {
        let _ = PowerLawDegrees::new(1.0, 1, 10);
    }

    #[test]
    #[should_panic(expected = "minimum degree")]
    fn rejects_zero_min_degree() {
        let _ = PowerLawDegrees::new(2.0, 0, 10);
    }

    #[test]
    fn accessors() {
        let d = PowerLawDegrees::new(2.3, 2, 50);
        assert_eq!(d.alpha(), 2.3);
        assert_eq!(d.bounds(), (2, 50));
    }

    #[test]
    fn mean_is_within_support() {
        let d = PowerLawDegrees::new(2.1, 3, 100);
        let m = d.mean();
        assert!((3.0..=100.0).contains(&m), "mean {m}");
    }

    #[test]
    fn calibrated_hits_target_mean() {
        // Targets at or above the distribution floor (α=2.1, max=4096:
        // floored-Pareto min=1 has mean ≈ 5.8); below-floor behaviour is
        // covered separately.
        for target in [8.5f64, 12.0, 27.0, 36.6] {
            let cal = CalibratedPowerLaw::new(2.1, target, 4096);
            assert!(
                (cal.mean() - target).abs() < 0.05 * target,
                "target {target} got analytic mean {}",
                cal.mean()
            );
            // Empirical check.
            let mut rng = SmallRng::seed_from_u64(9);
            let n = 60_000;
            let sum: u64 = (0..n).map(|_| cal.sample(&mut rng)).sum();
            let emp = sum as f64 / n as f64;
            assert!(
                (emp - target).abs() < 0.15 * target,
                "target {target} got empirical mean {emp}"
            );
        }
    }

    #[test]
    fn calibrated_below_floor_uses_minimum() {
        // Target below the α-2.1 floor mean: sampler degenerates to min=1.
        let cal = CalibratedPowerLaw::new(2.1, 0.5, 100);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(cal.sample(&mut rng) >= 1);
        }
    }
}
