//! Barabási–Albert preferential attachment — the Twitter substitute.
//!
//! Social graphs lack the crawl locality of web graphs: links attach to
//! globally popular vertices rather than to a copied neighborhood. BA
//! reproduces exactly the property the paper leans on when explaining why
//! CLUGP's clustering wins less on Twitter than on web corpora (Figure 4).

use crate::csr::CsrGraph;
use crate::types::{Edge, VertexId};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration for the Barabási–Albert generator.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BaConfig {
    /// Number of vertices.
    pub vertices: u64,
    /// Edges added per arriving vertex (the `m` parameter); the final graph
    /// has `≈ vertices * edges_per_vertex` edges.
    pub edges_per_vertex: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaConfig {
    fn default() -> Self {
        BaConfig {
            vertices: 10_000,
            edges_per_vertex: 12,
            seed: 0xBA,
        }
    }
}

/// Generates a BA preferential-attachment graph. Each new vertex attaches
/// `edges_per_vertex` out-edges to targets drawn proportionally to degree.
///
/// # Panics
///
/// Panics if `vertices == 0` or `edges_per_vertex == 0`.
pub fn generate_ba(cfg: &BaConfig) -> CsrGraph {
    assert!(cfg.vertices > 0, "BA needs at least one vertex");
    assert!(
        cfg.edges_per_vertex > 0,
        "BA needs at least one edge per vertex"
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let m = cfg.edges_per_vertex as usize;
    let mut edges: Vec<Edge> = Vec::with_capacity(cfg.vertices as usize * m);
    // Degree-proportional pool: each endpoint occurrence is one ticket.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * cfg.vertices as usize * m);
    pool.push(0);

    for v in 1..cfg.vertices as u32 {
        let attach = m.min(v as usize);
        for _ in 0..attach {
            let target = pool[rng.gen_range(0..pool.len())];
            if target == v {
                continue;
            }
            edges.push(Edge {
                src: v,
                dst: target,
            });
            pool.push(target);
            pool.push(v);
        }
        // Ensure every vertex has at least one pool ticket so isolated
        // vertices cannot occur.
        pool.push(v);
    }

    CsrGraph::from_edges(cfg.vertices, &edges).expect("generator stays in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = BaConfig {
            vertices: 2_000,
            edges_per_vertex: 5,
            seed: 9,
        };
        assert_eq!(generate_ba(&cfg), generate_ba(&cfg));
    }

    #[test]
    fn edge_count_near_target() {
        let cfg = BaConfig {
            vertices: 5_000,
            edges_per_vertex: 6,
            seed: 1,
        };
        let g = generate_ba(&cfg);
        let target = cfg.vertices * cfg.edges_per_vertex;
        assert!(
            g.num_edges() > target * 8 / 10,
            "{} vs {}",
            g.num_edges(),
            target
        );
        assert!(g.num_edges() <= target);
    }

    #[test]
    fn hub_emerges() {
        let g = generate_ba(&BaConfig {
            vertices: 10_000,
            edges_per_vertex: 4,
            seed: 2,
        });
        let in_deg = g.in_degrees();
        let max_in = *in_deg.iter().max().unwrap();
        assert!(max_in > 100, "expected a hub, max in-degree was {max_in}");
    }

    #[test]
    fn no_self_loops() {
        let g = generate_ba(&BaConfig {
            vertices: 1_000,
            edges_per_vertex: 3,
            seed: 3,
        });
        assert!(g.edges().all(|e| !e.is_self_loop()));
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn rejects_empty() {
        let _ = generate_ba(&BaConfig {
            vertices: 0,
            ..Default::default()
        });
    }
}
