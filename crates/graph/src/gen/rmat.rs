//! R-MAT (recursive matrix) generator — the Graph500 workload family.
//!
//! Included to stress partitioners on a third degree-skew profile and for
//! property tests; not a paper dataset.

use crate::csr::CsrGraph;
use crate::types::Edge;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration for the R-MAT generator.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Edges generated = `edge_factor << scale`.
    pub edge_factor: u64,
    /// Quadrant probabilities; must sum to ~1. Graph500 uses
    /// (0.57, 0.19, 0.19, 0.05).
    pub probabilities: (f64, f64, f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 14,
            edge_factor: 16,
            probabilities: (0.57, 0.19, 0.19, 0.05),
            seed: 0x2297,
        }
    }
}

/// Generates an R-MAT graph by recursive quadrant descent.
///
/// # Panics
///
/// Panics if `scale == 0` or quadrant probabilities do not sum to ≈ 1.
pub fn generate_rmat(cfg: &RmatConfig) -> CsrGraph {
    assert!(cfg.scale > 0, "R-MAT scale must be positive");
    let (a, b, c, d) = cfg.probabilities;
    let sum = a + b + c + d;
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "quadrant probabilities must sum to 1"
    );
    let n = 1u64 << cfg.scale;
    let m = cfg.edge_factor << cfg.scale;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let (mut x0, mut x1) = (0u64, n);
        let (mut y0, mut y1) = (0u64, n);
        while x1 - x0 > 1 {
            let r: f64 = rng.gen();
            let (mx, my) = ((x0 + x1) / 2, (y0 + y1) / 2);
            if r < a {
                x1 = mx;
                y1 = my;
            } else if r < a + b {
                x1 = mx;
                y0 = my;
            } else if r < a + b + c {
                x0 = mx;
                y1 = my;
            } else {
                x0 = mx;
                y0 = my;
            }
        }
        if x0 != y0 {
            edges.push(Edge {
                src: x0 as u32,
                dst: y0 as u32,
            });
        }
    }
    CsrGraph::from_edges(n, &edges).expect("generator stays in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = RmatConfig {
            scale: 10,
            edge_factor: 8,
            ..Default::default()
        };
        assert_eq!(generate_rmat(&cfg), generate_rmat(&cfg));
    }

    #[test]
    fn sizes_match_config() {
        let cfg = RmatConfig {
            scale: 10,
            edge_factor: 8,
            ..Default::default()
        };
        let g = generate_rmat(&cfg);
        assert_eq!(g.num_vertices(), 1 << 10);
        // Self-loops are dropped, so slightly fewer edges than requested.
        assert!(g.num_edges() <= 8 << 10);
        assert!(g.num_edges() > (8 << 10) * 9 / 10);
    }

    #[test]
    fn skew_exists() {
        let g = generate_rmat(&RmatConfig {
            scale: 12,
            edge_factor: 16,
            ..Default::default()
        });
        let max = g.max_out_degree();
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max as f64 > 5.0 * mean);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        let _ = generate_rmat(&RmatConfig {
            probabilities: (0.9, 0.2, 0.2, 0.2),
            ..Default::default()
        });
    }
}
