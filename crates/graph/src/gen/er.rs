//! Erdős–Rényi `G(n, m)` random graphs.
//!
//! The degenerate control: no skew, no locality. Useful for tests (every
//! partitioner behaves ~like Hashing here) and for property-test inputs.

use crate::csr::CsrGraph;
use crate::types::Edge;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration for the Erdős–Rényi generator.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ErConfig {
    /// Number of vertices.
    pub vertices: u64,
    /// Number of directed edges to draw (uniformly, with replacement;
    /// self-loops are rejected and redrawn).
    pub edges: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ErConfig {
    fn default() -> Self {
        ErConfig {
            vertices: 10_000,
            edges: 100_000,
            seed: 0xE2,
        }
    }
}

/// Generates a `G(n, m)` digraph with `m` uniform non-loop edges.
///
/// # Panics
///
/// Panics if `vertices < 2` while `edges > 0`.
pub fn generate_er(cfg: &ErConfig) -> CsrGraph {
    assert!(
        cfg.edges == 0 || cfg.vertices >= 2,
        "need at least two vertices to draw non-loop edges"
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut edges = Vec::with_capacity(cfg.edges as usize);
    while (edges.len() as u64) < cfg.edges {
        let src = rng.gen_range(0..cfg.vertices) as u32;
        let dst = rng.gen_range(0..cfg.vertices) as u32;
        if src != dst {
            edges.push(Edge { src, dst });
        }
    }
    CsrGraph::from_edges(cfg.vertices.max(1), &edges).expect("generator stays in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = generate_er(&ErConfig {
            vertices: 100,
            edges: 500,
            seed: 4,
        });
        assert_eq!(g.num_edges(), 500);
        assert_eq!(g.num_vertices(), 100);
    }

    #[test]
    fn deterministic() {
        let cfg = ErConfig::default();
        assert_eq!(generate_er(&cfg), generate_er(&cfg));
    }

    #[test]
    fn zero_edges_allowed() {
        let g = generate_er(&ErConfig {
            vertices: 1,
            edges: 0,
            seed: 0,
        });
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "two vertices")]
    fn rejects_impossible_config() {
        let _ = generate_er(&ErConfig {
            vertices: 1,
            edges: 5,
            seed: 0,
        });
    }
}
