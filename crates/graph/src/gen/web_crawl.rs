//! Site-structured web-crawl generator — the primary substitute for the
//! paper's WebGraph corpora (UK-2002, Arabic-2005, WebBase-2001, IT-2004).
//!
//! Real web corpora are dominated by *host locality*: pages of a site link
//! mostly within the site, sites have power-law sizes, and the WebGraph
//! orderings used by the paper's datasets number pages of a host
//! contiguously (URL-lexicographic order) — which is exactly the crawl/BFS
//! locality CLUGP's clustering exploits. The plain copying model
//! ([`super::copying`]) has power-law degrees but *no* locality (prototypes
//! are global), so it cannot stand in for those corpora on its own.
//!
//! This generator builds: power-law site sizes; per-page power-law
//! out-degrees; each link intra-site with probability `intra_site_fraction`
//! (preferential within the site) and cross-site otherwise (preferential
//! over all pages, producing global power-law in-degrees and hub pages).
//! Page ids are contiguous per site, in crawl order.

use super::degree::{CalibratedPowerLaw, PowerLawDegrees};
use crate::csr::CsrGraph;
use crate::types::{Edge, VertexId};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration for the site-structured web-crawl generator.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WebCrawlConfig {
    /// Total number of pages.
    pub vertices: u64,
    /// Target mean out-degree (so `|E| ≈ vertices · mean_out_degree`).
    pub mean_out_degree: f64,
    /// Probability that a link stays within the page's site (web corpora
    /// measure ~0.75–0.9).
    pub intra_site_fraction: f64,
    /// Power-law exponent of site sizes.
    pub site_size_alpha: f64,
    /// Minimum pages per site.
    pub min_site_size: u64,
    /// Maximum pages per site.
    pub max_site_size: u64,
    /// Power-law exponent of page out-degrees.
    pub out_degree_alpha: f64,
    /// Maximum out-degree of a page.
    pub max_out_degree: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebCrawlConfig {
    fn default() -> Self {
        WebCrawlConfig {
            vertices: 10_000,
            mean_out_degree: 12.0,
            intra_site_fraction: 0.8,
            site_size_alpha: 1.9,
            min_site_size: 16,
            max_site_size: 1 << 14,
            out_degree_alpha: 2.1,
            max_out_degree: 1 << 12,
            seed: 0x3EB,
        }
    }
}

/// Generates a site-structured web graph. Page ids are contiguous per site
/// in crawl order, so `StreamOrder::AsIs` is the crawl stream and
/// `StreamOrder::Bfs` re-derives a strict BFS order.
///
/// # Panics
///
/// Panics if `vertices == 0` or `intra_site_fraction ∉ [0, 1]`.
pub fn generate_web_crawl(cfg: &WebCrawlConfig) -> CsrGraph {
    assert!(cfg.vertices > 0, "web crawl needs at least one page");
    assert!(
        (0.0..=1.0).contains(&cfg.intra_site_fraction),
        "intra_site_fraction must be a probability"
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Power-law site sizes covering all pages; last site truncated.
    let size_sampler = PowerLawDegrees::new(
        cfg.site_size_alpha,
        cfg.min_site_size.max(1),
        cfg.max_site_size.max(cfg.min_site_size.max(1)),
    );
    let mut site_start: Vec<u64> = vec![0];
    while *site_start.last().unwrap() < cfg.vertices {
        let size = size_sampler.sample(&mut rng);
        site_start.push((site_start.last().unwrap() + size).min(cfg.vertices));
    }
    let num_sites = site_start.len() - 1;

    let out_sampler = out_degree_sampler(cfg);
    let mut edges: Vec<Edge> =
        Vec::with_capacity((cfg.vertices as f64 * cfg.mean_out_degree) as usize);
    // Global preferential pool: popular pages accumulate in-links.
    let mut global_pool: Vec<VertexId> = Vec::with_capacity(edges.capacity() / 4 + 16);

    for site in 0..num_sites {
        let (lo, hi) = (site_start[site], site_start[site + 1]);
        let span = hi - lo;
        if span == 0 {
            continue;
        }
        // Site-local preferential pool, seeded with the site root (the
        // "home page" every page links toward).
        let mut site_pool: Vec<VertexId> = Vec::with_capacity((span * 4) as usize);
        site_pool.push(lo as VertexId);
        for page in lo..hi {
            let page = page as VertexId;
            let d = out_sampler.sample(&mut rng);
            for _ in 0..d {
                let intra = span > 1 && rng.gen_bool(cfg.intra_site_fraction);
                let target = if intra {
                    // Preferential within the site with a uniform escape
                    // hatch so leaf pages are reachable too.
                    if rng.gen_bool(0.25) {
                        (lo + rng.gen_range(0..span)) as VertexId
                    } else {
                        site_pool[rng.gen_range(0..site_pool.len())]
                    }
                } else if global_pool.is_empty() || rng.gen_bool(0.1) {
                    rng.gen_range(0..cfg.vertices) as VertexId
                } else {
                    global_pool[rng.gen_range(0..global_pool.len())]
                };
                if target == page {
                    continue;
                }
                edges.push(Edge {
                    src: page,
                    dst: target,
                });
                if intra {
                    site_pool.push(target);
                } else {
                    global_pool.push(target);
                }
            }
            // Every page is discoverable through both pools.
            site_pool.push(page);
            if rng.gen_bool(0.05) {
                global_pool.push(page);
            }
        }
    }

    CsrGraph::from_edges(cfg.vertices, &edges).expect("generator stays in range")
}

/// Site boundaries implied by a config (for tests and ground-truth
/// locality measurements): returns the first page id of each site plus the
/// terminal bound.
pub fn site_boundaries(cfg: &WebCrawlConfig) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let size_sampler = PowerLawDegrees::new(
        cfg.site_size_alpha,
        cfg.min_site_size.max(1),
        cfg.max_site_size.max(cfg.min_site_size.max(1)),
    );
    let mut site_start: Vec<u64> = vec![0];
    while *site_start.last().unwrap() < cfg.vertices {
        let size = size_sampler.sample(&mut rng);
        site_start.push((site_start.last().unwrap() + size).min(cfg.vertices));
    }
    site_start
}

fn out_degree_sampler(cfg: &WebCrawlConfig) -> CalibratedPowerLaw {
    CalibratedPowerLaw::new(
        cfg.out_degree_alpha,
        cfg.mean_out_degree,
        cfg.max_out_degree.max(2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    fn small() -> WebCrawlConfig {
        WebCrawlConfig {
            vertices: 5_000,
            seed: 21,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_web_crawl(&small()), generate_web_crawl(&small()));
    }

    #[test]
    fn edge_count_tracks_mean_out_degree() {
        let cfg = small();
        let g = generate_web_crawl(&cfg);
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            (mean - cfg.mean_out_degree).abs() < cfg.mean_out_degree * 0.5,
            "mean out-degree {mean} vs target {}",
            cfg.mean_out_degree
        );
    }

    #[test]
    fn majority_of_links_are_intra_site() {
        let cfg = small();
        let g = generate_web_crawl(&cfg);
        let bounds = site_boundaries(&cfg);
        let site_of = |v: u64| -> usize { bounds.partition_point(|&b| b <= v) - 1 };
        let intra = g
            .edges()
            .filter(|e| site_of(u64::from(e.src)) == site_of(u64::from(e.dst)))
            .count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!(
            frac > 0.6,
            "intra-site fraction {frac} should reflect the 0.8 config"
        );
    }

    #[test]
    fn in_degrees_are_heavy_tailed() {
        let g = generate_web_crawl(&WebCrawlConfig {
            vertices: 20_000,
            seed: 5,
            ..Default::default()
        });
        let in_deg = g.in_degrees();
        let max_in = *in_deg.iter().max().unwrap();
        let mean_in = in_deg.iter().sum::<u64>() as f64 / in_deg.len() as f64;
        assert!(
            max_in as f64 > 15.0 * mean_in,
            "max in-degree {max_in} vs mean {mean_in}"
        );
    }

    #[test]
    fn alpha_estimate_is_plausible() {
        let g = generate_web_crawl(&WebCrawlConfig {
            vertices: 20_000,
            seed: 6,
            ..Default::default()
        });
        let alpha = analysis::estimate_power_law_alpha(&analysis::total_degree_histogram(&g));
        assert!((1.3..3.5).contains(&alpha), "alpha {alpha}");
    }

    #[test]
    fn no_self_loops() {
        let g = generate_web_crawl(&small());
        assert!(g.edges().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn site_boundaries_cover_all_pages() {
        let cfg = small();
        let b = site_boundaries(&cfg);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), cfg.vertices);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn rejects_zero_pages() {
        let _ = generate_web_crawl(&WebCrawlConfig {
            vertices: 0,
            ..Default::default()
        });
    }

    #[test]
    fn single_page_site_graph() {
        let g = generate_web_crawl(&WebCrawlConfig {
            vertices: 1,
            ..small()
        });
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
