//! Staged decode pipeline: pack blocks decode on worker threads *ahead of*
//! the consumer, so partitioning no longer runs in lockstep with the codec.
//!
//! # Stages
//!
//! ```text
//!            claim next block            publish decoded buffer
//! workers ──[ seek + read + CRC + BlockDecoder ]──▶ ready map ──▶ consumer
//!    ▲                                                              │
//!    └───────────────── recycled edge buffers ──────────────────────┘
//! ```
//!
//! Each worker owns a private file handle and raw-byte scratch; decoded
//! edges travel in `Vec<Edge>` buffers drawn from a shared free list and
//! returned to it when the consumer finishes a block — steady-state runs
//! allocation-free. Claims are bounded: at most `prefetch` blocks may be
//! claimed-but-undelivered, so memory stays O(prefetch × block) no matter
//! how far decode runs ahead (the Sanders/Schulz semi-external discipline).
//!
//! # Ordering guarantee
//!
//! Workers may finish out of order; the consumer delivers blocks strictly by
//! index through an ordered reassembly map. The chunk sequence out of
//! [`EdgeStream::next_chunk`]/[`EdgeStream::next_slice`] is therefore
//! byte-identical to the serial [`super::PackedEdgeStream`] at every thread
//! count and prefetch depth — pinned by `tests/pipelined_equivalence.rs`.
//!
//! # Failure contract
//!
//! A worker-side I/O, checksum, or decode failure is delivered *in order*
//! (blocks before the damaged one still stream), then parks on the consumer:
//! the stream ends early, in-flight work for the old epoch is cancelled and
//! its buffers recycled, and the next [`RestreamableStream::reset`] reports
//! the error — the same park-error/reset-reports contract as every other
//! file-backed stream in this crate, held across threads.

use super::checksum::{crc32, ChecksumPolicy};
use super::codec::BlockDecoder;
use super::{open_validated, PackHeader, PackIndex};
use crate::error::{GraphError, Result};
use crate::stream::{EdgeStream, RestreamableStream};
use crate::types::Edge;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Default bound on claimed-but-undelivered blocks.
pub const DEFAULT_PREFETCH_BLOCKS: usize = 4;

/// How pack-backed streams opened through [`crate::io::open_edge_stream`]
/// decode: serially in the consumer (threads = 0, the historical behavior)
/// or pipelined on dedicated worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeOptions {
    /// Decode worker threads. `0` selects the serial in-consumer path;
    /// `≥ 1` selects [`PipelinedPackStream`] with that many workers.
    pub threads: usize,
    /// Bound on blocks claimed ahead of the consumer (clamped to ≥ 1).
    pub prefetch: usize,
    /// Read-side checksum verification policy.
    pub checksums: ChecksumPolicy,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        DecodeOptions {
            threads: 0,
            prefetch: DEFAULT_PREFETCH_BLOCKS,
            checksums: ChecksumPolicy::Full,
        }
    }
}

// Process-wide decode configuration, same pattern as
// `stream::chunk_edges`: binaries set it once from their CLI and every
// consumer that opens a pack through `open_edge_stream` inherits it.
static DECODE_THREADS: AtomicUsize = AtomicUsize::new(0);
static DECODE_PREFETCH: AtomicUsize = AtomicUsize::new(DEFAULT_PREFETCH_BLOCKS);
static DECODE_CHECKSUMS: AtomicU8 = AtomicU8::new(0);

fn policy_to_u8(p: ChecksumPolicy) -> u8 {
    match p {
        ChecksumPolicy::Full => 0,
        ChecksumPolicy::HeaderAndIndex => 1,
        ChecksumPolicy::Off => 2,
    }
}

fn policy_from_u8(v: u8) -> ChecksumPolicy {
    match v {
        1 => ChecksumPolicy::HeaderAndIndex,
        2 => ChecksumPolicy::Off,
        _ => ChecksumPolicy::Full,
    }
}

/// The process-wide [`DecodeOptions`] honored by
/// [`crate::io::open_edge_stream`] for packed inputs.
pub fn decode_options() -> DecodeOptions {
    DecodeOptions {
        threads: DECODE_THREADS.load(Ordering::Relaxed),
        prefetch: DECODE_PREFETCH.load(Ordering::Relaxed).max(1),
        checksums: policy_from_u8(DECODE_CHECKSUMS.load(Ordering::Relaxed)),
    }
}

/// Sets the process-wide [`DecodeOptions`] (prefetch clamped to ≥ 1).
pub fn set_decode_options(opts: DecodeOptions) {
    DECODE_THREADS.store(opts.threads, Ordering::Relaxed);
    DECODE_PREFETCH.store(opts.prefetch.max(1), Ordering::Relaxed);
    DECODE_CHECKSUMS.store(policy_to_u8(opts.checksums), Ordering::Relaxed);
}

/// One decoded block in flight, or the error that killed it.
type BlockResult = std::result::Result<Vec<Edge>, GraphError>;

struct PipeState {
    /// Bumped by the consumer on reset/cancel; workers publishing under a
    /// stale epoch discard their result into the free list.
    epoch: u64,
    /// Next block index a worker may claim.
    next_claim: usize,
    /// Next block index the consumer will deliver.
    next_deliver: usize,
    /// Bound on `next_claim - next_deliver`.
    capacity: usize,
    /// Out-of-order reassembly: finished blocks keyed by index.
    ready: BTreeMap<usize, BlockResult>,
    /// Recycled edge buffers (capacity retained across blocks).
    free: Vec<Vec<Edge>>,
    shutdown: bool,
}

struct PipeShared {
    path: PathBuf,
    index: Arc<PackIndex>,
    policy: ChecksumPolicy,
    range: Range<usize>,
    state: Mutex<PipeState>,
    /// Workers wait here for a claimable block (or shutdown).
    work_cv: Condvar,
    /// The consumer waits here for `next_deliver` to land in `ready`.
    ready_cv: Condvar,
}

impl PipeShared {
    /// Worker body: claim → decode outside the lock → publish (or discard
    /// on epoch mismatch).
    fn worker_loop(&self) {
        let mut file: Option<File> = None;
        let mut raw: Vec<u8> = Vec::new();
        let decoder = BlockDecoder;
        loop {
            let (block, epoch, mut buf) = {
                let mut st = self.state.lock().expect("pipeline lock poisoned");
                loop {
                    if st.shutdown {
                        return;
                    }
                    let in_flight = st.next_claim - st.next_deliver;
                    if st.next_claim < self.range.end && in_flight < st.capacity {
                        let b = st.next_claim;
                        st.next_claim += 1;
                        let buf = st.free.pop().unwrap_or_default();
                        break (b, st.epoch, buf);
                    }
                    st = self.work_cv.wait(st).expect("pipeline lock poisoned");
                }
            };
            let result = self.decode_one(&mut file, &mut raw, block, &mut buf, &decoder);
            let mut st = self.state.lock().expect("pipeline lock poisoned");
            if st.epoch == epoch {
                let payload = match result {
                    Ok(()) => Ok(std::mem::take(&mut buf)),
                    Err(e) => {
                        st.free.push(std::mem::take(&mut buf));
                        Err(e)
                    }
                };
                st.ready.insert(block, payload);
                self.ready_cv.notify_all();
            } else {
                // Stale epoch (reset or cancel happened mid-decode): the
                // result is for a run nobody is waiting on.
                st.free.push(std::mem::take(&mut buf));
            }
        }
    }

    fn decode_one(
        &self,
        file: &mut Option<File>,
        raw: &mut Vec<u8>,
        block: usize,
        buf: &mut Vec<Edge>,
        decoder: &BlockDecoder,
    ) -> Result<()> {
        // Each worker opens its own handle lazily so shards decode without
        // seek contention; an open failure surfaces per claimed block.
        if file.is_none() {
            *file = Some(File::open(&self.path)?);
        }
        let f = file.as_mut().expect("just opened");
        let entry = self.index.entries()[block];
        raw.resize(entry.byte_len as usize, 0);
        f.seek(SeekFrom::Start(entry.byte_offset))?;
        f.read_exact(raw)?;
        if self.policy.verify_payload() {
            let computed = crc32(raw);
            if computed != entry.crc {
                return Err(GraphError::Format(format!(
                    "block at offset {} failed its checksum: stored {:#010x}, computed {computed:#010x}",
                    entry.byte_offset, entry.crc
                )));
            }
        }
        decoder.decode(raw, &entry, buf)
    }
}

/// A resettable edge stream over a `CLUGPZ` pack (or a block range of one)
/// whose blocks decode on dedicated worker threads ahead of the consumer.
///
/// Drop-in equivalent of [`super::PackedEdgeStream`]: same chunk sequence,
/// same hints, same park-error/reset contract — see the module docs for the
/// pipeline shape and guarantees.
#[derive(Debug)]
pub struct PipelinedPackStream {
    shared: Arc<PipeShared>,
    workers: Vec<JoinHandle<()>>,
    header: PackHeader,
    shard_edges: u64,
    decoded: Vec<Edge>,
    pos: usize,
    error: Option<GraphError>,
}

impl std::fmt::Debug for PipeShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeShared")
            .field("path", &self.path)
            .field("range", &self.range)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl PipelinedPackStream {
    /// Opens `path` (validated under `opts.checksums`) and starts
    /// `opts.threads.max(1)` decode workers over all blocks.
    pub fn open(path: &Path, opts: DecodeOptions) -> Result<Self> {
        let (_, header, index) = open_validated(path, opts.checksums)?;
        let blocks = 0..index.num_blocks();
        Ok(Self::over_range(
            path.to_path_buf(),
            header,
            Arc::new(index),
            blocks,
            opts,
        ))
    }

    /// Starts a pipelined stream over an explicit block range of an
    /// already-validated pack — the shard/worker entry point used by
    /// [`super::ShardedPackReader`].
    pub(crate) fn over_range(
        path: PathBuf,
        header: PackHeader,
        index: Arc<PackIndex>,
        blocks: Range<usize>,
        opts: DecodeOptions,
    ) -> Self {
        let threads = opts.threads.max(1);
        let prefetch = opts.prefetch.max(1);
        let shard_edges = index.edges_in(blocks.clone());
        let shared = Arc::new(PipeShared {
            path,
            index,
            policy: opts.checksums,
            range: blocks.clone(),
            state: Mutex::new(PipeState {
                epoch: 0,
                next_claim: blocks.start,
                next_deliver: blocks.start,
                capacity: prefetch,
                ready: BTreeMap::new(),
                free: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            ready_cv: Condvar::new(),
        });
        // More workers than claimable blocks would only park on the
        // condvar; still spawn at least one so the stream always drains.
        let workers = (0..threads.min(blocks.len().max(1)))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clugp-decode-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn decode worker")
            })
            .collect();
        PipelinedPackStream {
            shared,
            workers,
            header,
            shard_edges,
            decoded: Vec::new(),
            pos: 0,
            error: None,
        }
    }

    /// The file this stream reads from.
    pub fn path(&self) -> &Path {
        &self.shared.path
    }

    /// The validated header.
    pub fn header(&self) -> &PackHeader {
        &self.header
    }

    /// The error that ended the stream early, if any (also reported by the
    /// next [`RestreamableStream::reset`]) — mirrors
    /// [`super::PackedEdgeStream::error`].
    pub fn error(&self) -> Option<&GraphError> {
        self.error.as_ref()
    }

    #[inline]
    fn remaining(&self) -> usize {
        self.decoded.len() - self.pos
    }

    /// Takes delivery of the next in-order block. Returns `false` at range
    /// end or once an error has parked.
    fn load_next_block(&mut self) -> bool {
        if self.error.is_some() {
            return false;
        }
        let shared = Arc::clone(&self.shared);
        let mut st = shared.state.lock().expect("pipeline lock poisoned");
        if st.next_deliver >= shared.range.end {
            return false;
        }
        let block = st.next_deliver;
        let result = loop {
            if let Some(r) = st.ready.remove(&block) {
                break r;
            }
            // Decode ran behind the consumer: this wait is the pipeline's
            // prefetch-stall time, credited to the calling thread so the
            // AMPC worker can report it per stage.
            let waited = std::time::Instant::now();
            st = shared.ready_cv.wait(st).expect("pipeline lock poisoned");
            clugp_obs::stall::add_decode_stall(waited.elapsed().as_nanos() as u64);
        };
        st.next_deliver += 1;
        // Recycle the buffer the consumer just finished draining.
        let consumed = std::mem::take(&mut self.decoded);
        if consumed.capacity() > 0 {
            st.free.push(consumed);
        }
        match result {
            Ok(buf) => {
                self.decoded = buf;
                self.pos = 0;
                drop(st);
                // A claim slot and a recycled buffer both opened up.
                shared.work_cv.notify_all();
                true
            }
            Err(e) => {
                // Deliveries stay in order, so everything before the damaged
                // block already streamed. Park the error, cancel the rest of
                // this epoch, and recycle whatever had finished.
                st.epoch += 1;
                st.next_claim = shared.range.end;
                st.next_deliver = shared.range.end;
                let leftovers = std::mem::take(&mut st.ready);
                for (_, r) in leftovers {
                    if let Ok(b) = r {
                        st.free.push(b);
                    }
                }
                drop(st);
                shared.work_cv.notify_all();
                self.pos = 0;
                self.error = Some(e);
                false
            }
        }
    }
}

impl EdgeStream for PipelinedPackStream {
    fn next_edge(&mut self) -> Option<Edge> {
        if self.remaining() == 0 && !self.load_next_block() {
            return None;
        }
        let e = self.decoded[self.pos];
        self.pos += 1;
        Some(e)
    }

    fn next_chunk(&mut self, buf: &mut Vec<Edge>, cap: usize) -> usize {
        buf.clear();
        if self.remaining() == 0 && !self.load_next_block() {
            return 0;
        }
        let n = cap.max(1).min(self.remaining());
        buf.extend_from_slice(&self.decoded[self.pos..self.pos + n]);
        self.pos += n;
        n
    }

    fn next_slice(&mut self, cap: usize) -> Option<&[Edge]> {
        if self.remaining() == 0 && !self.load_next_block() {
            return Some(&[]);
        }
        let n = cap.max(1).min(self.remaining());
        let s = &self.decoded[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.shard_edges)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.header.num_vertices)
    }
}

impl RestreamableStream for PipelinedPackStream {
    /// Rewinds to the first block of this stream's range and restarts the
    /// workers on it.
    ///
    /// # Errors
    ///
    /// Reports (and clears) the decode/IO error that ended the previous
    /// pass early.
    fn reset(&mut self) -> Result<()> {
        let parked = self.error.take();
        {
            let mut st = self.shared.state.lock().expect("pipeline lock poisoned");
            st.epoch += 1;
            st.next_claim = self.shared.range.start;
            st.next_deliver = self.shared.range.start;
            let leftovers = std::mem::take(&mut st.ready);
            for (_, r) in leftovers {
                if let Ok(b) = r {
                    st.free.push(b);
                }
            }
            let consumed = std::mem::take(&mut self.decoded);
            if consumed.capacity() > 0 {
                st.free.push(consumed);
            }
        }
        self.pos = 0;
        self.shared.work_cv.notify_all();
        match parked {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for PipelinedPackStream {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pipeline lock poisoned");
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.ready_cv.notify_all();
        for w in self.workers.drain(..) {
            w.join().ok();
        }
    }
}
