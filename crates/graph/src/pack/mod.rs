//! `CLUGPZ` — block-compressed on-disk graph storage.
//!
//! The paper's Table III corpora ship WebGraph-compressed (~1–3 bits per
//! link); the flat [`crate::io::binary`] format replays them at a fixed
//! 8 B/edge, so on a real web graph the partitioner would be I/O-bound on a
//! representation ~20–50× larger than what production systems store. This
//! module is the missing storage layer: a compressed, block-indexed edge
//! pack that any chunked consumer streams through the standard
//! [`EdgeStream`] ABI — bit-identically to the flat formats — and that a
//! thread pool can read in parallel shards through the block index.
//!
//! The module is layered:
//!
//! - [`checksum`] — CRC32 and the read-side [`ChecksumPolicy`]
//! - [`codec`] — varints and the per-block [`BlockDecoder`]
//! - [`pipeline`] — [`PipelinedPackStream`], decode running ahead of the
//!   consumer on worker threads (see `DESIGN.md` §9)
//! - this file — on-disk format, writer, serial readers, verification
//!
//! # File layout (all little-endian)
//!
//! ```text
//! header   36 B   magic "CLUGPZ01", n u64, m u64, block_target u32,
//!                 flags u32, crc32(header[..32]) u32
//! blocks   ...    back-to-back varint payloads (~block_target bytes each),
//!                 each independently decodable
//! index    32 B × num_blocks
//!                 first_src u32, edge_count u32, byte_len u32,
//!                 crc32(payload) u32, edge_offset u64, byte_offset u64
//! footer   32 B   index_offset u64, num_blocks u64, crc32(index) u32,
//!                 crc32(footer[..24]) u32, magic "CLUGPZEN"
//! ```
//!
//! # Edge encoding
//!
//! A pack stores the edge multiset in **canonical order**: sorted by
//! `(src, dst)`, duplicates preserved. Grouping by source makes destination
//! lists sorted, so both coordinates gap-encode:
//!
//! ```text
//! record       := varint(src_gap) varint(dst_field)
//! first in blk := src and dst absolute
//! src_gap == 0 := same source run; dst_field = dst − prev_dst (≥ 0)
//! src_gap  > 0 := new source src = prev_src + gap; dst_field = dst absolute
//! ```
//!
//! On the site-structured web analogues this lands at ~2–3 B/edge (the
//! committed `results/BENCH_io.json` has the measured numbers) versus the
//! flat format's fixed 8. Every block starts with absolute coordinates, so
//! blocks decode independently — the property the sharded reader, the
//! decode pipeline, and `reset` all lean on. A source's destination list
//! may span blocks; the continuation block simply re-encodes the source
//! absolutely.
//!
//! # Bounded-memory writer
//!
//! [`pack_edge_stream`] accepts edges in *any* order from any
//! [`EdgeStream`]: it buffers up to [`PackOptions::spill_edges`] edges,
//! sorts each buffer, spills it as a raw run file next to the output, and
//! k-way merges the runs at write time — classic external sort, so packing
//! never holds more than one spill buffer of edges in memory.
//!
//! # Readers
//!
//! [`PackedEdgeStream`] implements [`EdgeStream`] + [`RestreamableStream`]:
//! one block is decoded per refill and lent to chunked consumers through
//! the zero-copy `next_slice` fast path, so CLUGP's three passes and every
//! baseline consume a pack unchanged (equivalence pinned by
//! `tests/chunked_equivalence.rs`). [`PipelinedPackStream`] is its
//! staged-pipeline twin: same chunk sequence, decode on worker threads.
//! [`ShardedPackReader`] splits the block range into per-thread shards
//! balanced by edge count; each shard is its own stream (serial or
//! pipelined) over a private file handle.
//!
//! Integrity: under the default [`ChecksumPolicy::Full`], header, index,
//! and footer are checksum-validated at open and block payloads as they
//! stream (CRC32/IEEE); relaxed policies trade coverage for decode
//! throughput (see [`checksum`]). A decode or I/O failure mid-stream parks
//! the error and ends the stream, and the next
//! [`RestreamableStream::reset`] reports it — the same failure contract as
//! every other file-backed stream in this crate.

pub mod checksum;
pub mod codec;
pub mod pipeline;

pub use checksum::{crc32, ChecksumPolicy};
pub use codec::BlockDecoder;
pub use pipeline::{
    decode_options, set_decode_options, DecodeOptions, PipelinedPackStream, DEFAULT_PREFETCH_BLOCKS,
};

use crate::error::{GraphError, Result};
use crate::stream::{chunk_edges, EdgeStream, RestreamableStream};
use crate::types::Edge;
use codec::put_varint;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening a `CLUGPZ` file (version 1).
pub const PACK_MAGIC: &[u8; 8] = b"CLUGPZ01";
/// Magic bytes closing the footer.
const FOOTER_MAGIC: &[u8; 8] = b"CLUGPZEN";

const HEADER_LEN: u64 = 36;
const FOOTER_LEN: u64 = 32;
const INDEX_ENTRY_LEN: usize = 32;

/// Default target payload bytes per block: large enough to amortize the
/// per-block seek + checksum to noise, small enough that a block's decoded
/// edges stay cache-resident and shard boundaries stay fine-grained.
pub const DEFAULT_BLOCK_BYTES: usize = 64 * 1024;

/// Default in-memory sort buffer of the external-sort writer, in edges
/// (4 Mi edges = 32 MiB): the bound on packing memory.
pub const DEFAULT_SPILL_EDGES: usize = 4 << 20;

// ---------------------------------------------------------------------------
// On-disk structures.
// ---------------------------------------------------------------------------

/// Parsed, checksum-validated `CLUGPZ` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackHeader {
    /// Number of vertices of the packed graph.
    pub num_vertices: u64,
    /// Number of edges (over all blocks).
    pub num_edges: u64,
    /// The encoder's target payload bytes per block.
    pub block_target: u32,
}

impl PackHeader {
    fn to_bytes(self) -> [u8; HEADER_LEN as usize] {
        let mut b = [0u8; HEADER_LEN as usize];
        b[..8].copy_from_slice(PACK_MAGIC);
        b[8..16].copy_from_slice(&self.num_vertices.to_le_bytes());
        b[16..24].copy_from_slice(&self.num_edges.to_le_bytes());
        b[24..28].copy_from_slice(&self.block_target.to_le_bytes());
        b[28..32].copy_from_slice(&0u32.to_le_bytes()); // flags (reserved)
        let crc = crc32(&b[..32]);
        b[32..36].copy_from_slice(&crc.to_le_bytes());
        b
    }

    fn from_bytes(b: &[u8; HEADER_LEN as usize], verify_crc: bool) -> Result<Self> {
        if &b[..8] != PACK_MAGIC {
            return Err(GraphError::Format("not a CLUGPZ file (bad magic)".into()));
        }
        if verify_crc {
            let stored = u32::from_le_bytes(b[32..36].try_into().expect("4-byte field"));
            let computed = crc32(&b[..32]);
            if stored != computed {
                return Err(GraphError::Format(format!(
                    "header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )));
            }
        }
        Ok(PackHeader {
            num_vertices: u64::from_le_bytes(b[8..16].try_into().expect("8-byte field")),
            num_edges: u64::from_le_bytes(b[16..24].try_into().expect("8-byte field")),
            block_target: u32::from_le_bytes(b[24..28].try_into().expect("4-byte field")),
        })
    }
}

/// One entry of the trailing block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Source id of the block's first edge.
    pub first_src: u32,
    /// Edges encoded in this block.
    pub edge_count: u32,
    /// Payload bytes of this block.
    pub byte_len: u32,
    /// CRC32 of the payload.
    pub crc: u32,
    /// Index of the block's first edge in the whole pack.
    pub edge_offset: u64,
    /// File offset of the payload start.
    pub byte_offset: u64,
}

impl BlockEntry {
    fn write_to(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.first_src.to_le_bytes());
        buf.extend_from_slice(&self.edge_count.to_le_bytes());
        buf.extend_from_slice(&self.byte_len.to_le_bytes());
        buf.extend_from_slice(&self.crc.to_le_bytes());
        buf.extend_from_slice(&self.edge_offset.to_le_bytes());
        buf.extend_from_slice(&self.byte_offset.to_le_bytes());
    }

    fn read_from(b: &[u8]) -> Self {
        BlockEntry {
            first_src: u32::from_le_bytes(b[0..4].try_into().expect("4-byte field")),
            edge_count: u32::from_le_bytes(b[4..8].try_into().expect("4-byte field")),
            byte_len: u32::from_le_bytes(b[8..12].try_into().expect("4-byte field")),
            crc: u32::from_le_bytes(b[12..16].try_into().expect("4-byte field")),
            edge_offset: u64::from_le_bytes(b[16..24].try_into().expect("8-byte field")),
            byte_offset: u64::from_le_bytes(b[24..32].try_into().expect("8-byte field")),
        }
    }
}

/// The validated block index of an open pack (shared by sharded readers).
#[derive(Debug, Clone, Default)]
pub struct PackIndex {
    entries: Vec<BlockEntry>,
}

impl PackIndex {
    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.entries.len()
    }

    /// The index entries, in file order.
    pub fn entries(&self) -> &[BlockEntry] {
        &self.entries
    }

    /// Edges covered by the block range (from the index's edge offsets).
    pub fn edges_in(&self, blocks: Range<usize>) -> u64 {
        self.entries[blocks]
            .iter()
            .map(|e| u64::from(e.edge_count))
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// Knobs of [`pack_edge_stream`].
#[derive(Debug, Clone, Copy)]
pub struct PackOptions {
    /// Target payload bytes per block (clamped to ≥ 1; a tiny target gives
    /// one edge per block, the degenerate case the proptests sweep).
    pub block_bytes: usize,
    /// In-memory sort buffer in edges before a run spills to disk
    /// (clamped to ≥ 1): the packing memory bound.
    pub spill_edges: usize,
}

impl Default for PackOptions {
    fn default() -> Self {
        PackOptions {
            block_bytes: DEFAULT_BLOCK_BYTES,
            spill_edges: DEFAULT_SPILL_EDGES,
        }
    }
}

/// What [`pack_edge_stream`] reports about the file it wrote.
#[derive(Debug, Clone, Copy)]
pub struct PackStats {
    /// Vertices recorded in the header.
    pub num_vertices: u64,
    /// Edges packed.
    pub num_edges: u64,
    /// Blocks written.
    pub num_blocks: u64,
    /// Compressed payload bytes (blocks only, excluding header/index/footer).
    pub payload_bytes: u64,
    /// Total file bytes.
    pub file_bytes: u64,
    /// Spill runs the external sort used (0 = fit in one in-memory buffer).
    pub spill_runs: usize,
}

impl PackStats {
    /// Total file bytes per edge (∞-free: 0 edges reports 0).
    pub fn bytes_per_edge(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.file_bytes as f64 / self.num_edges as f64
        }
    }
}

/// Incremental block encoder: push canonically-ordered edges, blocks and
/// index entries fall out.
struct BlockEncoder<W: Write> {
    out: W,
    target: usize,
    block: Vec<u8>,
    prev: Option<Edge>,
    first_src: u32,
    edges_in_block: u32,
    edge_offset: u64,
    byte_offset: u64,
    index: Vec<BlockEntry>,
}

impl<W: Write> BlockEncoder<W> {
    fn new(out: W, target: usize, byte_offset: u64) -> Self {
        BlockEncoder {
            out,
            target: target.max(1),
            block: Vec::with_capacity(target.max(1) + 16),
            prev: None,
            first_src: 0,
            edges_in_block: 0,
            edge_offset: 0,
            byte_offset,
            index: Vec::new(),
        }
    }

    fn push(&mut self, e: Edge) -> Result<()> {
        match self.prev {
            None => {
                // Block opens with absolute coordinates.
                self.first_src = e.src;
                put_varint(&mut self.block, u64::from(e.src));
                put_varint(&mut self.block, u64::from(e.dst));
            }
            Some(p) => {
                debug_assert!(
                    (p.src, p.dst) <= (e.src, e.dst),
                    "encoder fed unsorted edges"
                );
                let src_gap = e.src - p.src;
                put_varint(&mut self.block, u64::from(src_gap));
                if src_gap == 0 {
                    put_varint(&mut self.block, u64::from(e.dst - p.dst));
                } else {
                    put_varint(&mut self.block, u64::from(e.dst));
                }
            }
        }
        self.prev = Some(e);
        self.edges_in_block += 1;
        if self.block.len() >= self.target {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.edges_in_block == 0 {
            return Ok(());
        }
        self.out.write_all(&self.block)?;
        self.index.push(BlockEntry {
            first_src: self.first_src,
            edge_count: self.edges_in_block,
            byte_len: self.block.len() as u32,
            crc: crc32(&self.block),
            edge_offset: self.edge_offset,
            byte_offset: self.byte_offset,
        });
        self.edge_offset += u64::from(self.edges_in_block);
        self.byte_offset += self.block.len() as u64;
        self.block.clear();
        self.prev = None;
        self.edges_in_block = 0;
        Ok(())
    }

    /// Flushes the trailing partial block and returns `(index, edges,
    /// payload_end_offset, writer)`.
    fn finish(mut self) -> Result<(Vec<BlockEntry>, u64, u64, W)> {
        self.flush_block()?;
        Ok((self.index, self.edge_offset, self.byte_offset, self.out))
    }
}

/// A sorted spill run on disk: raw 8-byte edge records, read back through a
/// buffered cursor during the merge.
struct RunReader {
    reader: BufReader<File>,
    head: Option<Edge>,
}

impl RunReader {
    fn open(path: &Path) -> Result<Self> {
        let mut r = RunReader {
            reader: BufReader::with_capacity(1 << 16, File::open(path)?),
            head: None,
        };
        r.advance()?;
        Ok(r)
    }

    fn advance(&mut self) -> Result<()> {
        let mut rec = [0u8; 8];
        self.head = match self.reader.read_exact(&mut rec) {
            Ok(()) => Some(Edge {
                src: u32::from_le_bytes(rec[..4].try_into().expect("4-byte field")),
                dst: u32::from_le_bytes(rec[4..].try_into().expect("4-byte field")),
            }),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => None,
            Err(e) => return Err(GraphError::from(e)),
        };
        Ok(())
    }
}

/// Spill-run files beside the output; removed when packing completes or is
/// dropped on an error path.
struct SpillRuns {
    base: PathBuf,
    paths: Vec<PathBuf>,
}

impl SpillRuns {
    fn new(output: &Path) -> Self {
        SpillRuns {
            base: output.to_path_buf(),
            paths: Vec::new(),
        }
    }

    fn spill(&mut self, edges: &mut Vec<Edge>) -> Result<()> {
        edges.sort_unstable_by_key(|e| (e.src, e.dst));
        let path = self
            .base
            .with_extension(format!("run{}.tmp", self.paths.len()));
        let mut w = BufWriter::with_capacity(1 << 16, File::create(&path)?);
        self.paths.push(path);
        let mut buf = Vec::with_capacity(8 * 1024);
        for chunk in edges.chunks(1024) {
            buf.clear();
            for e in chunk {
                buf.extend_from_slice(&e.src.to_le_bytes());
                buf.extend_from_slice(&e.dst.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
        w.flush()?;
        edges.clear();
        Ok(())
    }
}

impl Drop for SpillRuns {
    fn drop(&mut self) {
        for p in &self.paths {
            std::fs::remove_file(p).ok();
        }
    }
}

/// Packs any edge stream into a `CLUGPZ` file at `path` in bounded memory.
///
/// The stream may yield edges in any order; the writer external-sorts them
/// into canonical `(src, dst)` order (duplicates preserved) in spill runs of
/// at most [`PackOptions::spill_edges`] edges, merged at write time. The
/// header's vertex count is `max(num_vertices_hint, max id + 1)`.
///
/// # Errors
///
/// Fails on I/O errors writing the pack or its spill runs.
pub fn pack_edge_stream(
    stream: &mut dyn EdgeStream,
    path: &Path,
    opts: &PackOptions,
) -> Result<PackStats> {
    let spill_cap = opts.spill_edges.max(1);
    let mut runs = SpillRuns::new(path);
    let mut buffer: Vec<Edge> = Vec::with_capacity(spill_cap.min(DEFAULT_SPILL_EDGES));
    let mut implied_n = 0u64;
    crate::stream::try_for_each_chunk(stream, chunk_edges(), |chunk| -> Result<()> {
        for &e in chunk {
            implied_n = implied_n.max(u64::from(e.src.max(e.dst)) + 1);
            buffer.push(e);
            if buffer.len() >= spill_cap {
                runs.spill(&mut buffer)?;
            }
        }
        Ok(())
    })?;
    let num_vertices = stream.num_vertices_hint().unwrap_or(0).max(implied_n);

    let file = File::create(path)?;
    let mut w = BufWriter::with_capacity(1 << 16, file);
    // Header is rewritten with real counts at the end (m is unknown for
    // hint-less streams until the drain completes).
    w.write_all(&[0u8; HEADER_LEN as usize])?;
    let mut enc = BlockEncoder::new(w, opts.block_bytes, HEADER_LEN);

    let spill_runs = runs.paths.len() + usize::from(!buffer.is_empty() && !runs.paths.is_empty());
    if runs.paths.is_empty() {
        // Everything fit in one buffer: sort and encode directly.
        buffer.sort_unstable_by_key(|e| (e.src, e.dst));
        for &e in &buffer {
            enc.push(e)?;
        }
    } else {
        // Spill the tail run too, then k-way merge. The run index breaks
        // ties so the merge is stable (irrelevant for identical 8-byte
        // records, but it keeps the loop's invariant obvious).
        if !buffer.is_empty() {
            runs.spill(&mut buffer)?;
        }
        let mut readers: Vec<RunReader> = runs
            .paths
            .iter()
            .map(|p| RunReader::open(p))
            .collect::<Result<_>>()?;
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, u32, usize)>> = readers
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.head.map(|e| std::cmp::Reverse((e.src, e.dst, i))))
            .collect();
        while let Some(std::cmp::Reverse((src, dst, i))) = heap.pop() {
            enc.push(Edge { src, dst })?;
            readers[i].advance()?;
            if let Some(e) = readers[i].head {
                heap.push(std::cmp::Reverse((e.src, e.dst, i)));
            }
        }
    }

    let (index, num_edges, payload_end, mut w) = enc.finish()?;
    // Trailing index + footer.
    let mut index_bytes = Vec::with_capacity(index.len() * INDEX_ENTRY_LEN);
    for entry in &index {
        entry.write_to(&mut index_bytes);
    }
    w.write_all(&index_bytes)?;
    let mut footer = [0u8; FOOTER_LEN as usize];
    footer[..8].copy_from_slice(&payload_end.to_le_bytes());
    footer[8..16].copy_from_slice(&(index.len() as u64).to_le_bytes());
    footer[16..20].copy_from_slice(&crc32(&index_bytes).to_le_bytes());
    let fcrc = crc32(&footer[..20]);
    footer[20..24].copy_from_slice(&fcrc.to_le_bytes());
    footer[24..32].copy_from_slice(FOOTER_MAGIC);
    w.write_all(&footer)?;
    w.flush()?;

    // Rewrite the header with the real counts.
    let mut file = w
        .into_inner()
        .map_err(|e| GraphError::from(e.into_error()))?;
    let header = PackHeader {
        num_vertices,
        num_edges,
        block_target: opts.block_bytes.max(1).min(u32::MAX as usize) as u32,
    };
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&header.to_bytes())?;
    file.sync_data().ok();
    let file_bytes = payload_end + index_bytes.len() as u64 + FOOTER_LEN;

    Ok(PackStats {
        num_vertices,
        num_edges,
        num_blocks: index.len() as u64,
        payload_bytes: payload_end - HEADER_LEN,
        file_bytes,
        spill_runs,
    })
}

// ---------------------------------------------------------------------------
// Open/validate.
// ---------------------------------------------------------------------------

/// Opens `path` and validates its metadata under `policy`: magic bytes and
/// structural consistency (contiguous block offsets, non-empty blocks,
/// totals matching the header) always; header/index/footer CRC comparisons
/// only when [`ChecksumPolicy::verify_metadata`] holds.
pub(crate) fn open_validated(
    path: &Path,
    policy: ChecksumPolicy,
) -> Result<(File, PackHeader, PackIndex)> {
    let verify = policy.verify_metadata();
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    if file_len < HEADER_LEN + FOOTER_LEN {
        return Err(GraphError::Format(format!(
            "CLUGPZ file shorter than header + footer ({file_len} bytes)"
        )));
    }
    let mut hbytes = [0u8; HEADER_LEN as usize];
    file.read_exact(&mut hbytes)?;
    let header = PackHeader::from_bytes(&hbytes, verify)?;

    let mut fbytes = [0u8; FOOTER_LEN as usize];
    file.seek(SeekFrom::Start(file_len - FOOTER_LEN))?;
    file.read_exact(&mut fbytes)?;
    if &fbytes[24..32] != FOOTER_MAGIC {
        return Err(GraphError::Format(
            "CLUGPZ footer magic missing (truncated file?)".into(),
        ));
    }
    if verify {
        let stored = u32::from_le_bytes(fbytes[20..24].try_into().expect("4-byte field"));
        let computed = crc32(&fbytes[..20]);
        if stored != computed {
            return Err(GraphError::Format(format!(
                "footer checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
    }
    let index_offset = u64::from_le_bytes(fbytes[..8].try_into().expect("8-byte field"));
    let num_blocks = u64::from_le_bytes(fbytes[8..16].try_into().expect("8-byte field"));
    let index_crc = u32::from_le_bytes(fbytes[16..20].try_into().expect("4-byte field"));

    let index_len = num_blocks
        .checked_mul(INDEX_ENTRY_LEN as u64)
        .filter(|len| index_offset.checked_add(*len) == Some(file_len - FOOTER_LEN))
        .ok_or_else(|| {
            GraphError::Format("block index does not span header..footer (corrupt footer)".into())
        })?;
    let mut index_bytes = vec![0u8; index_len as usize];
    file.seek(SeekFrom::Start(index_offset))?;
    file.read_exact(&mut index_bytes)?;
    if verify {
        let computed = crc32(&index_bytes);
        if index_crc != computed {
            return Err(GraphError::Format(format!(
                "index checksum mismatch: stored {index_crc:#010x}, computed {computed:#010x}"
            )));
        }
    }
    let mut entries = Vec::with_capacity(num_blocks as usize);
    let mut expect_edge = 0u64;
    let mut expect_byte = HEADER_LEN;
    for raw in index_bytes.chunks_exact(INDEX_ENTRY_LEN) {
        let e = BlockEntry::read_from(raw);
        if e.edge_offset != expect_edge || e.byte_offset != expect_byte || e.edge_count == 0 {
            return Err(GraphError::Format(format!(
                "block index entry {} is inconsistent (offsets must be \
                 contiguous and blocks non-empty)",
                entries.len()
            )));
        }
        expect_edge += u64::from(e.edge_count);
        expect_byte += u64::from(e.byte_len);
        entries.push(e);
    }
    if expect_edge != header.num_edges || expect_byte != index_offset {
        return Err(GraphError::Format(format!(
            "block index covers {expect_edge} edges / {expect_byte} payload bytes, \
             header promises {} / {}",
            header.num_edges, index_offset
        )));
    }
    Ok((file, header, PackIndex { entries }))
}

// ---------------------------------------------------------------------------
// PackedEdgeStream.
// ---------------------------------------------------------------------------

/// A resettable edge stream over a `CLUGPZ` pack (or a block range of one).
///
/// One block is decoded per refill into an internal buffer that chunked
/// consumers drain zero-copy through [`EdgeStream::next_slice`]; payload
/// checksums are verified as blocks stream (under [`ChecksumPolicy::Full`]).
/// Decode/IO failures park an error, end the stream, and surface on the
/// next [`RestreamableStream::reset`] — so a restreaming consumer cannot
/// silently loop over a damaged pack.
#[derive(Debug)]
pub struct PackedEdgeStream {
    file: File,
    path: PathBuf,
    header: PackHeader,
    index: Arc<PackIndex>,
    policy: ChecksumPolicy,
    blocks: Range<usize>,
    next_block: usize,
    shard_edges: u64,
    decoded: Vec<Edge>,
    pos: usize,
    raw: Vec<u8>,
    error: Option<GraphError>,
}

impl PackedEdgeStream {
    /// Opens `path`, validating header, footer, and index checksums
    /// ([`ChecksumPolicy::Full`]).
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_with(path, ChecksumPolicy::Full)
    }

    /// Opens `path` under an explicit checksum policy.
    pub fn open_with(path: &Path, policy: ChecksumPolicy) -> Result<Self> {
        let (file, header, index) = open_validated(path, policy)?;
        let blocks = 0..index.num_blocks();
        Ok(Self::over_range(
            file,
            path.to_path_buf(),
            header,
            Arc::new(index),
            blocks,
            policy,
        ))
    }

    fn over_range(
        file: File,
        path: PathBuf,
        header: PackHeader,
        index: Arc<PackIndex>,
        blocks: Range<usize>,
        policy: ChecksumPolicy,
    ) -> Self {
        let shard_edges = index.edges_in(blocks.clone());
        PackedEdgeStream {
            file,
            path,
            header,
            index,
            policy,
            next_block: blocks.start,
            blocks,
            shard_edges,
            decoded: Vec::new(),
            pos: 0,
            raw: Vec::new(),
            error: None,
        }
    }

    /// The file this stream reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The validated header.
    pub fn header(&self) -> &PackHeader {
        &self.header
    }

    /// The block index (shared across shards of the same pack).
    pub fn index(&self) -> &PackIndex {
        &self.index
    }

    /// The error that ended the stream early, if any (also reported by the
    /// next [`RestreamableStream::reset`]).
    pub fn error(&self) -> Option<&GraphError> {
        self.error.as_ref()
    }

    /// Reads + decodes the next block of this stream's range into
    /// `self.decoded`. Returns `false` at range end or on a parked error.
    fn load_next_block(&mut self) -> bool {
        if self.error.is_some() || self.next_block >= self.blocks.end {
            return false;
        }
        let entry = self.index.entries()[self.next_block];
        match self.read_block(entry) {
            Ok(()) => {
                self.next_block += 1;
                true
            }
            Err(e) => {
                self.error = Some(e);
                false
            }
        }
    }

    fn read_block(&mut self, entry: BlockEntry) -> Result<()> {
        self.raw.resize(entry.byte_len as usize, 0);
        self.file.seek(SeekFrom::Start(entry.byte_offset))?;
        self.file.read_exact(&mut self.raw)?;
        if self.policy.verify_payload() {
            let computed = crc32(&self.raw);
            if computed != entry.crc {
                return Err(GraphError::Format(format!(
                    "block at offset {} failed its checksum: stored {:#010x}, computed {computed:#010x}",
                    entry.byte_offset, entry.crc
                )));
            }
        }
        BlockDecoder.decode(&self.raw, &entry, &mut self.decoded)?;
        self.pos = 0;
        Ok(())
    }

    #[inline]
    fn remaining(&self) -> usize {
        self.decoded.len() - self.pos
    }
}

impl EdgeStream for PackedEdgeStream {
    fn next_edge(&mut self) -> Option<Edge> {
        if self.remaining() == 0 && !self.load_next_block() {
            return None;
        }
        let e = self.decoded[self.pos];
        self.pos += 1;
        Some(e)
    }

    fn next_chunk(&mut self, buf: &mut Vec<Edge>, cap: usize) -> usize {
        buf.clear();
        if self.remaining() == 0 && !self.load_next_block() {
            return 0;
        }
        let n = cap.max(1).min(self.remaining());
        buf.extend_from_slice(&self.decoded[self.pos..self.pos + n]);
        self.pos += n;
        n
    }

    fn next_slice(&mut self, cap: usize) -> Option<&[Edge]> {
        if self.remaining() == 0 && !self.load_next_block() {
            return Some(&[]);
        }
        let n = cap.max(1).min(self.remaining());
        let s = &self.decoded[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.shard_edges)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.header.num_vertices)
    }
}

impl RestreamableStream for PackedEdgeStream {
    /// Rewinds to the first block of this stream's range.
    ///
    /// # Errors
    ///
    /// Reports (and clears) the decode/IO error that ended the previous
    /// pass early.
    fn reset(&mut self) -> Result<()> {
        let parked = self.error.take();
        self.next_block = self.blocks.start;
        self.decoded.clear();
        self.pos = 0;
        match parked {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// ShardedPackReader.
// ---------------------------------------------------------------------------

/// A contiguous block range of a pack, sized for one reader thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Block range of this shard.
    pub blocks: Range<usize>,
    /// Edges the range covers.
    pub edges: u64,
}

/// Splits a pack into per-thread block ranges via the index, so a thread
/// pool can stream shards in parallel — each shard is an independent
/// [`PackedEdgeStream`] (or [`PipelinedPackStream`]) over its own file
/// handle.
#[derive(Debug)]
pub struct ShardedPackReader {
    path: PathBuf,
    header: PackHeader,
    index: Arc<PackIndex>,
    policy: ChecksumPolicy,
}

impl ShardedPackReader {
    /// Opens and validates `path` once; shards share the parsed index.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_with(path, ChecksumPolicy::Full)
    }

    /// Opens `path` under an explicit checksum policy, inherited by every
    /// shard stream this reader hands out.
    pub fn open_with(path: &Path, policy: ChecksumPolicy) -> Result<Self> {
        let (_, header, index) = open_validated(path, policy)?;
        Ok(ShardedPackReader {
            path: path.to_path_buf(),
            header,
            index: Arc::new(index),
            policy,
        })
    }

    /// The validated header.
    pub fn header(&self) -> &PackHeader {
        &self.header
    }

    /// The block index.
    pub fn index(&self) -> &PackIndex {
        &self.index
    }

    /// Cuts the block range into at most `want` contiguous shards balanced
    /// by edge count (never returns an empty shard; fewer shards come back
    /// when the pack has fewer blocks than `want`).
    pub fn shards(&self, want: usize) -> Vec<ShardSpec> {
        let want = want.max(1);
        let total = self.header.num_edges;
        let num_blocks = self.index.num_blocks();
        let mut specs = Vec::new();
        let mut start = 0usize;
        let mut covered = 0u64;
        for s in 0..want {
            if start >= num_blocks {
                break;
            }
            // Edge-count boundary this shard should reach (cumulative), so
            // imbalance never exceeds one block.
            let boundary = total * (s as u64 + 1) / want as u64;
            let mut end = start;
            let mut edges = 0u64;
            while end < num_blocks && (covered + edges < boundary || end == start) {
                edges += u64::from(self.index.entries()[end].edge_count);
                end += 1;
            }
            // The last shard sweeps any remainder.
            if s == want - 1 {
                while end < num_blocks {
                    edges += u64::from(self.index.entries()[end].edge_count);
                    end += 1;
                }
            }
            covered += edges;
            specs.push(ShardSpec {
                blocks: start..end,
                edges,
            });
            start = end;
        }
        specs
    }

    /// Opens one shard as an independent stream (its own file handle, so
    /// shards decode concurrently without contention).
    pub fn open_shard(&self, spec: &ShardSpec) -> Result<PackedEdgeStream> {
        let file = File::open(&self.path)?;
        Ok(PackedEdgeStream::over_range(
            file,
            self.path.clone(),
            self.header,
            Arc::clone(&self.index),
            spec.blocks.clone(),
            self.policy,
        ))
    }

    /// Opens one shard as a [`PipelinedPackStream`]: the shard's blocks
    /// decode on `opts.threads` dedicated workers ahead of the consumer.
    /// The reader's checksum policy wins over `opts.checksums` (the shard
    /// cannot be stricter than the metadata validation already performed).
    pub fn open_pipelined_shard(
        &self,
        spec: &ShardSpec,
        opts: DecodeOptions,
    ) -> Result<PipelinedPackStream> {
        Ok(PipelinedPackStream::over_range(
            self.path.clone(),
            self.header,
            Arc::clone(&self.index),
            spec.blocks.clone(),
            DecodeOptions {
                checksums: self.policy,
                ..opts
            },
        ))
    }

    /// Builds the [`ShardSpec`] for an explicit block range — the handle a
    /// distributed worker is assigned by its coordinator (as opposed to
    /// [`ShardedPackReader::shards`], which picks ranges itself). The range
    /// is clamped to the pack's block count; the edge count comes from the
    /// index.
    pub fn block_range(&self, blocks: Range<usize>) -> ShardSpec {
        let num_blocks = self.index.num_blocks();
        let start = blocks.start.min(num_blocks);
        let end = blocks.end.min(num_blocks).max(start);
        let edges = self.index.entries()[start..end]
            .iter()
            .map(|b| u64::from(b.edge_count))
            .sum();
        ShardSpec {
            blocks: start..end,
            edges,
        }
    }

    /// Opens an explicit block range directly (see
    /// [`ShardedPackReader::block_range`]).
    pub fn open_block_range(&self, blocks: Range<usize>) -> Result<PackedEdgeStream> {
        self.open_shard(&self.block_range(blocks))
    }

    /// Opens an explicit block range as a [`PipelinedPackStream`] (see
    /// [`ShardedPackReader::open_pipelined_shard`]).
    pub fn open_pipelined_block_range(
        &self,
        blocks: Range<usize>,
        opts: DecodeOptions,
    ) -> Result<PipelinedPackStream> {
        self.open_pipelined_shard(&self.block_range(blocks), opts)
    }
}

// ---------------------------------------------------------------------------
// Summaries + verification (the `clugp-pack info`/`verify` surfaces).
// ---------------------------------------------------------------------------

/// Size/shape summary of a pack (the `clugp-pack info` payload).
#[derive(Debug, Clone)]
pub struct PackSummary {
    /// The validated header.
    pub header: PackHeader,
    /// Total file bytes.
    pub file_bytes: u64,
    /// Compressed payload bytes (blocks only).
    pub payload_bytes: u64,
    /// Blocks in the file.
    pub num_blocks: u64,
    /// Smallest block payload, bytes.
    pub min_block_bytes: u32,
    /// Largest block payload, bytes.
    pub max_block_bytes: u32,
    /// Mean edges per block.
    pub mean_block_edges: f64,
}

impl PackSummary {
    /// Total file bytes per edge (0 for an empty pack).
    pub fn bytes_per_edge(&self) -> f64 {
        if self.header.num_edges == 0 {
            0.0
        } else {
            self.file_bytes as f64 / self.header.num_edges as f64
        }
    }
}

/// Reads and summarizes a pack without decoding its blocks.
pub fn read_pack_summary(path: &Path) -> Result<PackSummary> {
    read_pack_summary_with(path, ChecksumPolicy::Full)
}

/// [`read_pack_summary`] under an explicit [`ChecksumPolicy`]: `Off` skips
/// the header/index CRC comparisons (magic and structural validation always
/// run), letting `clugp-pack info` inspect a pack whose metadata checksums
/// are damaged.
pub fn read_pack_summary_with(path: &Path, policy: ChecksumPolicy) -> Result<PackSummary> {
    let (file, header, index) = open_validated(path, policy)?;
    let file_bytes = file.metadata()?.len();
    let payload_bytes: u64 = index.entries().iter().map(|e| u64::from(e.byte_len)).sum();
    let (mut min_b, mut max_b) = (u32::MAX, 0u32);
    for e in index.entries() {
        min_b = min_b.min(e.byte_len);
        max_b = max_b.max(e.byte_len);
    }
    let num_blocks = index.num_blocks() as u64;
    Ok(PackSummary {
        header,
        file_bytes,
        payload_bytes,
        num_blocks,
        min_block_bytes: if num_blocks == 0 { 0 } else { min_b },
        max_block_bytes: max_b,
        mean_block_edges: if num_blocks == 0 {
            0.0
        } else {
            header.num_edges as f64 / num_blocks as f64
        },
    })
}

/// Fully decodes a pack, verifying every checksum, the canonical edge
/// order, and that every id is below the header's vertex count. Returns the
/// edge count on success, or the *first* failure — the streaming
/// equivalent; [`verify_pack_report`] walks every block and reports all of
/// them.
pub fn verify_pack(path: &Path) -> Result<u64> {
    let mut s = PackedEdgeStream::open(path)?;
    let n = s.header().num_vertices;
    let mut count = 0u64;
    let mut prev: Option<Edge> = None;
    let mut order_ok = true;
    let mut max_id = 0u64;
    crate::stream::for_each_chunk(&mut s, chunk_edges(), |chunk| {
        for &e in chunk {
            if let Some(p) = prev {
                order_ok &= (p.src, p.dst) <= (e.src, e.dst);
            }
            max_id = max_id.max(u64::from(e.src.max(e.dst)));
            prev = Some(e);
        }
        count += chunk.len() as u64;
    });
    // A parked decode error means the drain ended early; surface it.
    s.reset()?;
    if !order_ok {
        return Err(GraphError::Format(
            "pack violates canonical (src, dst) order".into(),
        ));
    }
    if count != s.header().num_edges {
        return Err(GraphError::Format(format!(
            "pack decodes {count} edges, header promises {}",
            s.header().num_edges
        )));
    }
    if count > 0 && max_id >= n {
        return Err(GraphError::VertexOutOfRange {
            vertex: max_id,
            num_vertices: n,
        });
    }
    Ok(count)
}

/// One damaged block found by [`verify_pack_report`].
#[derive(Debug)]
pub struct BlockFailure {
    /// Block index within the pack.
    pub block: usize,
    /// File offset of the block's payload.
    pub byte_offset: u64,
    /// What went wrong reading or decoding it.
    pub error: GraphError,
}

/// Exhaustive verification result: every failing block, not just the first.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Blocks in the pack.
    pub num_blocks: u64,
    /// Edges the header promises.
    pub num_edges: u64,
    /// Edges decoded from the blocks that passed.
    pub decoded_edges: u64,
    /// Every block that failed its checksum, read, or decode.
    pub failures: Vec<BlockFailure>,
    /// Pack-wide violations (canonical order, id range) found in the blocks
    /// that did decode.
    pub global_errors: Vec<String>,
}

impl VerifyReport {
    /// `true` when the pack verified clean.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty() && self.global_errors.is_empty()
    }
}

/// Verifies every block of a pack, continuing past failures so the report
/// names *all* damaged blocks with their index and byte offset — the
/// `clugp-pack verify` surface.
///
/// # Errors
///
/// Fails only when the metadata (header/index/footer) is too damaged to
/// enumerate blocks at all; block-level damage lands in the report.
pub fn verify_pack_report(path: &Path) -> Result<VerifyReport> {
    let (mut file, header, index) = open_validated(path, ChecksumPolicy::Full)?;
    let decoder = BlockDecoder;
    let mut raw: Vec<u8> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut report = VerifyReport {
        num_blocks: index.num_blocks() as u64,
        num_edges: header.num_edges,
        ..Default::default()
    };
    // Last edge of the previous *good* block; cleared after a failure so
    // order is only judged across contiguous decoded data.
    let mut prev: Option<Edge> = None;
    let mut order_ok = true;
    let mut max_id = 0u64;
    for (i, entry) in index.entries().iter().enumerate() {
        let outcome = (|| -> Result<()> {
            raw.resize(entry.byte_len as usize, 0);
            file.seek(SeekFrom::Start(entry.byte_offset))?;
            file.read_exact(&mut raw)?;
            let computed = crc32(&raw);
            if computed != entry.crc {
                return Err(GraphError::Format(format!(
                    "payload checksum mismatch: stored {:#010x}, computed {computed:#010x}",
                    entry.crc
                )));
            }
            decoder.decode(&raw, entry, &mut edges)
        })();
        match outcome {
            Ok(()) => {
                for &e in &edges {
                    if let Some(p) = prev {
                        order_ok &= (p.src, p.dst) <= (e.src, e.dst);
                    }
                    max_id = max_id.max(u64::from(e.src.max(e.dst)));
                    prev = Some(e);
                }
                report.decoded_edges += edges.len() as u64;
            }
            Err(error) => {
                report.failures.push(BlockFailure {
                    block: i,
                    byte_offset: entry.byte_offset,
                    error,
                });
                prev = None;
            }
        }
    }
    if !order_ok {
        report
            .global_errors
            .push("pack violates canonical (src, dst) order".into());
    }
    if report.decoded_edges > 0 && max_id >= header.num_vertices {
        report.global_errors.push(format!(
            "vertex id {max_id} out of range (header promises {} vertices)",
            header.num_vertices
        ));
    }
    if report.failures.is_empty() && report.decoded_edges != header.num_edges {
        report.global_errors.push(format!(
            "pack decodes {} edges, header promises {}",
            report.decoded_edges, header.num_edges
        ));
    }
    Ok(report)
}

/// Convenience: packs an in-memory edge list (used by tests, fixtures, and
/// the experiment harness).
pub fn write_pack(
    path: &Path,
    num_vertices: u64,
    edges: &[Edge],
    opts: &PackOptions,
) -> Result<PackStats> {
    let mut s = crate::stream::InMemoryStream::new(num_vertices, edges.to_vec());
    pack_edge_stream(&mut s, path, opts)
}

/// The canonical `(src, dst)` order a pack stores — the edge sequence
/// [`PackedEdgeStream`] yields for any input order. Exposed so callers can
/// build the equivalent flat representation for apples-to-apples
/// comparisons.
pub fn canonical_order(edges: &[Edge]) -> Vec<Edge> {
    let mut sorted = edges.to_vec();
    sorted.sort_unstable_by_key(|e| (e.src, e.dst));
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{collect_stream, InMemoryStream};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("clugp_pack_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn web_like(m: u32) -> Vec<Edge> {
        // Clustered dsts with duplicates and self-loops sprinkled in.
        (0..m)
            .map(|i| {
                let src = i / 7;
                let dst = (src + (i * 31) % 17) % (m / 7 + 1);
                Edge::new(src, dst)
            })
            .collect()
    }

    fn pack_roundtrip(edges: &[Edge], n: u64, opts: &PackOptions, name: &str) -> Vec<Edge> {
        let path = tmp(name);
        let stats = write_pack(&path, n, edges, opts).unwrap();
        assert_eq!(stats.num_edges, edges.len() as u64);
        let mut s = PackedEdgeStream::open(&path).unwrap();
        assert_eq!(s.len_hint(), Some(edges.len() as u64));
        let out = collect_stream(&mut s);
        s.reset().unwrap();
        assert_eq!(collect_stream(&mut s), out, "second pass differs");
        std::fs::remove_file(&path).ok();
        out
    }

    #[test]
    fn round_trip_is_canonical_order() {
        let edges = web_like(5_000);
        let out = pack_roundtrip(&edges, 0, &PackOptions::default(), "rt.clugpz");
        assert_eq!(out, canonical_order(&edges));
    }

    #[test]
    fn round_trip_across_block_sizes() {
        let edges = web_like(2_000);
        let want = canonical_order(&edges);
        for block_bytes in [1usize, 13, 256, DEFAULT_BLOCK_BYTES] {
            let opts = PackOptions {
                block_bytes,
                ..Default::default()
            };
            let out = pack_roundtrip(&edges, 0, &opts, &format!("bs{block_bytes}.clugpz"));
            assert_eq!(out, want, "block_bytes={block_bytes}");
        }
    }

    #[test]
    fn one_edge_per_block_degenerate() {
        let edges = web_like(50);
        let path = tmp("single.clugpz");
        let stats = write_pack(
            &path,
            0,
            &edges,
            &PackOptions {
                block_bytes: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            stats.num_blocks,
            edges.len() as u64,
            "1-byte target = 1 edge/block"
        );
        let mut s = PackedEdgeStream::open(&path).unwrap();
        assert_eq!(collect_stream(&mut s), canonical_order(&edges));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn external_sort_spill_path_matches_in_memory_path() {
        let edges = web_like(10_000);
        let want = pack_roundtrip(&edges, 0, &PackOptions::default(), "nospill.clugpz");
        let path = tmp("spill.clugpz");
        let opts = PackOptions {
            spill_edges: 777, // force many runs
            ..Default::default()
        };
        let stats = write_pack(&path, 0, &edges, &opts).unwrap();
        assert!(
            stats.spill_runs >= 2,
            "expected spill runs, got {}",
            stats.spill_runs
        );
        let mut s = PackedEdgeStream::open(&path).unwrap();
        assert_eq!(collect_stream(&mut s), want);
        // Spill runs are cleaned up.
        let dir = path.parent().unwrap();
        assert!(std::fs::read_dir(dir).unwrap().all(|f| !f
            .unwrap()
            .file_name()
            .to_string_lossy()
            .contains(".run")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph() {
        let out = pack_roundtrip(&[], 0, &PackOptions::default(), "empty.clugpz");
        assert!(out.is_empty());
        let path = tmp("empty2.clugpz");
        let stats = write_pack(&path, 5, &[], &PackOptions::default()).unwrap();
        assert_eq!(stats.num_blocks, 0);
        assert_eq!(stats.num_vertices, 5, "explicit n preserved");
        let s = PackedEdgeStream::open(&path).unwrap();
        assert_eq!(s.num_vertices_hint(), Some(5));
        assert_eq!(verify_pack(&path).unwrap(), 0);
        // Pipelined open over an empty pack streams empty too.
        let mut p = PipelinedPackStream::open(&path, DecodeOptions::default()).unwrap();
        assert!(collect_stream(&mut p).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn self_loops_duplicates_and_extreme_ids() {
        let edges = vec![
            Edge::new(u32::MAX, u32::MAX),
            Edge::new(0, 0),
            Edge::new(u32::MAX - 1, u32::MAX),
            Edge::new(0, 0),
            Edge::new(u32::MAX, 0),
            Edge::new(7, u32::MAX),
        ];
        for block_bytes in [1usize, 4, DEFAULT_BLOCK_BYTES] {
            let opts = PackOptions {
                block_bytes,
                ..Default::default()
            };
            let out = pack_roundtrip(&edges, 0, &opts, &format!("extreme{block_bytes}.clugpz"));
            assert_eq!(out, canonical_order(&edges), "block_bytes={block_bytes}");
        }
    }

    #[test]
    fn vertex_count_is_max_of_hint_and_implied() {
        let path = tmp("n.clugpz");
        // Hint larger than implied: preserved.
        let stats = write_pack(&path, 100, &[Edge::new(0, 3)], &PackOptions::default()).unwrap();
        assert_eq!(stats.num_vertices, 100);
        // Implied larger than hint: corrected upward.
        let mut s = InMemoryStream::new(2, vec![Edge::new(0, 9)]);
        let stats = pack_edge_stream(&mut s, &path, &PackOptions::default()).unwrap();
        assert_eq!(stats.num_vertices, 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compresses_web_like_streams_below_flat() {
        let edges = web_like(100_000);
        let path = tmp("ratio.clugpz");
        let stats = write_pack(&path, 0, &edges, &PackOptions::default()).unwrap();
        assert!(
            stats.bytes_per_edge() < 4.0,
            "expected < 4 B/edge, got {:.2}",
            stats.bytes_per_edge()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_pulls_respect_cap_and_cover_stream() {
        let edges = web_like(3_000);
        let path = tmp("chunks.clugpz");
        write_pack(
            &path,
            0,
            &edges,
            &PackOptions {
                block_bytes: 128,
                ..Default::default()
            },
        )
        .unwrap();
        for cap in [1usize, 7, 256, 4096] {
            let mut s = PackedEdgeStream::open(&path).unwrap();
            let mut buf = Vec::new();
            let mut seen = Vec::new();
            loop {
                let n = s.next_chunk(&mut buf, cap);
                if n == 0 {
                    break;
                }
                assert!(n <= cap.max(1));
                seen.extend_from_slice(&buf);
            }
            assert_eq!(seen, canonical_order(&edges), "cap={cap}");
        }
        // Mixed pull styles keep the cursor coherent.
        let mut s = PackedEdgeStream::open(&path).unwrap();
        let want = canonical_order(&edges);
        assert_eq!(s.next_edge(), Some(want[0]));
        let slice = s.next_slice(3).unwrap().to_vec();
        assert_eq!(slice, want[1..4].to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_reader_covers_the_pack_exactly_once() {
        let edges = web_like(5_000);
        let path = tmp("shards.clugpz");
        write_pack(
            &path,
            0,
            &edges,
            &PackOptions {
                block_bytes: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let reader = ShardedPackReader::open(&path).unwrap();
        let want = canonical_order(&edges);
        for want_shards in [1usize, 2, 3, 8, 1000] {
            let specs = reader.shards(want_shards);
            assert!(!specs.is_empty());
            assert!(specs.len() <= want_shards);
            assert!(
                specs.iter().all(|s| !s.blocks.is_empty()),
                "no empty shards"
            );
            // Contiguous cover.
            assert_eq!(specs[0].blocks.start, 0);
            assert_eq!(
                specs.last().unwrap().blocks.end,
                reader.index().num_blocks()
            );
            for w in specs.windows(2) {
                assert_eq!(w[0].blocks.end, w[1].blocks.start);
            }
            let mut all = Vec::new();
            for spec in &specs {
                let mut s = reader.open_shard(spec).unwrap();
                assert_eq!(s.len_hint(), Some(spec.edges));
                let part = collect_stream(&mut s);
                assert_eq!(part.len() as u64, spec.edges);
                all.extend(part);
            }
            assert_eq!(all, want, "want_shards={want_shards}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shards_are_balanced_by_edges() {
        let edges = web_like(20_000);
        let path = tmp("balance.clugpz");
        write_pack(
            &path,
            0,
            &edges,
            &PackOptions {
                block_bytes: 256,
                ..Default::default()
            },
        )
        .unwrap();
        let reader = ShardedPackReader::open(&path).unwrap();
        let specs = reader.shards(4);
        assert_eq!(specs.len(), 4);
        let total: u64 = specs.iter().map(|s| s.edges).sum();
        assert_eq!(total, edges.len() as u64);
        let target = total as f64 / 4.0;
        for s in &specs {
            // Imbalance bounded by one block (≤ ~128 edges at 256 B).
            assert!(
                (s.edges as f64 - target).abs() <= 300.0,
                "shard {s:?} vs target {target}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_and_verify() {
        let edges = web_like(5_000);
        let path = tmp("info.clugpz");
        let stats = write_pack(
            &path,
            0,
            &edges,
            &PackOptions {
                block_bytes: 1024,
                ..Default::default()
            },
        )
        .unwrap();
        let sum = read_pack_summary(&path).unwrap();
        assert_eq!(sum.header.num_edges, edges.len() as u64);
        assert_eq!(sum.num_blocks, stats.num_blocks);
        // Every block but the trailing partial one reaches the target.
        let reader = ShardedPackReader::open(&path).unwrap();
        let entries = reader.index().entries();
        assert!(entries[..entries.len() - 1]
            .iter()
            .all(|e| e.byte_len >= 1024));
        assert!(sum.min_block_bytes >= 1);
        assert!(sum.bytes_per_edge() > 0.0);
        assert_eq!(verify_pack(&path).unwrap(), edges.len() as u64);
        let report = verify_pack_report(&path).unwrap();
        assert!(report.is_ok());
        assert_eq!(report.decoded_edges, edges.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_block_is_detected_and_parks_error() {
        let edges = web_like(4_000);
        let path = tmp("corrupt.clugpz");
        write_pack(
            &path,
            0,
            &edges,
            &PackOptions {
                block_bytes: 512,
                ..Default::default()
            },
        )
        .unwrap();
        // Flip a byte in the middle of the payload region.
        let mut data = std::fs::read(&path).unwrap();
        let mid = HEADER_LEN as usize + 700;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        // Open succeeds (header/index/footer intact)…
        let mut s = PackedEdgeStream::open(&path).unwrap();
        // …but the drain ends early with a parked checksum error.
        let got = collect_stream(&mut s);
        assert!(got.len() < edges.len());
        assert!(s.error().is_some());
        let err = s.reset().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // After reset the error is cleared; the stream re-reads up to the
        // damaged block again.
        assert!(s.error().is_none());
        assert!(verify_pack(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_report_lists_every_failing_block() {
        let edges = web_like(6_000);
        let path = tmp("multi_corrupt.clugpz");
        write_pack(
            &path,
            0,
            &edges,
            &PackOptions {
                block_bytes: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let reader = ShardedPackReader::open(&path).unwrap();
        let entries: Vec<BlockEntry> = reader.index().entries().to_vec();
        assert!(entries.len() >= 5, "need several blocks for this test");
        drop(reader);
        // Corrupt two non-adjacent blocks.
        let victims = [1usize, 3];
        let mut data = std::fs::read(&path).unwrap();
        for &v in &victims {
            data[entries[v].byte_offset as usize] ^= 0xFF;
        }
        std::fs::write(&path, &data).unwrap();
        let report = verify_pack_report(&path).unwrap();
        assert!(!report.is_ok());
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
        for (f, &v) in report.failures.iter().zip(&victims) {
            assert_eq!(f.block, v);
            assert_eq!(f.byte_offset, entries[v].byte_offset);
            assert!(f.error.to_string().contains("checksum"), "{}", f.error);
        }
        // Good blocks still decoded.
        let bad_edges: u64 = victims
            .iter()
            .map(|&v| u64::from(entries[v].edge_count))
            .sum();
        assert_eq!(report.decoded_edges, edges.len() as u64 - bad_edges);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_policy_gates_payload_and_metadata_verification() {
        let edges = web_like(3_000);
        let path = tmp("policy.clugpz");
        write_pack(
            &path,
            0,
            &edges,
            &PackOptions {
                block_bytes: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let want = canonical_order(&edges);
        // Pristine file: all policies stream identically.
        for policy in [
            ChecksumPolicy::Full,
            ChecksumPolicy::HeaderAndIndex,
            ChecksumPolicy::Off,
        ] {
            let mut s = PackedEdgeStream::open_with(&path, policy).unwrap();
            assert_eq!(collect_stream(&mut s), want, "{policy:?}");
        }
        // Tamper with a stored *block CRC* in the index, recomputing the
        // index + footer checksums so the metadata stays self-consistent:
        // Full must reject the payload, HeaderAndIndex/Off must stream it.
        let pristine = std::fs::read(&path).unwrap();
        let reader = ShardedPackReader::open(&path).unwrap();
        let num_blocks = reader.index().num_blocks();
        drop(reader);
        let mut data = pristine.clone();
        let index_start = data.len() - FOOTER_LEN as usize - num_blocks * INDEX_ENTRY_LEN;
        data[index_start + 12] ^= 0xFF; // entry 0's crc field
        let index_end = data.len() - FOOTER_LEN as usize;
        let new_index_crc = crc32(&data[index_start..index_end]);
        let footer_start = index_end;
        data[footer_start + 16..footer_start + 20].copy_from_slice(&new_index_crc.to_le_bytes());
        let new_footer_crc = crc32(&data[footer_start..footer_start + 20]);
        data[footer_start + 20..footer_start + 24].copy_from_slice(&new_footer_crc.to_le_bytes());
        std::fs::write(&path, &data).unwrap();

        let mut s = PackedEdgeStream::open_with(&path, ChecksumPolicy::Full).unwrap();
        collect_stream(&mut s);
        assert!(s.error().is_some(), "Full policy must catch the bad CRC");
        for policy in [ChecksumPolicy::HeaderAndIndex, ChecksumPolicy::Off] {
            let mut s = PackedEdgeStream::open_with(&path, policy).unwrap();
            assert_eq!(collect_stream(&mut s), want, "{policy:?}");
            assert!(s.error().is_none(), "{policy:?}");
        }

        // Tamper with the *header CRC*: Full/HeaderAndIndex reject at open,
        // Off still opens (magic + structure intact).
        let mut data = pristine.clone();
        data[33] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(PackedEdgeStream::open_with(&path, ChecksumPolicy::Full).is_err());
        assert!(PackedEdgeStream::open_with(&path, ChecksumPolicy::HeaderAndIndex).is_err());
        let mut s = PackedEdgeStream::open_with(&path, ChecksumPolicy::Off).unwrap();
        assert_eq!(collect_stream(&mut s), want);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipelined_stream_matches_serial_and_resets() {
        let edges = web_like(8_000);
        let path = tmp("pipelined.clugpz");
        write_pack(
            &path,
            0,
            &edges,
            &PackOptions {
                block_bytes: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let want = canonical_order(&edges);
        for threads in [1usize, 2, 4] {
            for prefetch in [1usize, 4] {
                let opts = DecodeOptions {
                    threads,
                    prefetch,
                    checksums: ChecksumPolicy::Full,
                };
                let mut s = PipelinedPackStream::open(&path, opts).unwrap();
                assert_eq!(s.len_hint(), Some(edges.len() as u64));
                assert_eq!(
                    collect_stream(&mut s),
                    want,
                    "threads={threads} prefetch={prefetch}"
                );
                // Restream: reset reports clean and the second pass agrees.
                s.reset().unwrap();
                assert_eq!(collect_stream(&mut s), want, "second pass");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipelined_corruption_parks_error_from_worker_thread() {
        let edges = web_like(6_000);
        let path = tmp("pipelined_corrupt.clugpz");
        write_pack(
            &path,
            0,
            &edges,
            &PackOptions {
                block_bytes: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let reader = ShardedPackReader::open(&path).unwrap();
        let entries: Vec<BlockEntry> = reader.index().entries().to_vec();
        drop(reader);
        let victim = entries.len() / 2;
        let mut data = std::fs::read(&path).unwrap();
        data[entries[victim].byte_offset as usize] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let good_prefix: u64 = entries[..victim]
            .iter()
            .map(|e| u64::from(e.edge_count))
            .sum();
        let opts = DecodeOptions {
            threads: 2,
            prefetch: 4,
            checksums: ChecksumPolicy::Full,
        };
        let mut s = PipelinedPackStream::open(&path, opts).unwrap();
        let got = collect_stream(&mut s);
        // Ordered delivery: everything before the damaged block streamed.
        assert_eq!(got.len() as u64, good_prefix);
        assert!(s.error().is_some());
        let err = s.reset().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        assert!(s.error().is_none());
        // The stream restreams cleanly up to the damaged block again.
        let again = collect_stream(&mut s);
        assert_eq!(again, got);
        assert!(s.error().is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipelined_sharded_ranges_cover_the_pack() {
        let edges = web_like(5_000);
        let path = tmp("pipelined_shards.clugpz");
        write_pack(
            &path,
            0,
            &edges,
            &PackOptions {
                block_bytes: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let reader = ShardedPackReader::open(&path).unwrap();
        let want = canonical_order(&edges);
        let opts = DecodeOptions {
            threads: 2,
            prefetch: 2,
            checksums: ChecksumPolicy::Full,
        };
        let mut all = Vec::new();
        for spec in reader.shards(3) {
            let mut s = reader.open_pipelined_shard(&spec, opts).unwrap();
            assert_eq!(s.len_hint(), Some(spec.edges));
            all.extend(collect_stream(&mut s));
        }
        assert_eq!(all, want);
        // Explicit block-range opener agrees with the serial one.
        let mid = reader.index().num_blocks() / 2;
        let mut serial = reader.open_block_range(mid..usize::MAX).unwrap();
        let mut piped = reader
            .open_pipelined_block_range(mid..usize::MAX, opts)
            .unwrap();
        assert_eq!(collect_stream(&mut piped), collect_stream(&mut serial));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_header_footer_and_index_are_rejected_at_open() {
        let edges = web_like(1_000);
        let path = tmp("corrupt_meta.clugpz");
        write_pack(&path, 0, &edges, &PackOptions::default()).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Header corruption.
        let mut data = pristine.clone();
        data[10] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(PackedEdgeStream::open(&path).is_err());

        // Footer corruption.
        let mut data = pristine.clone();
        let len = data.len();
        data[len - 12] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(PackedEdgeStream::open(&path).is_err());

        // Index corruption.
        let mut data = pristine.clone();
        let len = data.len();
        data[len - FOOTER_LEN as usize - 4] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(PackedEdgeStream::open(&path).is_err());

        // Truncation (footer gone).
        std::fs::write(&path, &pristine[..pristine.len() - 10]).unwrap();
        assert!(PackedEdgeStream::open(&path).is_err());

        // Bad magic (long enough to pass the length check) — rejected under
        // every policy, Off included.
        let mut junk = b"NOTPACKD".to_vec();
        junk.resize(96, b'_');
        std::fs::write(&path, &junk).unwrap();
        let err = PackedEdgeStream::open(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        assert!(PackedEdgeStream::open_with(&path, ChecksumPolicy::Off).is_err());
        std::fs::remove_file(&path).ok();
    }
}
