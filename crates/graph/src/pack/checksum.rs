//! Integrity checksums of the `CLUGPZ` format: the vendored-free CRC32
//! (IEEE, reflected) every on-disk structure is stamped with, and the
//! [`ChecksumPolicy`] that decides how much of it a *reader* verifies.
//!
//! Writers always emit every checksum — the policy is purely a read-side
//! trade between integrity coverage and decode throughput. `BENCH_io`
//! measures the gap: payload CRC is a per-byte table walk over every block,
//! so on a CPU-bound replay it is a double-digit share of decode cost.

use std::str::FromStr;

/// How much checksum verification a pack reader performs.
///
/// The on-disk metadata consistency checks (magic bytes, contiguous block
/// offsets, header/index edge accounting) run under every policy — the
/// policy only gates CRC *comparisons*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChecksumPolicy {
    /// Verify header, index, footer, and every block payload (the
    /// historical always-on behavior, and the default).
    #[default]
    Full,
    /// Verify header, index, and footer at open; skip the per-block payload
    /// CRC on the decode hot path. Catches metadata corruption (which would
    /// misdirect seeks) but trusts payload bytes.
    HeaderAndIndex,
    /// Skip all CRC comparisons. Structural validation still applies, so a
    /// truncated or mis-indexed file is rejected; flipped payload bits are
    /// not. For rereads of packs verified once via `clugp-pack verify`.
    Off,
}

impl ChecksumPolicy {
    /// Whether open-time metadata (header/index/footer) CRCs are compared.
    #[inline]
    pub fn verify_metadata(self) -> bool {
        !matches!(self, ChecksumPolicy::Off)
    }

    /// Whether per-block payload CRCs are compared while streaming.
    #[inline]
    pub fn verify_payload(self) -> bool {
        matches!(self, ChecksumPolicy::Full)
    }

    /// Short name for logs, CLI echo, and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            ChecksumPolicy::Full => "full",
            ChecksumPolicy::HeaderAndIndex => "header",
            ChecksumPolicy::Off => "off",
        }
    }
}

impl FromStr for ChecksumPolicy {
    type Err = String;

    /// Parses the CLI spelling: `full` | `header` | `off`.
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "full" => Ok(ChecksumPolicy::Full),
            "header" => Ok(ChecksumPolicy::HeaderAndIndex),
            "off" => Ok(ChecksumPolicy::Off),
            other => Err(format!(
                "unknown checksum policy {other:?} (expected full, header, or off)"
            )),
        }
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`, as used for every checksum in the format.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_answer() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn policy_parse_and_gates() {
        assert_eq!("full".parse::<ChecksumPolicy>(), Ok(ChecksumPolicy::Full));
        assert_eq!(
            "HEADER".parse::<ChecksumPolicy>(),
            Ok(ChecksumPolicy::HeaderAndIndex)
        );
        assert_eq!("off".parse::<ChecksumPolicy>(), Ok(ChecksumPolicy::Off));
        assert!("crc".parse::<ChecksumPolicy>().is_err());

        assert!(ChecksumPolicy::Full.verify_metadata());
        assert!(ChecksumPolicy::Full.verify_payload());
        assert!(ChecksumPolicy::HeaderAndIndex.verify_metadata());
        assert!(!ChecksumPolicy::HeaderAndIndex.verify_payload());
        assert!(!ChecksumPolicy::Off.verify_metadata());
        assert!(!ChecksumPolicy::Off.verify_payload());
        assert_eq!(ChecksumPolicy::default(), ChecksumPolicy::Full);
        for p in [
            ChecksumPolicy::Full,
            ChecksumPolicy::HeaderAndIndex,
            ChecksumPolicy::Off,
        ] {
            assert_eq!(p.name().parse::<ChecksumPolicy>(), Ok(p), "{p:?}");
        }
    }
}
