//! The block codec: LEB128 varints and the [`BlockDecoder`] turning one raw
//! block payload into edges.
//!
//! Decode is the replay hot loop (`BENCH_io`: packs decode ~4× slower than
//! flat binary, CPU-bound), so the production decoder is *batched*: edges
//! are materialized through plain `u32` locals into a small stack batch that
//! is appended per group, with a single-byte fast path for the varint reads
//! — on gap-encoded web graphs almost every record is two one-byte varints.
//! A scalar reference decoder with the per-record `Option<Edge>` state
//! machine is kept alongside; the proptests pin the two byte-for-byte equal
//! (including error/ok agreement) on arbitrary blocks.

use super::BlockEntry;
use crate::error::{GraphError, Result};
use crate::types::Edge;

/// Appends `v` to `buf` as an LEB128 varint.
#[inline]
pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Reads an LEB128 varint from `bytes` at `*pos`, advancing it.
#[inline]
pub(crate) fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*pos)
            .ok_or_else(|| GraphError::Format("varint overruns block payload".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(GraphError::Format("varint longer than 64 bits".into()));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Single-byte fast path: gap-encoded records are almost always `< 0x80`.
/// Multi-byte and overrun cases fall through to [`get_varint`].
#[inline(always)]
fn get_varint_fast(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    if let Some(&b) = bytes.get(*pos) {
        if b < 0x80 {
            *pos += 1;
            return Ok(u64::from(b));
        }
    }
    get_varint(bytes, pos)
}

/// Edges decoded per inner batch before they are appended to the output
/// buffer — small enough to stay in registers/L1, large enough to amortize
/// the `Vec` bookkeeping out of the record loop.
const DECODE_BATCH: usize = 64;

const U32_MAX: u64 = u32::MAX as u64;

#[cold]
fn bad_id(v: u64) -> GraphError {
    GraphError::Format(format!("decoded vertex id {v} exceeds u32 range"))
}

/// Decodes one block payload into a reused edge buffer — a pure function of
/// `(payload, entry)`, holding no state of its own, so any thread can decode
/// any block.
///
/// Both entry points validate the same properties: ids fit `u32`, the
/// payload is consumed exactly, and the first decoded source matches the
/// index entry. Payload CRC is *not* checked here — that belongs to the
/// caller under its [`super::ChecksumPolicy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockDecoder;

impl BlockDecoder {
    /// Batched production decode of `payload` into `out` (cleared first).
    pub fn decode(&self, payload: &[u8], entry: &BlockEntry, out: &mut Vec<Edge>) -> Result<()> {
        out.clear();
        let want = entry.edge_count as usize;
        out.reserve(want);
        let mut pos = 0usize;
        if want > 0 {
            // Block opens with absolute coordinates.
            let src0 = get_varint(payload, &mut pos)?;
            let dst0 = get_varint(payload, &mut pos)?;
            if src0 > U32_MAX || dst0 > U32_MAX {
                return Err(bad_id(src0.max(dst0)));
            }
            let mut src = src0 as u32;
            let mut dst = dst0 as u32;
            out.push(Edge { src, dst });
            let mut batch = [Edge { src: 0, dst: 0 }; DECODE_BATCH];
            let mut produced = 1usize;
            while produced < want {
                let n = (want - produced).min(DECODE_BATCH);
                for slot in &mut batch[..n] {
                    let src_gap = get_varint_fast(payload, &mut pos)?;
                    let field = get_varint_fast(payload, &mut pos)?;
                    if src_gap == 0 {
                        // Same-source run: field is the dst delta.
                        let d = u64::from(dst)
                            .checked_add(field)
                            .ok_or_else(|| bad_id(field))?;
                        if d > U32_MAX {
                            return Err(bad_id(d));
                        }
                        dst = d as u32;
                    } else {
                        // New source: field is the dst absolute.
                        let s = u64::from(src)
                            .checked_add(src_gap)
                            .ok_or_else(|| bad_id(src_gap))?;
                        if s > U32_MAX || field > U32_MAX {
                            return Err(bad_id(s.max(field)));
                        }
                        src = s as u32;
                        dst = field as u32;
                    }
                    *slot = Edge { src, dst };
                }
                out.extend_from_slice(&batch[..n]);
                produced += n;
            }
        }
        finish_checks(payload, pos, entry, out)
    }

    /// Scalar reference decoder: the original per-record loop, kept as the
    /// equivalence oracle for the proptests. Not used on the hot path.
    pub fn decode_scalar(
        &self,
        payload: &[u8],
        entry: &BlockEntry,
        out: &mut Vec<Edge>,
    ) -> Result<()> {
        out.clear();
        out.reserve(entry.edge_count as usize);
        let mut pos = 0usize;
        let mut prev: Option<Edge> = None;
        while out.len() < entry.edge_count as usize {
            let e = match prev {
                None => {
                    let src = get_varint(payload, &mut pos)?;
                    let dst = get_varint(payload, &mut pos)?;
                    if src > U32_MAX || dst > U32_MAX {
                        return Err(bad_id(src.max(dst)));
                    }
                    Edge {
                        src: src as u32,
                        dst: dst as u32,
                    }
                }
                Some(p) => {
                    let src_gap = get_varint(payload, &mut pos)?;
                    let field = get_varint(payload, &mut pos)?;
                    if src_gap == 0 {
                        let dst = u64::from(p.dst)
                            .checked_add(field)
                            .ok_or_else(|| bad_id(field))?;
                        if dst > U32_MAX {
                            return Err(bad_id(dst));
                        }
                        Edge {
                            src: p.src,
                            dst: dst as u32,
                        }
                    } else {
                        let src = u64::from(p.src)
                            .checked_add(src_gap)
                            .ok_or_else(|| bad_id(src_gap))?;
                        if src > U32_MAX || field > U32_MAX {
                            return Err(bad_id(src.max(field)));
                        }
                        Edge {
                            src: src as u32,
                            dst: field as u32,
                        }
                    }
                }
            };
            out.push(e);
            prev = Some(e);
        }
        finish_checks(payload, pos, entry, out)
    }
}

fn finish_checks(payload: &[u8], pos: usize, entry: &BlockEntry, out: &[Edge]) -> Result<()> {
    if pos != payload.len() {
        return Err(GraphError::Format(format!(
            "block at offset {} has {} trailing bytes after its {} edges",
            entry.byte_offset,
            payload.len() - pos,
            entry.edge_count
        )));
    }
    if out.first().map(|e| e.src) != Some(entry.first_src) {
        return Err(GraphError::Format(format!(
            "block at offset {} decodes first src {:?}, index says {}",
            entry.byte_offset,
            out.first().map(|e| e.src),
            entry.first_src
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
        // Overrun is an error, not a panic.
        assert!(get_varint(&buf, &mut pos).is_err());
        let mut pos2 = buf.len();
        assert!(get_varint_fast(&buf, &mut pos2).is_err());
    }

    #[test]
    fn fast_path_matches_slow_path() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 0x7F, 0x80, 0x3FFF, 0x4000, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let (mut a, mut b) = (0usize, 0usize);
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut a).unwrap(), v);
            assert_eq!(get_varint_fast(&buf, &mut b).unwrap(), v);
            assert_eq!(a, b);
        }
    }

    fn entry_for(payload_len: usize, edges: u32, first_src: u32) -> BlockEntry {
        BlockEntry {
            first_src,
            edge_count: edges,
            byte_len: payload_len as u32,
            crc: 0,
            edge_offset: 0,
            byte_offset: 36,
        }
    }

    fn encode(edges: &[Edge]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut prev: Option<Edge> = None;
        for &e in edges {
            match prev {
                None => {
                    put_varint(&mut buf, u64::from(e.src));
                    put_varint(&mut buf, u64::from(e.dst));
                }
                Some(p) => {
                    let gap = e.src - p.src;
                    put_varint(&mut buf, u64::from(gap));
                    if gap == 0 {
                        put_varint(&mut buf, u64::from(e.dst - p.dst));
                    } else {
                        put_varint(&mut buf, u64::from(e.dst));
                    }
                }
            }
            prev = Some(e);
        }
        buf
    }

    #[test]
    fn batched_decode_matches_scalar_on_crafted_blocks() {
        let mut clustered: Vec<Edge> = (0..500u32).map(|i| Edge::new(i / 9, i % 37)).collect();
        clustered.sort_unstable_by_key(|e| (e.src, e.dst));
        let cases: Vec<Vec<Edge>> = vec![
            vec![Edge::new(0, 0)],
            vec![Edge::new(5, 9)],
            clustered,
            vec![
                Edge::new(0, 0),
                Edge::new(0, u32::MAX),
                Edge::new(u32::MAX - 1, 3),
                Edge::new(u32::MAX, u32::MAX),
            ],
        ];
        let d = BlockDecoder;
        for edges in cases {
            let payload = encode(&edges);
            let entry = entry_for(payload.len(), edges.len() as u32, edges[0].src);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            d.decode(&payload, &entry, &mut a).unwrap();
            d.decode_scalar(&payload, &entry, &mut b).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, edges);
        }
    }

    #[test]
    fn both_decoders_reject_the_same_malformed_payloads() {
        let d = BlockDecoder;
        let mut out = Vec::new();
        // Truncated payload.
        let edges = vec![Edge::new(1, 2), Edge::new(3, 4)];
        let payload = encode(&edges);
        let entry = entry_for(payload.len() - 1, 2, 1);
        let truncated = &payload[..payload.len() - 1];
        assert!(d.decode(truncated, &entry, &mut out).is_err());
        assert!(d.decode_scalar(truncated, &entry, &mut out).is_err());
        // Trailing bytes.
        let mut padded = payload.clone();
        padded.push(0);
        let entry = entry_for(padded.len(), 2, 1);
        let e1 = d.decode(&padded, &entry, &mut out).unwrap_err().to_string();
        let e2 = d
            .decode_scalar(&padded, &entry, &mut out)
            .unwrap_err()
            .to_string();
        assert!(e1.contains("trailing"), "{e1}");
        assert_eq!(e1, e2);
        // first_src mismatch.
        let entry = entry_for(payload.len(), 2, 9);
        assert!(d.decode(&payload, &entry, &mut out).is_err());
        assert!(d.decode_scalar(&payload, &entry, &mut out).is_err());
        // Gap overflowing u32.
        let mut over = Vec::new();
        put_varint(&mut over, u64::from(u32::MAX));
        put_varint(&mut over, 0);
        put_varint(&mut over, 1); // src = u32::MAX + 1
        put_varint(&mut over, 0);
        let entry = entry_for(over.len(), 2, u32::MAX);
        let e1 = d.decode(&over, &entry, &mut out).unwrap_err().to_string();
        let e2 = d
            .decode_scalar(&over, &entry, &mut out)
            .unwrap_err()
            .to_string();
        assert!(e1.contains("exceeds u32"), "{e1}");
        assert_eq!(e1, e2);
    }
}
