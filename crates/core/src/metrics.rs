//! Partition quality metrics (paper §II-B): replication factor and relative
//! load balance, computed post-hoc from the edge assignment so that the
//! measurement is identical for every algorithm regardless of what internal
//! state it kept.

use crate::partition::Partitioning;
use crate::state::ReplicaTable;
use clugp_graph::types::Edge;
use serde::Serialize;

/// Quality of a vertex-cut partitioning.
#[derive(Debug, Clone, Serialize)]
pub struct PartitionQuality {
    /// `(1/|V_touched|) Σ_v |P(v)|` — the communication-cost proxy the paper
    /// minimizes (Eq. 1). Vertices that never appear in the stream are
    /// excluded from the denominator.
    pub replication_factor: f64,
    /// `k · max|p_i| / |E|` — the computation-balance constraint τ bounds.
    pub relative_balance: f64,
    /// Total number of vertex replicas `Σ_v |P(v)|`.
    pub total_replicas: u64,
    /// Number of vertices that appear in at least one partition.
    pub touched_vertices: u64,
    /// Number of mirror (non-master) replicas: `Σ_v (|P(v)| − 1)`.
    pub mirrors: u64,
    /// Per-partition edge counts.
    pub loads: Vec<u64>,
}

impl PartitionQuality {
    /// Computes quality for `partitioning` over `edges` (which must be in
    /// the same stream order the partitioner consumed).
    ///
    /// # Panics
    ///
    /// Panics if `edges.len() != partitioning.assignments.len()`, or if the
    /// partitioning's dimensions exceed the internal id space (impossible
    /// for a `Partitioning` produced by an in-tree partitioner, whose own
    /// caps are checked first).
    pub fn compute(edges: &[Edge], partitioning: &Partitioning) -> Self {
        assert_eq!(
            edges.len(),
            partitioning.assignments.len(),
            "edge list and assignment length mismatch"
        );
        let mut table = ReplicaTable::new(partitioning.num_vertices, partitioning.k)
            .expect("partitioning dimensions exceed the internal id space");
        for (e, &p) in edges.iter().zip(&partitioning.assignments) {
            table
                .ensure_vertices(u64::from(e.src.max(e.dst)) + 1)
                .expect("edge id exceeds the internal id space");
            table.insert(e.src, p);
            table.insert(e.dst, p);
        }
        let total = table.total_replicas();
        let touched = table.touched_vertices();
        PartitionQuality {
            replication_factor: table.replication_factor(),
            relative_balance: partitioning.relative_balance(),
            total_replicas: total,
            touched_vertices: touched,
            mirrors: total - touched,
            loads: partitioning.loads.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Vec<Edge> {
        vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)]
    }

    fn partitioning(k: u32, assignments: Vec<u32>) -> Partitioning {
        let mut loads = vec![0u64; k as usize];
        for &p in &assignments {
            loads[p as usize] += 1;
        }
        Partitioning {
            k,
            num_vertices: 3,
            assignments,
            loads,
        }
    }

    #[test]
    fn single_partition_has_rf_one() {
        let q = PartitionQuality::compute(&triangle(), &partitioning(1, vec![0, 0, 0]));
        assert!((q.replication_factor - 1.0).abs() < 1e-12);
        assert_eq!(q.mirrors, 0);
        assert_eq!(q.touched_vertices, 3);
        assert!((q.relative_balance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_spread_replicates_everything() {
        // Each triangle edge on its own partition: every vertex in 2 parts.
        let q = PartitionQuality::compute(&triangle(), &partitioning(3, vec![0, 1, 2]));
        assert!((q.replication_factor - 2.0).abs() < 1e-12);
        assert_eq!(q.mirrors, 3);
    }

    #[test]
    fn isolated_vertices_do_not_dilute_rf() {
        let edges = vec![Edge::new(0, 1)];
        let mut p = partitioning(2, vec![0]);
        p.num_vertices = 100; // 98 isolated vertices
        let q = PartitionQuality::compute(&edges, &p);
        assert_eq!(q.touched_vertices, 2);
        assert!((q.replication_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balance_reflects_skew() {
        let q = PartitionQuality::compute(&triangle(), &partitioning(3, vec![0, 0, 0]));
        assert!((q.relative_balance - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = PartitionQuality::compute(&triangle(), &partitioning(2, vec![0]));
    }

    #[test]
    fn self_loop_counts_one_vertex() {
        let edges = vec![Edge::new(5, 5)];
        let mut p = partitioning(2, vec![1]);
        p.num_vertices = 6;
        let q = PartitionQuality::compute(&edges, &p);
        assert_eq!(q.touched_vertices, 1);
        assert_eq!(q.total_replicas, 1);
    }
}
