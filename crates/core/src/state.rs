//! Mutable partitioning state shared by the algorithms: the replica table
//! (`P(v)` sets) and partition load tracking.

use clugp_graph::types::VertexId;

/// Tracks, for every vertex, the set of partitions holding a replica of it —
/// the `P(v)` of the paper — as one bitset row of `ceil(k/64)` words per
/// vertex plus a per-vertex count.
///
/// This is simultaneously (a) the evaluation structure behind the
/// replication factor and (b) the "global status table" that the
/// heuristic-based baselines (Greedy, HDRF) must maintain, which is exactly
/// the state the paper charges them for in the memory experiment (Fig. 6).
#[derive(Debug, Clone)]
pub struct ReplicaTable {
    words_per_row: usize,
    k: u32,
    bits: Vec<u64>,
    // u32, not u16: a count can reach k, and k is not bounded by u16::MAX.
    counts: Vec<u32>,
    total_replicas: u64,
    touched_vertices: u64,
}

impl ReplicaTable {
    /// Creates an empty table for `num_vertices` vertices and `k` partitions.
    pub fn new(num_vertices: u64, k: u32) -> Self {
        let words_per_row = (k as usize).div_ceil(64).max(1);
        ReplicaTable {
            words_per_row,
            k,
            bits: vec![0; words_per_row * num_vertices as usize],
            counts: vec![0; num_vertices as usize],
            total_replicas: 0,
            touched_vertices: 0,
        }
    }

    /// Number of partitions this table was sized for.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of vertices this table was sized for.
    pub fn num_vertices(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Grows the table to cover at least `num_vertices` vertices.
    pub fn ensure_vertices(&mut self, num_vertices: u64) {
        if num_vertices as usize > self.counts.len() {
            self.counts.resize(num_vertices as usize, 0);
            self.bits
                .resize(self.words_per_row * num_vertices as usize, 0);
        }
    }

    /// Returns `true` if partition `p` holds a replica of `v`.
    #[inline]
    pub fn contains(&self, v: VertexId, p: u32) -> bool {
        debug_assert!(p < self.k);
        let row = v as usize * self.words_per_row;
        self.bits[row + (p as usize >> 6)] & (1u64 << (p & 63)) != 0
    }

    /// Records a replica of `v` in partition `p`.
    /// Returns `true` if the replica is new.
    #[inline]
    pub fn insert(&mut self, v: VertexId, p: u32) -> bool {
        debug_assert!(p < self.k);
        let row = v as usize * self.words_per_row;
        let word = &mut self.bits[row + (p as usize >> 6)];
        let mask = 1u64 << (p & 63);
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        if self.counts[v as usize] == 0 {
            self.touched_vertices += 1;
        }
        self.counts[v as usize] += 1;
        self.total_replicas += 1;
        true
    }

    /// `|P(v)|`: the number of partitions holding `v`.
    #[inline]
    pub fn count(&self, v: VertexId) -> u32 {
        self.counts[v as usize]
    }

    /// `Σ_v |P(v)|` over all vertices.
    pub fn total_replicas(&self) -> u64 {
        self.total_replicas
    }

    /// Number of vertices with at least one replica (i.e. that appeared in
    /// the stream).
    pub fn touched_vertices(&self) -> u64 {
        self.touched_vertices
    }

    /// Replication factor with the touched-vertex denominator (isolated
    /// vertices never enter any partition; see DESIGN.md). Returns 0.0 if no
    /// vertex was touched.
    pub fn replication_factor(&self) -> f64 {
        if self.touched_vertices == 0 {
            0.0
        } else {
            self.total_replicas as f64 / self.touched_vertices as f64
        }
    }

    /// Iterates the partitions holding `v` in ascending order.
    pub fn partitions_of(&self, v: VertexId) -> impl Iterator<Item = u32> + '_ {
        let row = v as usize * self.words_per_row;
        let words = &self.bits[row..row + self.words_per_row];
        let k = self.k;
        words
            .iter()
            .enumerate()
            .flat_map(move |(wi, &w)| BitIter { word: w }.map(move |b| (wi as u32) * 64 + b))
            .filter(move |&p| p < k)
    }

    /// Bytes of heap memory held by the table.
    pub fn memory_bytes(&self) -> usize {
        self.bits.capacity() * 8 + self.counts.capacity() * 4
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(b)
    }
}

/// Per-partition edge counts with O(1) max/min queries maintained lazily.
///
/// `k` is at most a few hundred in all experiments, so a linear rescan on
/// demand is cheap; the struct exists to keep that policy in one place.
#[derive(Debug, Clone)]
pub struct PartitionLoads {
    loads: Vec<u64>,
    total: u64,
}

impl PartitionLoads {
    /// Creates `k` empty partitions.
    pub fn new(k: u32) -> Self {
        PartitionLoads {
            loads: vec![0; k as usize],
            total: 0,
        }
    }

    /// Number of partitions.
    pub fn k(&self) -> u32 {
        self.loads.len() as u32
    }

    /// Adds one edge to partition `p`.
    #[inline]
    pub fn add(&mut self, p: u32) {
        self.loads[p as usize] += 1;
        self.total += 1;
    }

    /// Edge count of partition `p`.
    #[inline]
    pub fn get(&self, p: u32) -> u64 {
        self.loads[p as usize]
    }

    /// Total number of assigned edges.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum partition load.
    pub fn max(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Minimum partition load.
    pub fn min(&self) -> u64 {
        self.loads.iter().copied().min().unwrap_or(0)
    }

    /// Index of a least-loaded partition (lowest id wins ties).
    pub fn argmin(&self) -> u32 {
        let mut best = 0usize;
        for (i, &l) in self.loads.iter().enumerate() {
            if l < self.loads[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Least-loaded partition among `candidates` (first wins ties);
    /// `None` if `candidates` is empty.
    pub fn argmin_among(&self, candidates: impl IntoIterator<Item = u32>) -> Option<u32> {
        let mut best: Option<(u32, u64)> = None;
        for p in candidates {
            let l = self.loads[p as usize];
            match best {
                Some((_, bl)) if bl <= l => {}
                _ => best = Some((p, l)),
            }
        }
        best.map(|(p, _)| p)
    }

    /// Immutable view of the raw load array.
    pub fn as_slice(&self) -> &[u64] {
        &self.loads
    }

    /// Consumes self, returning the load vector.
    pub fn into_vec(self) -> Vec<u64> {
        self.loads
    }

    /// Bytes of heap memory held.
    pub fn memory_bytes(&self) -> usize {
        self.loads.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_count() {
        let mut t = ReplicaTable::new(4, 8);
        assert!(t.insert(0, 3));
        assert!(!t.insert(0, 3));
        assert!(t.insert(0, 7));
        assert_eq!(t.count(0), 2);
        assert_eq!(t.count(1), 0);
        assert_eq!(t.total_replicas(), 2);
        assert_eq!(t.touched_vertices(), 1);
    }

    #[test]
    fn contains_matches_insert() {
        let mut t = ReplicaTable::new(2, 130);
        assert!(!t.contains(1, 129));
        t.insert(1, 129);
        assert!(t.contains(1, 129));
        assert!(!t.contains(1, 64));
    }

    #[test]
    fn partitions_of_iterates_in_order() {
        let mut t = ReplicaTable::new(1, 200);
        for p in [5u32, 64, 130, 199] {
            t.insert(0, p);
        }
        let got: Vec<u32> = t.partitions_of(0).collect();
        assert_eq!(got, vec![5, 64, 130, 199]);
    }

    #[test]
    fn replication_factor_touched_denominator() {
        let mut t = ReplicaTable::new(10, 4);
        t.insert(0, 0);
        t.insert(0, 1);
        t.insert(1, 2);
        // 3 replicas over 2 touched vertices; 8 isolated vertices ignored.
        assert!((t.replication_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_table_rf_zero() {
        let t = ReplicaTable::new(5, 4);
        assert_eq!(t.replication_factor(), 0.0);
    }

    #[test]
    fn ensure_vertices_grows() {
        let mut t = ReplicaTable::new(1, 4);
        t.ensure_vertices(10);
        t.insert(9, 3);
        assert!(t.contains(9, 3));
        assert_eq!(t.num_vertices(), 10);
    }

    #[test]
    fn k_one_uses_single_word() {
        let mut t = ReplicaTable::new(3, 1);
        t.insert(2, 0);
        assert_eq!(t.count(2), 1);
        assert_eq!(t.partitions_of(2).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn memory_bytes_nonzero() {
        let t = ReplicaTable::new(100, 64);
        assert!(t.memory_bytes() >= 100 * 8 + 100 * 4);
    }

    #[test]
    fn count_survives_k_beyond_u16() {
        // A u16 count silently wrapped once |P(v)| exceeded 65535; with
        // k > u16::MAX a single vertex can legitimately reach such counts.
        let k = u32::from(u16::MAX) + 5;
        let mut t = ReplicaTable::new(1, k);
        for p in 0..k {
            assert!(t.insert(0, p));
        }
        assert_eq!(t.count(0), k);
        assert_eq!(t.total_replicas(), u64::from(k));
        assert_eq!(t.partitions_of(0).count(), k as usize);
    }

    #[test]
    fn loads_track_and_argmin() {
        let mut l = PartitionLoads::new(3);
        l.add(1);
        l.add(1);
        l.add(2);
        assert_eq!(l.get(0), 0);
        assert_eq!(l.get(1), 2);
        assert_eq!(l.total(), 3);
        assert_eq!(l.max(), 2);
        assert_eq!(l.min(), 0);
        assert_eq!(l.argmin(), 0);
    }

    #[test]
    fn argmin_among_subset() {
        let mut l = PartitionLoads::new(4);
        l.add(0);
        l.add(2);
        l.add(2);
        assert_eq!(l.argmin_among([2, 0]), Some(0));
        assert_eq!(l.argmin_among([2, 3]), Some(3));
        assert_eq!(l.argmin_among(std::iter::empty()), None);
    }

    #[test]
    fn argmin_among_first_wins_ties() {
        let l = PartitionLoads::new(4);
        assert_eq!(l.argmin_among([3, 1, 2]), Some(3));
    }
}
