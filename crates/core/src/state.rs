//! Mutable partitioning state shared by the algorithms: the replica table
//! (`P(v)` sets) and partition load tracking.

use crate::error::Result;
use crate::vertex_table::{cap_error, DEFAULT_MAX_VERTICES};
use clugp_graph::types::VertexId;

/// Per-vertex replica counts at the narrowest width that can hold `k`:
/// `u16` rows when `k ≤ u16::MAX` (every experiment in the paper), `u32`
/// rows beyond. A count is bounded by `k`, so the width is decided once at
/// construction — half the count bytes on the common path, still safe for
/// `k > 65535`.
#[derive(Debug, Clone)]
enum Counts {
    Narrow(Vec<u16>),
    Wide(Vec<u32>),
}

impl Counts {
    fn with_len(len: usize, k: u32) -> Self {
        if k <= u32::from(u16::MAX) {
            Counts::Narrow(vec![0; len])
        } else {
            Counts::Wide(vec![0; len])
        }
    }

    fn len(&self) -> usize {
        match self {
            Counts::Narrow(v) => v.len(),
            Counts::Wide(v) => v.len(),
        }
    }

    fn resize(&mut self, len: usize) {
        match self {
            Counts::Narrow(v) => v.resize(len, 0),
            Counts::Wide(v) => v.resize(len, 0),
        }
    }

    #[inline]
    fn get(&self, v: usize) -> u32 {
        match self {
            Counts::Narrow(c) => u32::from(c[v]),
            Counts::Wide(c) => c[v],
        }
    }

    /// Increments the count of `v`, returning the previous value.
    #[inline]
    fn bump(&mut self, v: usize) -> u32 {
        match self {
            // Cannot wrap: counts are bounded by k ≤ u16::MAX in this arm.
            Counts::Narrow(c) => {
                let prev = c[v];
                c[v] = prev + 1;
                u32::from(prev)
            }
            Counts::Wide(c) => {
                let prev = c[v];
                c[v] = prev + 1;
                prev
            }
        }
    }

    #[inline]
    fn set(&mut self, v: usize, c: u32) {
        match self {
            // Safe: counts are bounded by k ≤ u16::MAX in this arm.
            Counts::Narrow(vec) => vec[v] = c as u16,
            Counts::Wide(vec) => vec[v] = c,
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            Counts::Narrow(v) => v.capacity() * 2,
            Counts::Wide(v) => v.capacity() * 4,
        }
    }
}

/// Tracks, for every vertex, the set of partitions holding a replica of it —
/// the `P(v)` of the paper — as one bitset row of `ceil(k/64)` words per
/// vertex plus a per-vertex count.
///
/// This is simultaneously (a) the evaluation structure behind the
/// replication factor and (b) the "global status table" that the
/// heuristic-based baselines (Greedy, HDRF) must maintain, which is exactly
/// the state the paper charges them for in the memory experiment (Fig. 6).
///
/// Vertices are compact internal ids (see `clugp_graph::idmap`); sizing is
/// checked (`k × n` cannot overflow into a silent misallocation) and growth
/// is capped by a `max_vertices` limit, so adversarial id/dimension requests
/// fail with a clean error instead of aborting.
#[derive(Debug, Clone)]
pub struct ReplicaTable {
    words_per_row: usize,
    k: u32,
    bits: Vec<u64>,
    counts: Counts,
    limit: u64,
    total_replicas: u64,
    touched_vertices: u64,
}

/// Checked `words_per_row × num_vertices`, failing cleanly when the product
/// exceeds the cap-independent addressable size (the satellite guard for
/// 32-bit-usize targets).
fn checked_words(words_per_row: usize, num_vertices: u64, k: u32) -> Result<usize> {
    (words_per_row as u64)
        .checked_mul(num_vertices)
        .and_then(|w| usize::try_from(w).ok())
        .ok_or_else(|| {
            crate::error::PartitionError::InvalidParam(format!(
                "replica table of k={k} × n={num_vertices} overflows addressable memory"
            ))
        })
}

impl ReplicaTable {
    /// Creates an empty table for `num_vertices` vertices and `k` partitions
    /// with the [`DEFAULT_MAX_VERTICES`] growth limit.
    ///
    /// # Errors
    ///
    /// [`crate::error::PartitionError::InvalidParam`] if `num_vertices`
    /// exceeds the limit or `k × n` overflows addressable memory.
    pub fn new(num_vertices: u64, k: u32) -> Result<Self> {
        Self::with_limit(num_vertices, k, DEFAULT_MAX_VERTICES)
    }

    /// Creates an empty table with an explicit `max_vertices` growth limit.
    pub fn with_limit(num_vertices: u64, k: u32, limit: u64) -> Result<Self> {
        let limit = limit.min(DEFAULT_MAX_VERTICES);
        if num_vertices > limit {
            return Err(cap_error("num_vertices", num_vertices, limit));
        }
        let words_per_row = (k as usize).div_ceil(64).max(1);
        let words = checked_words(words_per_row, num_vertices, k)?;
        Ok(ReplicaTable {
            words_per_row,
            k,
            bits: vec![0; words],
            counts: Counts::with_len(num_vertices as usize, k),
            limit,
            total_replicas: 0,
            touched_vertices: 0,
        })
    }

    /// Number of partitions this table was sized for.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of vertices this table was sized for.
    pub fn num_vertices(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Grows the table to cover at least `num_vertices` vertices.
    ///
    /// # Errors
    ///
    /// [`crate::error::PartitionError::InvalidParam`] if the request exceeds
    /// the `max_vertices` limit or overflows addressable memory.
    #[inline]
    pub fn ensure_vertices(&mut self, num_vertices: u64) -> Result<()> {
        if num_vertices as usize <= self.counts.len() {
            return Ok(());
        }
        self.grow(num_vertices)
    }

    #[cold]
    fn grow(&mut self, num_vertices: u64) -> Result<()> {
        if num_vertices > self.limit {
            return Err(cap_error("num_vertices", num_vertices, self.limit));
        }
        let words = checked_words(self.words_per_row, num_vertices, self.k)?;
        self.counts.resize(num_vertices as usize);
        self.bits.resize(words, 0);
        Ok(())
    }

    /// Returns `true` if partition `p` holds a replica of `v`.
    #[inline]
    pub fn contains(&self, v: VertexId, p: u32) -> bool {
        debug_assert!(p < self.k);
        let row = v as usize * self.words_per_row;
        self.bits[row + (p as usize >> 6)] & (1u64 << (p & 63)) != 0
    }

    /// Records a replica of `v` in partition `p`.
    /// Returns `true` if the replica is new.
    #[inline]
    pub fn insert(&mut self, v: VertexId, p: u32) -> bool {
        debug_assert!(p < self.k);
        let row = v as usize * self.words_per_row;
        let word = &mut self.bits[row + (p as usize >> 6)];
        let mask = 1u64 << (p & 63);
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        if self.counts.bump(v as usize) == 0 {
            self.touched_vertices += 1;
        }
        self.total_replicas += 1;
        true
    }

    /// `|P(v)|`: the number of partitions holding `v`.
    #[inline]
    pub fn count(&self, v: VertexId) -> u32 {
        self.counts.get(v as usize)
    }

    /// `Σ_v |P(v)|` over all vertices.
    pub fn total_replicas(&self) -> u64 {
        self.total_replicas
    }

    /// Number of vertices with at least one replica (i.e. that appeared in
    /// the stream).
    pub fn touched_vertices(&self) -> u64 {
        self.touched_vertices
    }

    /// Replication factor with the touched-vertex denominator (isolated
    /// vertices never enter any partition; see DESIGN.md). Returns 0.0 if no
    /// vertex was touched.
    pub fn replication_factor(&self) -> f64 {
        if self.touched_vertices == 0 {
            0.0
        } else {
            self.total_replicas as f64 / self.touched_vertices as f64
        }
    }

    /// Iterates the partitions holding `v` in ascending order.
    pub fn partitions_of(&self, v: VertexId) -> impl Iterator<Item = u32> + '_ {
        let row = v as usize * self.words_per_row;
        let words = &self.bits[row..row + self.words_per_row];
        let k = self.k;
        words
            .iter()
            .enumerate()
            .flat_map(move |(wi, &w)| BitIter { word: w }.map(move |b| (wi as u32) * 64 + b))
            .filter(move |&p| p < k)
    }

    /// Bitset words per row (`ceil(k/64)`).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Copies `v`'s bitset row into `out` (`words_per_row()` words).
    ///
    /// # Panics
    ///
    /// Panics if `v` is beyond the table or `out` is too short.
    pub fn export_row(&self, v: VertexId, out: &mut [u64]) {
        let row = v as usize * self.words_per_row;
        out[..self.words_per_row].copy_from_slice(&self.bits[row..row + self.words_per_row]);
    }

    /// Overwrites `v`'s bitset row with `words`, fixing the per-vertex count
    /// and the global replica/touched tallies. This is the bulk ingress used
    /// by the sharded state service and the placement snapshot loader; bits
    /// at positions `>= k` must be clear.
    ///
    /// # Panics
    ///
    /// Panics if `v` is beyond the table or `words` is too short.
    pub fn import_row(&mut self, v: VertexId, words: &[u64]) {
        let row = v as usize * self.words_per_row;
        let old: u32 = self.bits[row..row + self.words_per_row]
            .iter()
            .map(|w| w.count_ones())
            .sum();
        let new: u32 = words[..self.words_per_row]
            .iter()
            .map(|w| w.count_ones())
            .sum();
        self.bits[row..row + self.words_per_row].copy_from_slice(&words[..self.words_per_row]);
        self.counts.set(v as usize, new);
        self.total_replicas = self.total_replicas - u64::from(old) + u64::from(new);
        match (old, new) {
            (0, n) if n > 0 => self.touched_vertices += 1,
            (o, 0) if o > 0 => self.touched_vertices -= 1,
            _ => {}
        }
    }

    /// Bytes of heap memory held by the table.
    pub fn memory_bytes(&self) -> usize {
        self.bits.capacity() * 8 + self.counts.memory_bytes()
    }

    /// What the pre-compaction dense layout (fixed `u32` counts) would have
    /// held for the same dimensions — the honest comparison point of the
    /// `experiments memory` trajectory artifact.
    pub fn memory_bytes_seed_layout(&self) -> usize {
        self.bits.capacity() * 8 + self.counts.len() * 4
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(b)
    }
}

/// Per-partition edge counts with O(1) max/min queries maintained lazily.
///
/// `k` is at most a few hundred in all experiments, so a linear rescan on
/// demand is cheap; the struct exists to keep that policy in one place.
#[derive(Debug, Clone)]
pub struct PartitionLoads {
    loads: Vec<u64>,
    total: u64,
}

impl PartitionLoads {
    /// Creates `k` empty partitions.
    pub fn new(k: u32) -> Self {
        PartitionLoads {
            loads: vec![0; k as usize],
            total: 0,
        }
    }

    /// Rebuilds the tracker from a load vector (one entry per partition),
    /// e.g. when a distributed worker resumes from a token's loads.
    pub(crate) fn from_vec(loads: Vec<u64>) -> Self {
        let total = loads.iter().sum();
        PartitionLoads { loads, total }
    }

    /// Number of partitions.
    pub fn k(&self) -> u32 {
        self.loads.len() as u32
    }

    /// Adds one edge to partition `p`.
    #[inline]
    pub fn add(&mut self, p: u32) {
        self.loads[p as usize] += 1;
        self.total += 1;
    }

    /// Edge count of partition `p`.
    #[inline]
    pub fn get(&self, p: u32) -> u64 {
        self.loads[p as usize]
    }

    /// Total number of assigned edges.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum partition load.
    pub fn max(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Minimum partition load.
    pub fn min(&self) -> u64 {
        self.loads.iter().copied().min().unwrap_or(0)
    }

    /// Index of a least-loaded partition (lowest id wins ties).
    pub fn argmin(&self) -> u32 {
        let mut best = 0usize;
        for (i, &l) in self.loads.iter().enumerate() {
            if l < self.loads[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Least-loaded partition among `candidates` (first wins ties);
    /// `None` if `candidates` is empty.
    pub fn argmin_among(&self, candidates: impl IntoIterator<Item = u32>) -> Option<u32> {
        let mut best: Option<(u32, u64)> = None;
        for p in candidates {
            let l = self.loads[p as usize];
            match best {
                Some((_, bl)) if bl <= l => {}
                _ => best = Some((p, l)),
            }
        }
        best.map(|(p, _)| p)
    }

    /// Immutable view of the raw load array.
    pub fn as_slice(&self) -> &[u64] {
        &self.loads
    }

    /// Consumes self, returning the load vector.
    pub fn into_vec(self) -> Vec<u64> {
        self.loads
    }

    /// Bytes of heap memory held.
    pub fn memory_bytes(&self) -> usize {
        self.loads.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_count() {
        let mut t = ReplicaTable::new(4, 8).unwrap();
        assert!(t.insert(0, 3));
        assert!(!t.insert(0, 3));
        assert!(t.insert(0, 7));
        assert_eq!(t.count(0), 2);
        assert_eq!(t.count(1), 0);
        assert_eq!(t.total_replicas(), 2);
        assert_eq!(t.touched_vertices(), 1);
    }

    #[test]
    fn contains_matches_insert() {
        let mut t = ReplicaTable::new(2, 130).unwrap();
        assert!(!t.contains(1, 129));
        t.insert(1, 129);
        assert!(t.contains(1, 129));
        assert!(!t.contains(1, 64));
    }

    #[test]
    fn partitions_of_iterates_in_order() {
        let mut t = ReplicaTable::new(1, 200).unwrap();
        for p in [5u32, 64, 130, 199] {
            t.insert(0, p);
        }
        let got: Vec<u32> = t.partitions_of(0).collect();
        assert_eq!(got, vec![5, 64, 130, 199]);
    }

    #[test]
    fn replication_factor_touched_denominator() {
        let mut t = ReplicaTable::new(10, 4).unwrap();
        t.insert(0, 0);
        t.insert(0, 1);
        t.insert(1, 2);
        // 3 replicas over 2 touched vertices; 8 isolated vertices ignored.
        assert!((t.replication_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_table_rf_zero() {
        let t = ReplicaTable::new(5, 4).unwrap();
        assert_eq!(t.replication_factor(), 0.0);
    }

    #[test]
    fn ensure_vertices_grows() {
        let mut t = ReplicaTable::new(1, 4).unwrap();
        t.ensure_vertices(10).unwrap();
        t.insert(9, 3);
        assert!(t.contains(9, 3));
        assert_eq!(t.num_vertices(), 10);
    }

    #[test]
    fn k_one_uses_single_word() {
        let mut t = ReplicaTable::new(3, 1).unwrap();
        t.insert(2, 0);
        assert_eq!(t.count(2), 1);
        assert_eq!(t.partitions_of(2).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn memory_bytes_nonzero() {
        let t = ReplicaTable::new(100, 64).unwrap();
        assert!(t.memory_bytes() >= 100 * 8 + 100 * 2);
    }

    #[test]
    fn count_survives_k_beyond_u16() {
        // A u16 count silently wrapped once |P(v)| exceeded 65535; with
        // k > u16::MAX a single vertex can legitimately reach such counts.
        let k = u32::from(u16::MAX) + 5;
        let mut t = ReplicaTable::new(1, k).unwrap();
        for p in 0..k {
            assert!(t.insert(0, p));
        }
        assert_eq!(t.count(0), k);
        assert_eq!(t.total_replicas(), u64::from(k));
        assert_eq!(t.partitions_of(0).count(), k as usize);
    }

    #[test]
    fn oversized_dimension_requests_fail_cleanly() {
        use crate::error::PartitionError;
        // A stream lying about its vertex count (u64::MAX) used to abort or
        // OOM in the `words_per_row * n as usize` sizing; now it is a clean
        // InvalidParam at construction and at growth.
        assert!(matches!(
            ReplicaTable::new(u64::MAX, 8),
            Err(PartitionError::InvalidParam(_))
        ));
        let mut t = ReplicaTable::new(4, 8).unwrap();
        assert!(matches!(
            t.ensure_vertices(u64::MAX),
            Err(PartitionError::InvalidParam(_))
        ));
        // The table stays usable after a rejected growth.
        assert!(t.insert(3, 1));
    }

    #[test]
    fn configurable_cap_bounds_growth() {
        let mut t = ReplicaTable::with_limit(4, 8, 100).unwrap();
        t.ensure_vertices(100).unwrap();
        assert!(t.ensure_vertices(101).is_err());
        assert!(ReplicaTable::with_limit(101, 8, 100).is_err());
    }

    #[test]
    fn counts_are_narrow_for_small_k_and_wide_beyond_u16() {
        // k ≤ u16::MAX → 2-byte counts; the seed layout charged 4 bytes.
        let narrow = ReplicaTable::new(1000, 64).unwrap();
        assert!(narrow.memory_bytes() < narrow.memory_bytes_seed_layout());
        assert_eq!(
            narrow.memory_bytes_seed_layout() - narrow.memory_bytes(),
            1000 * 2
        );
        // k > u16::MAX → 4-byte counts; identical to the seed layout.
        let wide = ReplicaTable::new(10, u32::from(u16::MAX) + 5).unwrap();
        assert_eq!(wide.memory_bytes(), wide.memory_bytes_seed_layout());
    }

    #[test]
    fn loads_track_and_argmin() {
        let mut l = PartitionLoads::new(3);
        l.add(1);
        l.add(1);
        l.add(2);
        assert_eq!(l.get(0), 0);
        assert_eq!(l.get(1), 2);
        assert_eq!(l.total(), 3);
        assert_eq!(l.max(), 2);
        assert_eq!(l.min(), 0);
        assert_eq!(l.argmin(), 0);
    }

    #[test]
    fn argmin_among_subset() {
        let mut l = PartitionLoads::new(4);
        l.add(0);
        l.add(2);
        l.add(2);
        assert_eq!(l.argmin_among([2, 0]), Some(0));
        assert_eq!(l.argmin_among([2, 3]), Some(3));
        assert_eq!(l.argmin_among(std::iter::empty()), None);
    }

    #[test]
    fn argmin_among_first_wins_ties() {
        let l = PartitionLoads::new(4);
        assert_eq!(l.argmin_among([3, 1, 2]), Some(3));
    }
}
