//! [`VertexTable`]: the dense per-vertex state array every partitioner
//! keys by compact internal [`VertexId`]s.
//!
//! Before this layer, per-vertex state was grow-on-demand `Vec`s indexed by
//! raw stream ids: one adversarial (or merely sparse) id forced a dense
//! allocation out to that id, and nothing bounded the growth. `VertexTable`
//! centralizes the policy:
//!
//! * indices are internal `u32` ids — sparse external ids must come through
//!   `clugp_graph::idmap` first, so the table's length tracks the *distinct*
//!   vertex count, not the id range;
//! * growth past a configurable `max_vertices` limit is a clean
//!   [`PartitionError::InvalidParam`], never an abort or OOM;
//! * sizing arithmetic is checked, so oversized requests fail cleanly on
//!   32-bit-usize targets too;
//! * [`VertexTable::memory_bytes`] gives the honest capacity-based footprint
//!   the Fig. 6 memory experiment charges.

use crate::error::{PartitionError, Result};
use clugp_graph::types::VertexId;

/// Default limit on internal vertex ids: the full `u32` index space minus
/// the sentinel value (`u32::MAX` marks "no cluster" / "not assigned"
/// across the workspace). Production deployments with a memory budget
/// configure a smaller cap per partitioner.
pub const DEFAULT_MAX_VERTICES: u64 = u32::MAX as u64;

/// Builds the `InvalidParam` error for an id/count that exceeds a cap.
pub(crate) fn cap_error(what: &str, value: u64, limit: u64) -> PartitionError {
    PartitionError::InvalidParam(format!(
        "{what} {value} exceeds the max_vertices cap {limit}; \
         remap sparse external ids through clugp_graph::idmap or raise the cap"
    ))
}

/// Dense per-vertex state keyed by internal [`VertexId`], with pre-sizing
/// from stream hints, capped grow-on-demand, and honest memory accounting.
#[derive(Debug, Clone)]
pub struct VertexTable<T> {
    data: Vec<T>,
    fill: T,
    limit: u64,
}

impl<T: Clone> VertexTable<T> {
    /// Creates a table pre-sized to `hint` entries of `fill`, limited to
    /// [`DEFAULT_MAX_VERTICES`].
    ///
    /// # Errors
    ///
    /// [`PartitionError::InvalidParam`] if `hint` exceeds the limit.
    pub fn new(hint: u64, fill: T) -> Result<Self> {
        Self::with_limit(hint, fill, DEFAULT_MAX_VERTICES)
    }

    /// Creates a table with an explicit `max_vertices` limit (clamped to
    /// [`DEFAULT_MAX_VERTICES`] — internal ids are `u32`).
    pub fn with_limit(hint: u64, fill: T, limit: u64) -> Result<Self> {
        let limit = limit.min(DEFAULT_MAX_VERTICES);
        if hint > limit {
            return Err(cap_error("num_vertices hint", hint, limit));
        }
        // hint <= limit <= u32::MAX always fits usize on supported targets,
        // but keep the conversion checked for 16/32-bit-usize safety.
        let len = usize::try_from(hint).map_err(|_| cap_error("num_vertices hint", hint, limit))?;
        Ok(VertexTable {
            data: vec![fill.clone(); len],
            fill,
            limit,
        })
    }

    /// Ensures index `v` is valid, growing with the fill value if needed.
    ///
    /// # Errors
    ///
    /// [`PartitionError::InvalidParam`] if `v` is at or past the limit.
    #[inline]
    pub fn ensure(&mut self, v: VertexId) -> Result<()> {
        if (v as usize) < self.data.len() {
            return Ok(());
        }
        self.grow(v)
    }

    #[cold]
    fn grow(&mut self, v: VertexId) -> Result<()> {
        if u64::from(v) >= self.limit {
            return Err(cap_error("vertex id", u64::from(v), self.limit));
        }
        self.data.resize(v as usize + 1, self.fill.clone());
        Ok(())
    }

    /// Grows the table to at least `n` entries (hint-driven growth).
    pub fn ensure_len(&mut self, n: u64) -> Result<()> {
        if n > self.limit {
            return Err(cap_error("num_vertices", n, self.limit));
        }
        if n as usize > self.data.len() {
            self.data.resize(n as usize, self.fill.clone());
        }
        Ok(())
    }

    /// Number of entries (= one past the highest ensured id).
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// `true` if no vertex has been ensured.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The configured growth limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Borrow the dense state slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the dense state slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterates the dense state.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Consumes the table, returning the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Heap bytes held (capacity-based, the Fig. 6 quantity).
    pub fn memory_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<T>()
    }
}

impl<T> std::ops::Index<VertexId> for VertexTable<T> {
    type Output = T;

    #[inline]
    fn index(&self, v: VertexId) -> &T {
        &self.data[v as usize]
    }
}

impl<T> std::ops::IndexMut<VertexId> for VertexTable<T> {
    #[inline]
    fn index_mut(&mut self, v: VertexId) -> &mut T {
        &mut self.data[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presizes_and_indexes() {
        let mut t: VertexTable<u32> = VertexTable::new(3, 7).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t[2], 7);
        t[1] = 9;
        assert_eq!(t.as_slice(), &[7, 9, 7]);
        assert_eq!(t.into_vec(), vec![7, 9, 7]);
    }

    #[test]
    fn grows_on_demand_with_fill() {
        let mut t: VertexTable<bool> = VertexTable::new(0, false).unwrap();
        t.ensure(4).unwrap();
        assert_eq!(t.len(), 5);
        assert!(!t[4]);
        t.ensure(2).unwrap(); // no-op
        assert_eq!(t.len(), 5);
        t.ensure_len(10).unwrap();
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn cap_rejects_growth_cleanly() {
        let mut t: VertexTable<u32> = VertexTable::with_limit(0, 0, 100).unwrap();
        t.ensure(99).unwrap();
        let err = t.ensure(100).unwrap_err();
        assert!(matches!(err, PartitionError::InvalidParam(_)));
        assert!(err.to_string().contains("max_vertices cap 100"));
        assert!(t.ensure_len(101).is_err());
        // The table is still usable below the cap.
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn oversized_hint_rejected_at_construction() {
        assert!(VertexTable::<u32>::new(u64::MAX, 0).is_err());
        assert!(VertexTable::<u32>::with_limit(11, 0, 10).is_err());
    }

    #[test]
    fn default_limit_reserves_the_sentinel() {
        let mut t: VertexTable<u32> = VertexTable::new(0, 0).unwrap();
        // u32::MAX is the workspace-wide sentinel; it must never be a valid
        // index even under the default limit.
        assert!(t.ensure(u32::MAX).is_err());
    }

    #[test]
    fn memory_is_capacity_based() {
        let t: VertexTable<u64> = VertexTable::new(100, 0).unwrap();
        assert!(t.memory_bytes() >= 800);
        assert_eq!(t.iter().count(), 100);
        assert!(!t.is_empty());
        assert_eq!(t.limit(), DEFAULT_MAX_VERTICES);
    }
}
