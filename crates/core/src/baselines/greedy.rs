//! Greedy — the PowerGraph "oblivious" heuristic (Gonzalez et al., OSDI'12).
//!
//! For each edge `(u, v)` with replica sets `A(u)`, `A(v)`:
//!
//! 1. If `A(u) ∩ A(v) ≠ ∅`: least-loaded partition in the intersection.
//! 2. Else if both nonempty: least-loaded partition in `A(u) ∪ A(v)`.
//! 3. Else if exactly one nonempty: least-loaded partition in that set.
//! 4. Else: least-loaded partition overall.
//!
//! The replica table is the "global status table" the paper blames for the
//! heuristics' cost: every decision reads it and every placement writes it.

use crate::error::Result;
use crate::memory::MemoryReport;
use crate::partition::{PartitionRun, Partitioning, Timings};
use crate::partitioner::{start_run, Partitioner};
use crate::state::{PartitionLoads, ReplicaTable};
use crate::vertex_table::DEFAULT_MAX_VERTICES;
use clugp_graph::stream::{chunk_edges, try_for_each_chunk, RestreamableStream};
use clugp_graph::types::Edge;

/// Per-edge greedy kernel: the four-case PowerGraph rule over the replica
/// table and loads, inserting both endpoints and returning the partition.
/// Shared by the monolithic loop and the distributed worker so both paths
/// stay bit-identical.
#[inline]
pub(crate) fn greedy_edge(
    e: Edge,
    replicas: &mut ReplicaTable,
    loads: &mut PartitionLoads,
) -> Result<u32> {
    replicas.ensure_vertices(u64::from(e.src.max(e.dst)) + 1)?;
    let cu = replicas.count(e.src);
    let cv = replicas.count(e.dst);
    let p = if cu > 0 && cv > 0 {
        let both = loads.argmin_among(
            replicas
                .partitions_of(e.src)
                .filter(|&p| replicas.contains(e.dst, p)),
        );
        match both {
            Some(p) => p, // case 1: intersection
            None => {
                // case 2: union of the two replica sets
                loads
                    .argmin_among(
                        replicas
                            .partitions_of(e.src)
                            .chain(replicas.partitions_of(e.dst)),
                    )
                    .expect("both sets nonempty")
            }
        }
    } else if cu > 0 {
        loads
            .argmin_among(replicas.partitions_of(e.src))
            .expect("A(u) nonempty")
    } else if cv > 0 {
        loads
            .argmin_among(replicas.partitions_of(e.dst))
            .expect("A(v) nonempty")
    } else {
        loads.argmin() // case 4: fresh edge
    };
    replicas.insert(e.src, p);
    replicas.insert(e.dst, p);
    loads.add(p);
    Ok(p)
}

/// The PowerGraph greedy (oblivious) partitioner.
#[derive(Debug, Clone)]
pub struct Greedy {
    max_vertices: u64,
}

impl Default for Greedy {
    fn default() -> Self {
        Greedy::new()
    }
}

impl Greedy {
    /// Creates the greedy partitioner.
    pub fn new() -> Self {
        Greedy {
            max_vertices: DEFAULT_MAX_VERTICES,
        }
    }

    /// Caps the internal vertex id space: a stream whose ids reach the cap
    /// fails with `InvalidParam` instead of growing the replica table
    /// without bound (see `crate::vertex_table`).
    pub fn with_max_vertices(max_vertices: u64) -> Self {
        Greedy { max_vertices }
    }
}

impl Partitioner for Greedy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn partition(&mut self, stream: &mut dyn RestreamableStream, k: u32) -> Result<PartitionRun> {
        let start = std::time::Instant::now();
        let (n, m) = start_run(stream, k)?;
        let mut replicas = ReplicaTable::with_limit(n, k, self.max_vertices)?;
        let mut loads = PartitionLoads::new(k);
        let mut assignments = Vec::with_capacity(m as usize);

        try_for_each_chunk(stream, chunk_edges(), |chunk| -> Result<()> {
            for &e in chunk {
                let p = greedy_edge(e, &mut replicas, &mut loads)?;
                assignments.push(p);
            }
            Ok(())
        })?;

        let mut memory = MemoryReport::new();
        memory.add("replica-table", replicas.memory_bytes());
        memory.add("loads", loads.memory_bytes());
        Ok(PartitionRun {
            partitioning: Partitioning {
                k,
                num_vertices: n.max(replicas.num_vertices()),
                assignments,
                loads: loads.into_vec(),
            },
            memory,
            timings: Timings {
                total: start.elapsed(),
                ..Default::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use clugp_graph::stream::InMemoryStream;
    use clugp_graph::types::Edge;

    #[test]
    fn path_graph_stays_on_one_partition() {
        // A path streamed in order always hits case 1/3: no replicas needed
        // beyond the shared endpoints, and the whole path can sit together
        // until balance pulls it apart.
        let edges: Vec<Edge> = (0..20).map(|i| Edge::new(i, i + 1)).collect();
        let mut s = InMemoryStream::from_edges(edges.clone());
        let run = Greedy::new().partition(&mut s, 4).unwrap();
        run.partitioning.validate().unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        // A fresh chain keeps extending the same partition.
        assert!(q.replication_factor < 1.3, "rf = {}", q.replication_factor);
    }

    #[test]
    fn triangle_closes_in_intersection() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)];
        let mut s = InMemoryStream::from_edges(edges.clone());
        let run = Greedy::new().partition(&mut s, 4).unwrap();
        // All three edges in one partition: RF exactly 1.
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        assert!((q.replication_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fresh_edges_balance_loads() {
        // Disjoint edges: every edge is case 4 → least-loaded → perfect balance.
        let edges: Vec<Edge> = (0..40).map(|i| Edge::new(2 * i, 2 * i + 1)).collect();
        let mut s = InMemoryStream::from_edges(edges);
        let run = Greedy::new().partition(&mut s, 4).unwrap();
        assert!(run.partitioning.loads.iter().all(|&l| l == 10));
    }

    #[test]
    fn beats_hashing_on_communities() {
        use clugp_graph::gen::{generate_copying_model, CopyingModelConfig};
        use clugp_graph::order::{ordered_edges, StreamOrder};
        let g = generate_copying_model(&CopyingModelConfig {
            vertices: 2_000,
            ..Default::default()
        });
        let edges = ordered_edges(&g, StreamOrder::Random(5));
        let mut s = InMemoryStream::new(g.num_vertices(), edges.clone());
        let greedy = Greedy::new().partition(&mut s, 16).unwrap();
        let hashing = crate::baselines::Hashing::default()
            .partition(&mut s, 16)
            .unwrap();
        let qg = PartitionQuality::compute(&edges, &greedy.partitioning);
        let qh = PartitionQuality::compute(&edges, &hashing.partitioning);
        assert!(
            qg.replication_factor < qh.replication_factor,
            "greedy {} should beat hashing {}",
            qg.replication_factor,
            qh.replication_factor
        );
    }

    #[test]
    fn id_explosion_is_a_clean_error() {
        use crate::error::PartitionError;
        // An id past the configured cap mid-stream: InvalidParam, not OOM.
        let mut s = InMemoryStream::new(10, vec![Edge::new(0, 1), Edge::new(5_000, 2)]);
        let err = Greedy::with_max_vertices(100)
            .partition(&mut s, 4)
            .unwrap_err();
        assert!(matches!(err, PartitionError::InvalidParam(_)));
        // A stream claiming u64::MAX vertices up front: rejected at sizing.
        let mut lying = InMemoryStream::new(u64::MAX, vec![Edge::new(0, 1)]);
        assert!(matches!(
            Greedy::new().partition(&mut lying, 4),
            Err(PartitionError::InvalidParam(_))
        ));
    }

    #[test]
    fn memory_includes_replica_table() {
        let edges = vec![Edge::new(0, 1)];
        let mut s = InMemoryStream::from_edges(edges);
        let run = Greedy::new().partition(&mut s, 4).unwrap();
        assert!(run.memory.get("replica-table").unwrap() > 0);
    }
}
