//! Grid (2D constrained) hashing — the PowerGraph/GraphBuilder "grid"
//! vertex-cut (Jain et al., GRADES'13). Not part of the paper's comparison,
//! but a standard low-cost baseline an adopter of this library would expect.
//!
//! Partitions are arranged in a `r × r` grid (`r = ceil(sqrt(k))`). Vertex
//! `v` hashes to the grid cell `(h(v) / r, h(v) mod r)` and its *constraint
//! set* is that cell's row plus column; an edge is placed on the
//! least-loaded partition in the intersection of its endpoints' constraint
//! sets (which is non-empty by construction). Replication is bounded by
//! `2r − 1 ≈ 2√k` per vertex — better worst-case than hashing, no global
//! state beyond the load array.

use crate::error::Result;
use crate::memory::MemoryReport;
use crate::partition::{PartitionRun, Partitioning, Timings};
use crate::partitioner::{mix64, start_run, Partitioner};
use crate::state::PartitionLoads;
use clugp_graph::stream::{chunk_edges, for_each_chunk, RestreamableStream};
use clugp_graph::types::VertexId;

/// Default hash seed (shared with the distributed engine so
/// `DistAlgo::grid()` matches `Grid::default()`).
pub(crate) const DEFAULT_SEED: u64 = 0x62D;

/// The grid-hashing partitioner.
#[derive(Debug, Clone)]
pub struct Grid {
    seed: u64,
}

impl Grid {
    /// Creates a grid partitioner with the given hash seed.
    pub fn new(seed: u64) -> Self {
        Grid { seed }
    }
}

impl Default for Grid {
    fn default() -> Self {
        Grid::new(DEFAULT_SEED)
    }
}

/// Per-edge grid kernel: least-loaded partition in the intersection of the
/// endpoints' constraint sets, union as fallback. Shared by the monolithic
/// loop and the distributed worker so both paths stay bit-identical.
#[inline]
pub(crate) fn grid_edge(
    e: clugp_graph::types::Edge,
    seed: u64,
    r: u64,
    k: u32,
    loads: &PartitionLoads,
    cs_u: &mut Vec<u32>,
    cs_v: &mut Vec<u32>,
) -> u32 {
    constraint_set(e.src, seed, r, k, cs_u);
    constraint_set(e.dst, seed, r, k, cs_v);
    loads
        .argmin_among(cs_u.iter().copied().filter(|p| cs_v.contains(p)))
        // Overhung grids may have disjoint sets; fall back to the
        // union (still bounded replication).
        .or_else(|| loads.argmin_among(cs_u.iter().chain(cs_v.iter()).copied()))
        .expect("constraint sets are never empty")
}

/// Grid dimension for `k` partitions.
#[inline]
pub(crate) fn grid_dim(k: u32) -> u64 {
    (f64::from(k)).sqrt().ceil() as u64
}

/// Constraint set of `v`: all partitions in the same grid row or column as
/// `v`'s home cell, filtered to ids `< k` (the grid may overhang when `k`
/// is not a perfect square).
fn constraint_set(v: VertexId, seed: u64, r: u64, k: u32, out: &mut Vec<u32>) {
    out.clear();
    let cell = mix64(u64::from(v) ^ seed) % (r * r);
    let (row, col) = (cell / r, cell % r);
    for c in 0..r {
        let p = row * r + c;
        if p < u64::from(k) {
            out.push(p as u32);
        }
    }
    for rr in 0..r {
        if rr != row {
            let p = rr * r + col;
            if p < u64::from(k) {
                out.push(p as u32);
            }
        }
    }
    // Overhang cells can leave an empty set; fall back to the home hash.
    if out.is_empty() {
        out.push((mix64(u64::from(v) ^ seed) % u64::from(k)) as u32);
    }
}

impl Partitioner for Grid {
    fn name(&self) -> &'static str {
        "Grid"
    }

    fn partition(&mut self, stream: &mut dyn RestreamableStream, k: u32) -> Result<PartitionRun> {
        let start = std::time::Instant::now();
        let (n, m) = start_run(stream, k)?;
        let r = grid_dim(k);
        let mut assignments = Vec::with_capacity(m as usize);
        let mut loads = PartitionLoads::new(k);
        let mut cs_u = Vec::with_capacity(2 * r as usize);
        let mut cs_v = Vec::with_capacity(2 * r as usize);
        for_each_chunk(stream, chunk_edges(), |chunk| {
            for &e in chunk {
                let p = grid_edge(e, self.seed, r, k, &loads, &mut cs_u, &mut cs_v);
                assignments.push(p);
                loads.add(p);
            }
        });
        let mut memory = MemoryReport::new();
        memory.add("loads", loads.memory_bytes());
        Ok(PartitionRun {
            partitioning: Partitioning {
                k,
                num_vertices: n,
                assignments,
                loads: loads.into_vec(),
            },
            memory,
            timings: Timings {
                total: start.elapsed(),
                ..Default::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use clugp_graph::stream::InMemoryStream;
    use clugp_graph::types::Edge;

    fn ring(n: u32) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, (i + 1) % n)).collect()
    }

    #[test]
    fn assigns_and_validates() {
        for k in [1u32, 4, 9, 12, 16, 250] {
            let edges = ring(500);
            let mut s = InMemoryStream::from_edges(edges);
            let run = Grid::default().partition(&mut s, k).unwrap();
            run.partitioning.validate().unwrap();
        }
    }

    #[test]
    fn replication_bounded_by_grid_dimension() {
        // |P(v)| ≤ 2r − 1 for every vertex.
        let k = 16u32; // r = 4
        let edges: Vec<Edge> = (0..2_000u32)
            .map(|i| Edge::new(i % 50, (i * 7 + 1) % 50))
            .collect();
        let mut s = InMemoryStream::from_edges(edges.clone());
        let run = Grid::default().partition(&mut s, k).unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        assert!(
            q.replication_factor <= 7.0,
            "rf {} exceeds 2r-1 bound",
            q.replication_factor
        );
    }

    #[test]
    fn beats_hashing_on_dense_graph() {
        // Dense ER graph: mean degree 20, so hashing replicates vertices
        // toward min(k, degree) while Grid caps at 2√k − 1.
        let g = clugp_graph::gen::generate_er(&clugp_graph::gen::ErConfig {
            vertices: 500,
            edges: 5_000,
            seed: 77,
        });
        let edges = g.edge_vec();
        let mut s = InMemoryStream::from_edges(edges.clone());
        let grid = Grid::default().partition(&mut s, 16).unwrap();
        let hash = crate::baselines::Hashing::default()
            .partition(&mut s, 16)
            .unwrap();
        let qg = PartitionQuality::compute(&edges, &grid.partitioning);
        let qh = PartitionQuality::compute(&edges, &hash.partitioning);
        assert!(
            qg.replication_factor < qh.replication_factor,
            "grid {} vs hashing {}",
            qg.replication_factor,
            qh.replication_factor
        );
    }

    #[test]
    fn constraint_sets_intersect() {
        let (r, k, seed) = (4u64, 16u32, 1u64);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for u in 0..100u32 {
            for v in 0..100u32 {
                constraint_set(u, seed, r, k, &mut a);
                constraint_set(v, seed, r, k, &mut b);
                assert!(
                    a.iter().any(|p| b.contains(p)),
                    "empty intersection for ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let edges = ring(300);
        let mut s = InMemoryStream::from_edges(edges);
        let a = Grid::default().partition(&mut s, 9).unwrap();
        let b = Grid::default().partition(&mut s, 9).unwrap();
        assert_eq!(a.partitioning.assignments, b.partitioning.assignments);
    }
}
