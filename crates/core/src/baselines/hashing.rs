//! Hashing (random) vertex-cut: assign each edge to `hash(src, dst) mod k`.
//!
//! PowerGraph's default placement. Zero state beyond the output — which is
//! exactly why the paper's Fig. 6 shows it at ~0 memory — and the quality
//! floor every heuristic is compared against.

use crate::error::Result;
use crate::memory::MemoryReport;
use crate::partition::{PartitionRun, Partitioning, Timings};
use crate::partitioner::{mix64, start_run, Partitioner};
use crate::state::PartitionLoads;
use clugp_graph::stream::{chunk_edges, for_each_chunk, RestreamableStream};
use clugp_graph::types::Edge;

/// Per-edge hashing kernel (stateless). Shared by the monolithic loop and
/// the distributed worker so both paths stay bit-identical.
#[inline]
pub(crate) fn hashing_assign(e: Edge, seed: u64, k: u32) -> u32 {
    let key = (u64::from(e.src) << 32) | u64::from(e.dst);
    (mix64(key ^ seed) % u64::from(k)) as u32
}

/// Default hash seed (shared with the distributed engine so
/// `DistAlgo::hashing()` matches `Hashing::default()`).
pub(crate) const DEFAULT_SEED: u64 = 0x4A5;

/// The random-hashing partitioner.
#[derive(Debug, Clone)]
pub struct Hashing {
    seed: u64,
}

impl Hashing {
    /// Creates a hashing partitioner with the given seed.
    pub fn new(seed: u64) -> Self {
        Hashing { seed }
    }
}

impl Default for Hashing {
    fn default() -> Self {
        Hashing::new(DEFAULT_SEED)
    }
}

impl Partitioner for Hashing {
    fn name(&self) -> &'static str {
        "Hashing"
    }

    fn partition(&mut self, stream: &mut dyn RestreamableStream, k: u32) -> Result<PartitionRun> {
        let start = std::time::Instant::now();
        let (n, m) = start_run(stream, k)?;
        let mut assignments = Vec::with_capacity(m as usize);
        let mut loads = PartitionLoads::new(k);
        for_each_chunk(stream, chunk_edges(), |chunk| {
            for &e in chunk {
                let p = hashing_assign(e, self.seed, k);
                assignments.push(p);
                loads.add(p);
            }
        });
        Ok(PartitionRun {
            partitioning: Partitioning {
                k,
                num_vertices: n,
                assignments,
                loads: loads.into_vec(),
            },
            memory: MemoryReport::new(), // a hash function needs no state
            timings: Timings {
                total: start.elapsed(),
                ..Default::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use clugp_graph::stream::InMemoryStream;
    use clugp_graph::types::Edge;

    fn ring(n: u32) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, (i + 1) % n)).collect()
    }

    #[test]
    fn assigns_every_edge() {
        let edges = ring(100);
        let mut s = InMemoryStream::from_edges(edges.clone());
        let run = Hashing::default().partition(&mut s, 4).unwrap();
        assert_eq!(run.partitioning.assignments.len(), 100);
        run.partitioning.validate().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let edges = ring(50);
        let mut s = InMemoryStream::from_edges(edges);
        let a = Hashing::new(1).partition(&mut s, 8).unwrap();
        let b = Hashing::new(1).partition(&mut s, 8).unwrap();
        let c = Hashing::new(2).partition(&mut s, 8).unwrap();
        assert_eq!(a.partitioning.assignments, b.partitioning.assignments);
        assert_ne!(a.partitioning.assignments, c.partitioning.assignments);
    }

    #[test]
    fn loads_roughly_uniform() {
        let edges = ring(8000);
        let mut s = InMemoryStream::from_edges(edges);
        let run = Hashing::default().partition(&mut s, 8).unwrap();
        for &l in &run.partitioning.loads {
            assert!((800..1200).contains(&(l as usize)), "load {l} too skewed");
        }
    }

    #[test]
    fn k_one_trivial() {
        let edges = ring(10);
        let mut s = InMemoryStream::from_edges(edges.clone());
        let run = Hashing::default().partition(&mut s, 1).unwrap();
        assert!(run.partitioning.assignments.iter().all(|&p| p == 0));
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        assert!((q.replication_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reports_zero_memory() {
        let mut s = InMemoryStream::from_edges(ring(10));
        let run = Hashing::default().partition(&mut s, 2).unwrap();
        assert_eq!(run.memory.total_bytes(), 0);
    }

    #[test]
    fn rejects_k_zero() {
        let mut s = InMemoryStream::from_edges(ring(10));
        assert!(Hashing::default().partition(&mut s, 0).is_err());
    }
}
