//! HDRF — High-Degree Replicated First (Petroni et al., CIKM 2015), the
//! state-of-the-art one-pass baseline in the paper's comparison.
//!
//! For each edge `(u, v)` the partition maximizing
//!
//! ```text
//! C(u,v,p) = C_REP(u,v,p) + λ_bal · (maxload − load(p)) / (ε + maxload − minload)
//! C_REP    = g(u,p) + g(v,p)
//! g(w,p)   = [w ∈ A(p)] · (1 + (1 − θ_w))     θ_w = δ(w) / (δ(u) + δ(v))
//! ```
//!
//! is chosen, where `δ` are partial degrees. The degree-weighted `g` makes
//! the *lower*-degree endpoint's presence more valuable, so high-degree
//! vertices end up replicated — the "replicate high-degree first" rule.

use crate::error::Result;
use crate::memory::MemoryReport;
use crate::partition::{PartitionRun, Partitioning, Timings};
use crate::partitioner::{start_run, Partitioner};
use crate::state::{PartitionLoads, ReplicaTable};
use crate::vertex_table::{VertexTable, DEFAULT_MAX_VERTICES};
use clugp_graph::stream::{chunk_edges, try_for_each_chunk, RestreamableStream};
use clugp_graph::types::Edge;

/// Per-edge HDRF kernel: scores every partition and inserts both
/// endpoints. Shared by the monolithic loop and the distributed worker so
/// both paths stay bit-identical.
#[inline]
pub(crate) fn hdrf_edge(
    e: Edge,
    lambda: f64,
    epsilon: f64,
    k: u32,
    degree: &mut VertexTable<u32>,
    replicas: &mut ReplicaTable,
    loads: &mut PartitionLoads,
) -> Result<u32> {
    degree.ensure(e.src.max(e.dst))?;
    replicas.ensure_vertices(u64::from(e.src.max(e.dst)) + 1)?;
    degree[e.src] += 1;
    degree[e.dst] += 1;
    let du = f64::from(degree[e.src]);
    let dv = f64::from(degree[e.dst]);
    let theta_u = du / (du + dv);
    let theta_v = 1.0 - theta_u;
    let (maxload, minload) = (loads.max() as f64, loads.min() as f64);
    let denom = epsilon + maxload - minload;

    let mut best_p = 0u32;
    let mut best_score = f64::NEG_INFINITY;
    for p in 0..k {
        let mut score = 0.0;
        if replicas.contains(e.src, p) {
            score += 1.0 + (1.0 - theta_u);
        }
        if replicas.contains(e.dst, p) {
            score += 1.0 + (1.0 - theta_v);
        }
        score += lambda * (maxload - loads.get(p) as f64) / denom;
        if score > best_score {
            best_score = score;
            best_p = p;
        }
    }
    replicas.insert(e.src, best_p);
    replicas.insert(e.dst, best_p);
    loads.add(best_p);
    Ok(best_p)
}

/// Tunables of HDRF.
#[derive(Debug, Clone)]
pub struct HdrfConfig {
    /// Balance weight `λ_bal`; the original paper's default is 1.0 (quality
    /// close to optimal, balance enforced softly).
    pub lambda: f64,
    /// Balance denominator smoothing term.
    pub epsilon: f64,
    /// Cap on the internal vertex id space (see `crate::vertex_table`).
    pub max_vertices: u64,
}

impl Default for HdrfConfig {
    fn default() -> Self {
        HdrfConfig {
            lambda: 1.0,
            epsilon: 1.0,
            max_vertices: DEFAULT_MAX_VERTICES,
        }
    }
}

/// The HDRF partitioner.
#[derive(Debug, Clone, Default)]
pub struct Hdrf {
    config: HdrfConfig,
}

impl Hdrf {
    /// Creates HDRF with the given configuration.
    pub fn new(config: HdrfConfig) -> Self {
        Hdrf { config }
    }
}

impl Partitioner for Hdrf {
    fn name(&self) -> &'static str {
        "HDRF"
    }

    fn partition(&mut self, stream: &mut dyn RestreamableStream, k: u32) -> Result<PartitionRun> {
        let start = std::time::Instant::now();
        let (n, m) = start_run(stream, k)?;
        let cap = self.config.max_vertices;
        let mut degree: VertexTable<u32> = VertexTable::with_limit(n, 0, cap)?;
        let mut replicas = ReplicaTable::with_limit(n, k, cap)?;
        let mut loads = PartitionLoads::new(k);
        let mut assignments = Vec::with_capacity(m as usize);

        try_for_each_chunk(stream, chunk_edges(), |chunk| -> Result<()> {
            for &e in chunk {
                let p = hdrf_edge(
                    e,
                    self.config.lambda,
                    self.config.epsilon,
                    k,
                    &mut degree,
                    &mut replicas,
                    &mut loads,
                )?;
                assignments.push(p);
            }
            Ok(())
        })?;

        let mut memory = MemoryReport::new();
        memory.add("replica-table", replicas.memory_bytes());
        memory.add("degrees", degree.memory_bytes());
        memory.add("loads", loads.memory_bytes());
        Ok(PartitionRun {
            partitioning: Partitioning {
                k,
                num_vertices: n.max(replicas.num_vertices()),
                assignments,
                loads: loads.into_vec(),
            },
            memory,
            timings: Timings {
                total: start.elapsed(),
                ..Default::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use clugp_graph::gen::{generate_copying_model, CopyingModelConfig};
    use clugp_graph::order::{ordered_edges, StreamOrder};
    use clugp_graph::stream::InMemoryStream;
    use clugp_graph::types::Edge;

    #[test]
    fn assigns_all_and_validates() {
        let edges: Vec<Edge> = (0..30).map(|i| Edge::new(i % 7, (i * 3) % 7)).collect();
        let mut s = InMemoryStream::from_edges(edges);
        let run = Hdrf::default().partition(&mut s, 4).unwrap();
        run.partitioning.validate().unwrap();
    }

    #[test]
    fn triangle_stays_together() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)];
        let mut s = InMemoryStream::from_edges(edges.clone());
        let run = Hdrf::default().partition(&mut s, 8).unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        assert!((q.replication_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hub_is_the_replicated_vertex() {
        // Star with closing spokes: hub 0 plus edges among spokes. HDRF
        // should replicate the hub rather than spokes.
        let mut edges: Vec<Edge> = (1..=60).map(|i| Edge::new(0, i)).collect();
        edges.extend((1..60).map(|i| Edge::new(i, i + 1)));
        let mut s = InMemoryStream::from_edges(edges.clone());
        let run = Hdrf::default().partition(&mut s, 4).unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        // Hub replication dominates: replicas ≈ touched + (k−1)-ish.
        assert!(
            q.mirrors <= 30,
            "too many mirrors ({}): spokes were cut instead of the hub",
            q.mirrors
        );
    }

    #[test]
    fn balance_is_tight_on_uniform_input() {
        let edges: Vec<Edge> = (0..400u32)
            .map(|i| Edge::new(i % 97, (i * 31) % 97))
            .collect();
        let mut s = InMemoryStream::from_edges(edges.clone());
        let run = Hdrf::default().partition(&mut s, 8).unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        assert!(q.relative_balance < 1.5, "balance {}", q.relative_balance);
    }

    #[test]
    fn beats_hashing_on_web_graph() {
        let g = generate_copying_model(&CopyingModelConfig {
            vertices: 3_000,
            ..Default::default()
        });
        let edges = ordered_edges(&g, StreamOrder::Random(11));
        let mut s = InMemoryStream::new(g.num_vertices(), edges.clone());
        let hdrf = Hdrf::default().partition(&mut s, 16).unwrap();
        let hashing = crate::baselines::Hashing::default()
            .partition(&mut s, 16)
            .unwrap();
        let qh = PartitionQuality::compute(&edges, &hdrf.partitioning);
        let qr = PartitionQuality::compute(&edges, &hashing.partitioning);
        assert!(qh.replication_factor < 0.7 * qr.replication_factor);
    }

    #[test]
    fn higher_lambda_tightens_balance() {
        let g = generate_copying_model(&CopyingModelConfig {
            vertices: 2_000,
            ..Default::default()
        });
        let edges = ordered_edges(&g, StreamOrder::Random(3));
        let mut s = InMemoryStream::new(g.num_vertices(), edges.clone());
        let soft = Hdrf::new(HdrfConfig {
            lambda: 0.1,
            ..Default::default()
        })
        .partition(&mut s, 8)
        .unwrap();
        let hard = Hdrf::new(HdrfConfig {
            lambda: 10.0,
            ..Default::default()
        })
        .partition(&mut s, 8)
        .unwrap();
        assert!(
            hard.partitioning.relative_balance() <= soft.partitioning.relative_balance() + 0.05
        );
    }
}
