//! Mint — quasi-streaming game-theoretic partitioning (Hua et al.,
//! TPDS 2019), reimplemented from its published description (the original
//! code is closed-source; see DESIGN.md §4).
//!
//! Edges are ingested in batches; within a batch each edge is a player that
//! best-responds by choosing the partition minimizing
//! `new_replicas(e → p) + α · balance(p)`, iterating to a (batch-local) Nash
//! equilibrium. Batches are grouped into *waves* of `wave_width`: every
//! batch of a wave plays against the same snapshot of the committed loads,
//! so the wave's games are independent and run in parallel (bounded by
//! `threads`) — the trade that buys Mint its scalability at "medium"
//! quality: unlike HDRF/Greedy there is **no global replica table** (state
//! is `O(batch_size × min(threads, wave_width))`, which is what the paper's
//! Fig. 6 shows). The wave width is a fixed semantic knob, deliberately decoupled
//! from the thread count, so results are bit-identical whether a wave is
//! solved by 1 or 8 worker threads.

use crate::error::Result;
use crate::memory::MemoryReport;
use crate::partition::{PartitionRun, Partitioning, Timings};
use crate::partitioner::{mix64, start_run, Partitioner};
use crate::state::PartitionLoads;
use clugp_graph::stream::{EdgeStream, RestreamableStream};
use clugp_graph::types::Edge;
use rustc_hash::FxHashMap;

/// Default [`MintConfig::wave_width`]: batches whose games share one load
/// snapshot.
pub const DEFAULT_WAVE_WIDTH: usize = 8;

/// Tunables of Mint.
#[derive(Debug, Clone)]
pub struct MintConfig {
    /// Edges per batch game.
    pub batch_size: usize,
    /// Batches ingested per wave; every batch of a wave plays against the
    /// same committed-load snapshot (0 = [`DEFAULT_WAVE_WIDTH`]). This is a
    /// semantic knob — it changes the equilibria — so it is deliberately
    /// independent of `threads`.
    pub wave_width: usize,
    /// Max worker threads solving a wave's batches (0 = rayon default).
    /// Affects wall-clock only, never the result.
    pub threads: usize,
    /// Best-response round cap per batch.
    pub max_rounds: usize,
    /// Balance weight α in the edge cost.
    pub balance_weight: f64,
    /// Seed for the hash-based initial placement.
    pub seed: u64,
}

impl Default for MintConfig {
    fn default() -> Self {
        MintConfig {
            batch_size: 6400,
            wave_width: DEFAULT_WAVE_WIDTH,
            threads: 0,
            max_rounds: 5,
            balance_weight: 1.0,
            seed: 0x317,
        }
    }
}

/// The Mint partitioner.
#[derive(Debug, Clone, Default)]
pub struct Mint {
    config: MintConfig,
}

impl Mint {
    /// Creates Mint with the given configuration.
    pub fn new(config: MintConfig) -> Self {
        Mint { config }
    }
}

impl Partitioner for Mint {
    fn name(&self) -> &'static str {
        "Mint"
    }

    fn partition(&mut self, stream: &mut dyn RestreamableStream, k: u32) -> Result<PartitionRun> {
        let start = std::time::Instant::now();
        let (n, m) = start_run(stream, k)?;
        if self.config.batch_size == 0 {
            return Err(crate::error::PartitionError::InvalidParam(
                "batch_size must be positive".into(),
            ));
        }
        let mut loads = PartitionLoads::new(k);
        let mut assignments = Vec::with_capacity(m as usize);
        let wave_width = if self.config.wave_width == 0 {
            DEFAULT_WAVE_WIDTH
        } else {
            self.config.wave_width
        };
        let pool = build_pool(self.config.threads)?;

        let mut peak_wave_state = 0usize;
        let mut scratch: Vec<Edge> = Vec::new();
        let mut exhausted = false;
        while !exhausted {
            // Pull up to `wave_width` batches for one parallel wave. Batches
            // are filled through chunked pulls; batch boundaries depend only
            // on `batch_size`, never on the source's chunk granularity, so
            // the equilibria (and assignments) stay bit-identical for any
            // chunking of the same stream.
            let mut wave: Vec<Vec<Edge>> = Vec::with_capacity(wave_width);
            for _ in 0..wave_width {
                let mut batch = Vec::with_capacity(self.config.batch_size);
                exhausted = fill_batch(stream, self.config.batch_size, &mut batch, &mut scratch);
                if batch.is_empty() {
                    break;
                }
                wave.push(batch);
                if exhausted {
                    break;
                }
            }
            if wave.is_empty() {
                break;
            }
            // Each batch plays against a snapshot of the committed loads;
            // results are merged in batch order, so the outcome is
            // deterministic regardless of thread scheduling.
            let snapshot: Vec<u64> = loads.as_slice().to_vec();
            let results = solve_wave(&wave, k, &snapshot, &self.config, pool.as_ref());
            // At most `concurrency` batch games are live at once (each
            // worker solves its batches one after another), so the state
            // charged to this wave is the sum of its `concurrency` largest
            // batch states — a final partial wave is charged only for the
            // batches it held, and a narrow pool under a wide wave is not
            // charged for games it never ran concurrently.
            let concurrency = match &pool {
                Some(pool) => pool.current_num_threads(),
                None => rayon::current_num_threads(),
            }
            .clamp(1, wave.len());
            let mut batch_states = Vec::with_capacity(wave.len());
            for (batch, outcome) in wave.iter().zip(results) {
                debug_assert_eq!(batch.len(), outcome.assignments.len());
                for &p in &outcome.assignments {
                    loads.add(p);
                }
                assignments.extend(outcome.assignments);
                batch_states.push(outcome.state_bytes);
            }
            batch_states.sort_unstable_by(|a, b| b.cmp(a));
            let wave_state: usize = batch_states[..concurrency].iter().sum();
            peak_wave_state = peak_wave_state.max(wave_state);
        }

        let mut memory = MemoryReport::new();
        memory.add("batch-state", peak_wave_state);
        memory.add("loads", loads.memory_bytes());
        Ok(PartitionRun {
            partitioning: Partitioning {
                k,
                num_vertices: n,
                assignments,
                loads: loads.into_vec(),
            },
            memory,
            timings: Timings {
                total: start.elapsed(),
                ..Default::default()
            },
        })
    }
}

pub(crate) struct BatchOutcome {
    pub(crate) assignments: Vec<u32>,
    pub(crate) state_bytes: usize,
}

/// Builds the dedicated wave-solving pool (`None` = use the global pool).
pub(crate) fn build_pool(threads: usize) -> Result<Option<rayon::ThreadPool>> {
    if threads == 0 {
        return Ok(None);
    }
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map(Some)
        .map_err(|e| crate::error::PartitionError::InvalidParam(format!("thread pool: {e}")))
}

/// Solves one wave: every batch plays against the same committed-load
/// `snapshot`, in parallel under `pool` (or the global pool). Outcomes are
/// returned in batch order, so the commit is deterministic regardless of
/// thread scheduling. Shared by the monolithic loop and the distributed
/// worker so both paths stay bit-identical.
pub(crate) fn solve_wave(
    wave: &[Vec<Edge>],
    k: u32,
    snapshot: &[u64],
    cfg: &MintConfig,
    pool: Option<&rayon::ThreadPool>,
) -> Vec<BatchOutcome> {
    let solve = || -> Vec<BatchOutcome> {
        use rayon::prelude::*;
        wave.par_iter()
            .map(|batch| solve_batch(batch, k, snapshot, cfg))
            .collect()
    };
    match pool {
        Some(pool) => pool.install(solve),
        None => solve(),
    }
}

/// Fills `batch` with exactly `target` edges (or fewer at end-of-stream)
/// using chunked pulls: zero-copy slices when the source lends them,
/// otherwise block copies through `scratch`. Returns `true` once the stream
/// is exhausted.
///
/// Mirrors `clugp_graph::stream::for_each_chunk`'s drain structure exactly —
/// one borrow-scoped `next_slice` attempt, and after the first `None`
/// (a source either always or never lends, per the trait contract) the rest
/// of the stream goes through the copying `next_chunk` pull — so the two
/// consumers of the dual-path ABI cannot diverge in exhaustion semantics.
fn fill_batch<S: EdgeStream + ?Sized>(
    stream: &mut S,
    target: usize,
    batch: &mut Vec<Edge>,
    scratch: &mut Vec<Edge>,
) -> bool {
    batch.clear();
    while batch.len() < target {
        let want = target - batch.len();
        let lent = match stream.next_slice(want) {
            Some(slice) => {
                if slice.is_empty() {
                    return true;
                }
                batch.extend_from_slice(slice);
                true
            }
            None => false,
        };
        if !lent {
            // Copying path for the rest of the stream.
            while batch.len() < target {
                if stream.next_chunk(scratch, target - batch.len()) == 0 {
                    return true;
                }
                batch.extend_from_slice(scratch);
            }
            return false;
        }
    }
    false
}

/// Plays one batch game to (local) equilibrium.
fn solve_batch(batch: &[Edge], k: u32, snapshot: &[u64], cfg: &MintConfig) -> BatchOutcome {
    let ku = k as usize;
    // Vertex-partition presence counts *within the batch*. Key = v * k + p.
    let mut presence: FxHashMap<u64, u32> = FxHashMap::default();
    let vp = |v: u32, p: u32| u64::from(v) * u64::from(k) + u64::from(p);

    // Hash-based initial placement keyed on the source vertex, so edges
    // sharing a source start co-located.
    let mut assign: Vec<u32> = batch
        .iter()
        .map(|e| (mix64(u64::from(e.src) ^ cfg.seed) % u64::from(k)) as u32)
        .collect();
    let mut batch_loads = vec![0u64; ku];
    for (e, &p) in batch.iter().zip(&assign) {
        *presence.entry(vp(e.src, p)).or_insert(0) += 1;
        *presence.entry(vp(e.dst, p)).or_insert(0) += 1;
        batch_loads[p as usize] += 1;
    }

    for _ in 0..cfg.max_rounds {
        // Per-round balance normalization (recomputing per move would be
        // O(k) per evaluation; the round granularity is Mint's published
        // design point).
        let combined: Vec<u64> = snapshot
            .iter()
            .zip(&batch_loads)
            .map(|(&s, &b)| s + b)
            .collect();
        let maxl = combined.iter().copied().max().unwrap_or(0) as f64;
        let minl = combined.iter().copied().min().unwrap_or(0) as f64;
        let denom = 1.0 + maxl - minl;

        let mut moved = 0u64;
        for (i, e) in batch.iter().enumerate() {
            let cur = assign[i];
            // Remove this edge's own contribution before evaluating.
            decrement(&mut presence, vp(e.src, cur));
            decrement(&mut presence, vp(e.dst, cur));
            batch_loads[cur as usize] -= 1;

            let mut best_p = cur;
            let mut best_cost = f64::INFINITY;
            for p in 0..k {
                let mut cost = 0.0;
                if !presence.contains_key(&vp(e.src, p)) {
                    cost += 1.0;
                }
                if !presence.contains_key(&vp(e.dst, p)) {
                    cost += 1.0;
                }
                let load = (snapshot[p as usize] + batch_loads[p as usize]) as f64;
                cost += cfg.balance_weight * (load - minl) / denom;
                if cost < best_cost - 1e-12 {
                    best_cost = cost;
                    best_p = p;
                }
            }
            if best_p != cur {
                moved += 1;
            }
            assign[i] = best_p;
            *presence.entry(vp(e.src, best_p)).or_insert(0) += 1;
            *presence.entry(vp(e.dst, best_p)).or_insert(0) += 1;
            batch_loads[best_p as usize] += 1;
        }
        if moved == 0 {
            break;
        }
    }

    let state_bytes = presence.capacity() * (8 + 4) + batch.len() * 4 + ku * 8;
    BatchOutcome {
        assignments: assign,
        state_bytes,
    }
}

fn decrement(map: &mut FxHashMap<u64, u32>, key: u64) {
    if let Some(c) = map.get_mut(&key) {
        *c -= 1;
        if *c == 0 {
            map.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use clugp_graph::gen::{generate_copying_model, CopyingModelConfig};
    use clugp_graph::order::{ordered_edges, StreamOrder};
    use clugp_graph::stream::InMemoryStream;

    fn web_edges(n: u64, seed: u64) -> (u64, Vec<Edge>) {
        let g = generate_copying_model(&CopyingModelConfig {
            vertices: n,
            seed,
            ..Default::default()
        });
        (g.num_vertices(), ordered_edges(&g, StreamOrder::Bfs))
    }

    #[test]
    fn assigns_all_and_validates() {
        let (n, edges) = web_edges(1_000, 1);
        let mut s = InMemoryStream::new(n, edges);
        let run = Mint::default().partition(&mut s, 8).unwrap();
        run.partitioning.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        let (n, edges) = web_edges(800, 2);
        let mut s = InMemoryStream::new(n, edges);
        let a = Mint::default().partition(&mut s, 8).unwrap();
        let b = Mint::default().partition(&mut s, 8).unwrap();
        assert_eq!(a.partitioning.assignments, b.partitioning.assignments);
    }

    #[test]
    fn quality_between_hashing_and_hdrf() {
        let (n, edges) = web_edges(3_000, 3);
        let mut s = InMemoryStream::new(n, edges.clone());
        let mint = Mint::default().partition(&mut s, 16).unwrap();
        let hash = crate::baselines::Hashing::default()
            .partition(&mut s, 16)
            .unwrap();
        let qm = PartitionQuality::compute(&edges, &mint.partitioning);
        let qh = PartitionQuality::compute(&edges, &hash.partitioning);
        assert!(
            qm.replication_factor < qh.replication_factor,
            "mint {} should beat hashing {}",
            qm.replication_factor,
            qh.replication_factor
        );
    }

    #[test]
    fn small_batches_still_cover_stream() {
        let (n, edges) = web_edges(500, 4);
        let len = edges.len();
        let mut s = InMemoryStream::new(n, edges);
        let run = Mint::new(MintConfig {
            batch_size: 37,
            ..Default::default()
        })
        .partition(&mut s, 4)
        .unwrap();
        assert_eq!(run.partitioning.assignments.len(), len);
        run.partitioning.validate().unwrap();
    }

    #[test]
    fn rejects_zero_batch() {
        let (n, edges) = web_edges(100, 5);
        let mut s = InMemoryStream::new(n, edges);
        let err = Mint::new(MintConfig {
            batch_size: 0,
            ..Default::default()
        })
        .partition(&mut s, 4);
        assert!(err.is_err());
    }

    #[test]
    fn balance_is_reasonable() {
        let (n, edges) = web_edges(2_000, 6);
        let mut s = InMemoryStream::new(n, edges.clone());
        let run = Mint::default().partition(&mut s, 8).unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        assert!(q.relative_balance < 2.0, "balance {}", q.relative_balance);
    }

    #[test]
    fn thread_count_never_changes_result() {
        // Small batches force many multi-batch waves; the thread count only
        // bounds the worker pool, so every count must yield bit-identical
        // assignments.
        let (n, edges) = web_edges(2_000, 7);
        let mut s = InMemoryStream::new(n, edges);
        let run_with = |threads: usize, s: &mut InMemoryStream| {
            Mint::new(MintConfig {
                batch_size: 97,
                threads,
                ..Default::default()
            })
            .partition(s, 8)
            .unwrap()
            .partitioning
            .assignments
        };
        let baseline = run_with(1, &mut s);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                run_with(threads, &mut s),
                baseline,
                "threads={threads} changed the result"
            );
        }
    }

    #[test]
    fn wave_width_is_a_semantic_knob_not_thread_count() {
        // With one batch in total, the wave width cannot matter; before the
        // wave/thread decoupling, `threads` doubled as the wave width.
        let (n, edges) = web_edges(400, 8);
        let mut s = InMemoryStream::new(n, edges);
        let run_with = |wave_width: usize, s: &mut InMemoryStream| {
            Mint::new(MintConfig {
                wave_width,
                ..Default::default()
            })
            .partition(s, 4)
            .unwrap()
        };
        let a = run_with(1, &mut s);
        let b = run_with(8, &mut s);
        assert_eq!(a.partitioning.assignments, b.partitioning.assignments);
    }

    #[test]
    fn memory_counts_actual_concurrent_state_not_wave_width() {
        // One batch exists in total, so the peak concurrent batch state is
        // one batch's state no matter how wide the wave is. The old report
        // multiplied the peak batch state by the full wave concurrency,
        // overcounting 8x here.
        let (n, edges) = web_edges(400, 9);
        let mut s = InMemoryStream::new(n, edges);
        let batch_state = |wave_width: usize, s: &mut InMemoryStream| {
            Mint::new(MintConfig {
                wave_width,
                ..Default::default()
            })
            .partition(s, 4)
            .unwrap()
            .memory
            .get("batch-state")
            .expect("batch-state item")
        };
        let narrow = batch_state(1, &mut s);
        let wide = batch_state(8, &mut s);
        assert!(narrow > 0);
        assert_eq!(narrow, wide, "final partial wave must not be overcounted");
    }

    #[test]
    fn partial_final_wave_charged_for_batches_it_held() {
        // 10 batches with wave width 4 and 4 worker threads -> waves of
        // 4, 4, 2. The peak charge must be about 4 batches' state, well
        // below wave_width x peak for the last wave and never above full
        // waves' sum. Threads are pinned so the concurrency cap is
        // machine-independent.
        let (n, edges) = web_edges(1_000, 10);
        let len = edges.len();
        let batch = len.div_ceil(10);
        let mut s = InMemoryStream::new(n, edges);
        let run = Mint::new(MintConfig {
            batch_size: batch,
            wave_width: 4,
            threads: 4,
            ..Default::default()
        })
        .partition(&mut s, 4)
        .unwrap();
        let charged = run.memory.get("batch-state").unwrap();
        // A single batch's state is a lower bound on the wave peak; 4x a
        // single batch's state (plus slack for per-batch hash-map capacity
        // jitter) is an upper bound.
        let mut s2 = InMemoryStream::new(n, web_edges(1_000, 10).1);
        let single_state = Mint::new(MintConfig {
            batch_size: batch,
            wave_width: 1,
            ..Default::default()
        })
        .partition(&mut s2, 4)
        .unwrap()
        .memory
        .get("batch-state")
        .unwrap();
        assert!(charged >= single_state);
        assert!(
            charged <= single_state * 5,
            "peak wave state {charged} vs single batch {single_state}"
        );
    }

    #[test]
    fn narrow_pool_not_charged_for_games_it_never_ran_concurrently() {
        // One worker thread solves a wave's batches sequentially, so only
        // one batch's solver state is ever live; the report must not charge
        // the whole wave's sum.
        let (n, edges) = web_edges(1_000, 12);
        let len = edges.len();
        let batch = len.div_ceil(8);
        let charge_with = |threads: usize| {
            let mut s = InMemoryStream::new(n, web_edges(1_000, 12).1);
            Mint::new(MintConfig {
                batch_size: batch,
                wave_width: 8,
                threads,
                ..Default::default()
            })
            .partition(&mut s, 4)
            .unwrap()
            .memory
            .get("batch-state")
            .expect("batch-state item")
        };
        let narrow = charge_with(1);
        let wide = charge_with(8);
        assert!(narrow > 0);
        assert!(
            narrow * 4 <= wide,
            "1-thread charge {narrow} should be far below 8-thread charge {wide}"
        );
    }
}
