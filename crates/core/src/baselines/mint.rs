//! Mint — quasi-streaming game-theoretic partitioning (Hua et al.,
//! TPDS 2019), reimplemented from its published description (the original
//! code is closed-source; see DESIGN.md §4).
//!
//! Edges are ingested in batches; within a batch each edge is a player that
//! best-responds by choosing the partition minimizing
//! `new_replicas(e → p) + α · balance(p)`, iterating to a (batch-local) Nash
//! equilibrium. Batches are independent games, so `threads` of them run in
//! parallel — the trade that buys Mint its scalability at "medium" quality:
//! unlike HDRF/Greedy there is **no global replica table** (state is
//! `O(batch_size × threads)`, which is what the paper's Fig. 6 shows).

use crate::error::Result;
use crate::memory::MemoryReport;
use crate::partition::{PartitionRun, Partitioning, Timings};
use crate::partitioner::{mix64, start_run, Partitioner};
use crate::state::PartitionLoads;
use clugp_graph::stream::RestreamableStream;
use clugp_graph::types::Edge;
use rustc_hash::FxHashMap;

/// Tunables of Mint.
#[derive(Debug, Clone)]
pub struct MintConfig {
    /// Edges per batch game.
    pub batch_size: usize,
    /// Number of batches solved concurrently (0 = rayon default).
    pub threads: usize,
    /// Best-response round cap per batch.
    pub max_rounds: usize,
    /// Balance weight α in the edge cost.
    pub balance_weight: f64,
    /// Seed for the hash-based initial placement.
    pub seed: u64,
}

impl Default for MintConfig {
    fn default() -> Self {
        MintConfig {
            batch_size: 6400,
            threads: 0,
            max_rounds: 5,
            balance_weight: 1.0,
            seed: 0x317,
        }
    }
}

/// The Mint partitioner.
#[derive(Debug, Clone, Default)]
pub struct Mint {
    config: MintConfig,
}

impl Mint {
    /// Creates Mint with the given configuration.
    pub fn new(config: MintConfig) -> Self {
        Mint { config }
    }
}

impl Partitioner for Mint {
    fn name(&self) -> &'static str {
        "Mint"
    }

    fn partition(&mut self, stream: &mut dyn RestreamableStream, k: u32) -> Result<PartitionRun> {
        let start = std::time::Instant::now();
        let (n, m) = start_run(stream, k)?;
        if self.config.batch_size == 0 {
            return Err(crate::error::PartitionError::InvalidParam(
                "batch_size must be positive".into(),
            ));
        }
        let mut loads = PartitionLoads::new(k);
        let mut assignments = Vec::with_capacity(m as usize);
        let concurrency = if self.config.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.config.threads
        };

        let mut peak_batch_state = 0usize;
        let mut exhausted = false;
        while !exhausted {
            // Pull up to `concurrency` batches for one parallel wave.
            let mut wave: Vec<Vec<Edge>> = Vec::with_capacity(concurrency);
            for _ in 0..concurrency {
                let mut batch = Vec::with_capacity(self.config.batch_size);
                while batch.len() < self.config.batch_size {
                    match stream.next_edge() {
                        Some(e) => batch.push(e),
                        None => {
                            exhausted = true;
                            break;
                        }
                    }
                }
                if batch.is_empty() {
                    break;
                }
                wave.push(batch);
                if exhausted {
                    break;
                }
            }
            if wave.is_empty() {
                break;
            }
            // Each batch plays against a snapshot of the committed loads;
            // results are merged in batch order, so the outcome is
            // deterministic regardless of thread scheduling.
            let snapshot: Vec<u64> = loads.as_slice().to_vec();
            let cfg = &self.config;
            let results: Vec<BatchOutcome> = {
                use rayon::prelude::*;
                wave.par_iter()
                    .map(|batch| solve_batch(batch, k, &snapshot, cfg))
                    .collect()
            };
            for (batch, outcome) in wave.iter().zip(results) {
                debug_assert_eq!(batch.len(), outcome.assignments.len());
                for &p in &outcome.assignments {
                    loads.add(p);
                }
                assignments.extend(outcome.assignments);
                peak_batch_state = peak_batch_state.max(outcome.state_bytes);
            }
        }

        let mut memory = MemoryReport::new();
        memory.add("batch-state", peak_batch_state * concurrency);
        memory.add("loads", loads.memory_bytes());
        Ok(PartitionRun {
            partitioning: Partitioning {
                k,
                num_vertices: n,
                assignments,
                loads: loads.into_vec(),
            },
            memory,
            timings: Timings {
                total: start.elapsed(),
                ..Default::default()
            },
        })
    }
}

struct BatchOutcome {
    assignments: Vec<u32>,
    state_bytes: usize,
}

/// Plays one batch game to (local) equilibrium.
fn solve_batch(batch: &[Edge], k: u32, snapshot: &[u64], cfg: &MintConfig) -> BatchOutcome {
    let ku = k as usize;
    // Vertex-partition presence counts *within the batch*. Key = v * k + p.
    let mut presence: FxHashMap<u64, u32> = FxHashMap::default();
    let vp = |v: u32, p: u32| u64::from(v) * u64::from(k) + u64::from(p);

    // Hash-based initial placement keyed on the source vertex, so edges
    // sharing a source start co-located.
    let mut assign: Vec<u32> = batch
        .iter()
        .map(|e| (mix64(u64::from(e.src) ^ cfg.seed) % u64::from(k)) as u32)
        .collect();
    let mut batch_loads = vec![0u64; ku];
    for (e, &p) in batch.iter().zip(&assign) {
        *presence.entry(vp(e.src, p)).or_insert(0) += 1;
        *presence.entry(vp(e.dst, p)).or_insert(0) += 1;
        batch_loads[p as usize] += 1;
    }

    for _ in 0..cfg.max_rounds {
        // Per-round balance normalization (recomputing per move would be
        // O(k) per evaluation; the round granularity is Mint's published
        // design point).
        let combined: Vec<u64> = snapshot
            .iter()
            .zip(&batch_loads)
            .map(|(&s, &b)| s + b)
            .collect();
        let maxl = combined.iter().copied().max().unwrap_or(0) as f64;
        let minl = combined.iter().copied().min().unwrap_or(0) as f64;
        let denom = 1.0 + maxl - minl;

        let mut moved = 0u64;
        for (i, e) in batch.iter().enumerate() {
            let cur = assign[i];
            // Remove this edge's own contribution before evaluating.
            decrement(&mut presence, vp(e.src, cur));
            decrement(&mut presence, vp(e.dst, cur));
            batch_loads[cur as usize] -= 1;

            let mut best_p = cur;
            let mut best_cost = f64::INFINITY;
            for p in 0..k {
                let mut cost = 0.0;
                if !presence.contains_key(&vp(e.src, p)) {
                    cost += 1.0;
                }
                if !presence.contains_key(&vp(e.dst, p)) {
                    cost += 1.0;
                }
                let load = (snapshot[p as usize] + batch_loads[p as usize]) as f64;
                cost += cfg.balance_weight * (load - minl) / denom;
                if cost < best_cost - 1e-12 {
                    best_cost = cost;
                    best_p = p;
                }
            }
            if best_p != cur {
                moved += 1;
            }
            assign[i] = best_p;
            *presence.entry(vp(e.src, best_p)).or_insert(0) += 1;
            *presence.entry(vp(e.dst, best_p)).or_insert(0) += 1;
            batch_loads[best_p as usize] += 1;
        }
        if moved == 0 {
            break;
        }
    }

    let state_bytes = presence.capacity() * (8 + 4) + batch.len() * 4 + ku * 8;
    BatchOutcome {
        assignments: assign,
        state_bytes,
    }
}

fn decrement(map: &mut FxHashMap<u64, u32>, key: u64) {
    if let Some(c) = map.get_mut(&key) {
        *c -= 1;
        if *c == 0 {
            map.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use clugp_graph::gen::{generate_copying_model, CopyingModelConfig};
    use clugp_graph::order::{ordered_edges, StreamOrder};
    use clugp_graph::stream::InMemoryStream;

    fn web_edges(n: u64, seed: u64) -> (u64, Vec<Edge>) {
        let g = generate_copying_model(&CopyingModelConfig {
            vertices: n,
            seed,
            ..Default::default()
        });
        (g.num_vertices(), ordered_edges(&g, StreamOrder::Bfs))
    }

    #[test]
    fn assigns_all_and_validates() {
        let (n, edges) = web_edges(1_000, 1);
        let mut s = InMemoryStream::new(n, edges);
        let run = Mint::default().partition(&mut s, 8).unwrap();
        run.partitioning.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        let (n, edges) = web_edges(800, 2);
        let mut s = InMemoryStream::new(n, edges);
        let a = Mint::default().partition(&mut s, 8).unwrap();
        let b = Mint::default().partition(&mut s, 8).unwrap();
        assert_eq!(a.partitioning.assignments, b.partitioning.assignments);
    }

    #[test]
    fn quality_between_hashing_and_hdrf() {
        let (n, edges) = web_edges(3_000, 3);
        let mut s = InMemoryStream::new(n, edges.clone());
        let mint = Mint::default().partition(&mut s, 16).unwrap();
        let hash = crate::baselines::Hashing::default()
            .partition(&mut s, 16)
            .unwrap();
        let qm = PartitionQuality::compute(&edges, &mint.partitioning);
        let qh = PartitionQuality::compute(&edges, &hash.partitioning);
        assert!(
            qm.replication_factor < qh.replication_factor,
            "mint {} should beat hashing {}",
            qm.replication_factor,
            qh.replication_factor
        );
    }

    #[test]
    fn small_batches_still_cover_stream() {
        let (n, edges) = web_edges(500, 4);
        let len = edges.len();
        let mut s = InMemoryStream::new(n, edges);
        let run = Mint::new(MintConfig {
            batch_size: 37,
            ..Default::default()
        })
        .partition(&mut s, 4)
        .unwrap();
        assert_eq!(run.partitioning.assignments.len(), len);
        run.partitioning.validate().unwrap();
    }

    #[test]
    fn rejects_zero_batch() {
        let (n, edges) = web_edges(100, 5);
        let mut s = InMemoryStream::new(n, edges);
        let err = Mint::new(MintConfig {
            batch_size: 0,
            ..Default::default()
        })
        .partition(&mut s, 4);
        assert!(err.is_err());
    }

    #[test]
    fn balance_is_reasonable() {
        let (n, edges) = web_edges(2_000, 6);
        let mut s = InMemoryStream::new(n, edges.clone());
        let run = Mint::default().partition(&mut s, 8).unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        assert!(q.relative_balance < 2.0, "balance {}", q.relative_balance);
    }

    #[test]
    fn thread_count_does_not_change_single_wave_result() {
        // With batch_size >= |E| there is one batch; threads must not matter.
        let (n, edges) = web_edges(400, 7);
        let mut s = InMemoryStream::new(n, edges);
        let a = Mint::new(MintConfig {
            threads: 1,
            ..Default::default()
        })
        .partition(&mut s, 4)
        .unwrap();
        let b = Mint::new(MintConfig {
            threads: 4,
            ..Default::default()
        })
        .partition(&mut s, 4)
        .unwrap();
        assert_eq!(a.partitioning.assignments, b.partitioning.assignments);
    }
}
