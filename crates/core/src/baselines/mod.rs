//! The vertex-cut streaming baselines of Table I, implemented from their
//! original papers:
//!
//! | Algorithm | Source | Time | Quality |
//! |-----------|--------|------|---------|
//! | [`Hashing`] | PowerGraph random vertex-cut (Gonzalez et al., OSDI'12) | Low | Low |
//! | [`Grid`] | 2D constrained hashing (Jain et al., GRADES'13) — extra baseline, not in the paper's Table I | Low | Low-Med |
//! | [`Dbh`] | Degree-Based Hashing (Xie et al., NeurIPS'14) | Low | Low |
//! | [`Mint`] | Quasi-streaming game partitioning (Hua et al., TPDS'19) | Medium | Medium |
//! | [`Greedy`] | PowerGraph oblivious greedy (Gonzalez et al., OSDI'12) | High | High |
//! | [`Hdrf`] | High-Degree Replicated First (Petroni et al., CIKM'15) | High | High |

pub(crate) mod dbh;
pub(crate) mod greedy;
pub(crate) mod grid;
pub(crate) mod hashing;
pub(crate) mod hdrf;
pub(crate) mod mint;

pub use dbh::Dbh;
pub use greedy::Greedy;
pub use grid::Grid;
pub use hashing::Hashing;
pub use hdrf::{Hdrf, HdrfConfig};
pub use mint::{Mint, MintConfig};
