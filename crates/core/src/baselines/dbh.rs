//! DBH — Degree-Based Hashing (Xie et al., NeurIPS 2014).
//!
//! For each edge `(u, v)`, hash the endpoint with the *smaller* degree: the
//! edge lands in that endpoint's home partition, so high-degree vertices are
//! the ones that get cut (replicated), which is provably good on power-law
//! graphs. Degrees are the partial degrees observed so far in the stream
//! (the streaming adaptation; the original assumes a degree oracle).

use crate::error::Result;
use crate::memory::MemoryReport;
use crate::partition::{PartitionRun, Partitioning, Timings};
use crate::partitioner::{mix64, start_run, Partitioner};
use crate::state::PartitionLoads;
use crate::vertex_table::{VertexTable, DEFAULT_MAX_VERTICES};
use clugp_graph::stream::{chunk_edges, try_for_each_chunk, RestreamableStream};
use clugp_graph::types::Edge;

/// Per-edge DBH kernel: bumps partial degrees and picks the partition by
/// hashing the lower-degree endpoint. Shared by the monolithic loop and
/// the distributed worker so both paths stay bit-identical.
#[inline]
pub(crate) fn dbh_edge(e: Edge, seed: u64, k: u32, degree: &mut VertexTable<u32>) -> Result<u32> {
    degree.ensure(e.src.max(e.dst))?;
    degree[e.src] += 1;
    degree[e.dst] += 1;
    // Hash the lower-degree endpoint (cut the higher-degree one).
    let key = if degree[e.src] <= degree[e.dst] {
        e.src
    } else {
        e.dst
    };
    Ok((mix64(u64::from(key) ^ seed) % u64::from(k)) as u32)
}

/// Default hash seed (shared with the distributed engine so
/// `DistAlgo::dbh()` matches `Dbh::default()`).
pub(crate) const DEFAULT_SEED: u64 = 0xDB4;

/// The degree-based hashing partitioner.
#[derive(Debug, Clone)]
pub struct Dbh {
    seed: u64,
    max_vertices: u64,
}

impl Dbh {
    /// Creates a DBH partitioner with the given hash seed.
    pub fn new(seed: u64) -> Self {
        Dbh {
            seed,
            max_vertices: DEFAULT_MAX_VERTICES,
        }
    }

    /// Caps the internal vertex id space (see `crate::vertex_table`).
    pub fn with_max_vertices(seed: u64, max_vertices: u64) -> Self {
        Dbh { seed, max_vertices }
    }
}

impl Default for Dbh {
    fn default() -> Self {
        Dbh::new(DEFAULT_SEED)
    }
}

impl Partitioner for Dbh {
    fn name(&self) -> &'static str {
        "DBH"
    }

    fn partition(&mut self, stream: &mut dyn RestreamableStream, k: u32) -> Result<PartitionRun> {
        let start = std::time::Instant::now();
        let (n, m) = start_run(stream, k)?;
        let mut degree: VertexTable<u32> = VertexTable::with_limit(n, 0, self.max_vertices)?;
        let mut assignments = Vec::with_capacity(m as usize);
        let mut loads = PartitionLoads::new(k);
        try_for_each_chunk(stream, chunk_edges(), |chunk| -> Result<()> {
            for &e in chunk {
                let p = dbh_edge(e, self.seed, k, &mut degree)?;
                assignments.push(p);
                loads.add(p);
            }
            Ok(())
        })?;
        let mut memory = MemoryReport::new();
        memory.add("degrees", degree.memory_bytes());
        Ok(PartitionRun {
            partitioning: Partitioning {
                k,
                num_vertices: n.max(degree.len()),
                assignments,
                loads: loads.into_vec(),
            },
            memory,
            timings: Timings {
                total: start.elapsed(),
                ..Default::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use clugp_graph::stream::InMemoryStream;
    use clugp_graph::types::Edge;

    /// A star graph: hub 0 connected to n spokes.
    fn star(n: u32) -> Vec<Edge> {
        (1..=n).map(|i| Edge::new(0, i)).collect()
    }

    #[test]
    fn star_cuts_the_hub_not_the_spokes() {
        let edges = star(400);
        let mut s = InMemoryStream::from_edges(edges.clone());
        let run = Dbh::default().partition(&mut s, 8).unwrap();
        run.partitioning.validate().unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        // Spokes are hashed to their own home partitions; only the hub is
        // replicated, so total replicas ≈ |V| + (k - 1).
        assert!(
            q.total_replicas <= 401 + 8,
            "replicas {} should be near |V|",
            q.total_replicas
        );
    }

    #[test]
    fn spoke_edges_follow_spoke_hash() {
        // After the first edge, the hub has higher partial degree than every
        // fresh spoke, so each edge is hashed by its spoke id.
        let edges = star(50);
        let mut s = InMemoryStream::from_edges(edges);
        let seed = 0xDB4;
        let run = Dbh::new(seed).partition(&mut s, 4).unwrap();
        for (i, &p) in run.partitioning.assignments.iter().enumerate().skip(1) {
            let spoke = (i + 1) as u64;
            assert_eq!(p, (mix64(spoke ^ seed) % 4) as u32);
        }
    }

    #[test]
    fn deterministic() {
        let edges = star(100);
        let mut s = InMemoryStream::from_edges(edges);
        let a = Dbh::default().partition(&mut s, 5).unwrap();
        let b = Dbh::default().partition(&mut s, 5).unwrap();
        assert_eq!(a.partitioning.assignments, b.partitioning.assignments);
    }

    #[test]
    fn memory_reports_degree_array() {
        let mut s = InMemoryStream::from_edges(star(100));
        let run = Dbh::default().partition(&mut s, 5).unwrap();
        assert!(run.memory.get("degrees").unwrap() >= 101 * 4);
    }

    #[test]
    fn grows_past_missing_vertex_hint() {
        // Stream with a lying hint: says 1 vertex, contains ids up to 9.
        let mut s = InMemoryStream::new(1, vec![Edge::new(8, 9)]);
        let run = Dbh::default().partition(&mut s, 2).unwrap();
        assert_eq!(run.partitioning.assignments.len(), 1);
        assert!(run.partitioning.num_vertices >= 10);
    }
}
