//! CLUGP — CLUstering-based restreaming Graph Partitioning (ICDE 2022) —
//! and the vertex-cut streaming baselines it is evaluated against.
//!
//! # What this crate provides
//!
//! * [`clugp::Clugp`] — the paper's three-pass architecture:
//!   streaming clustering (allocation–splitting–migration, Algorithm 2),
//!   game-theoretic cluster partitioning (Algorithm 3), and partition
//!   transformation (Algorithm 1). Ablation switches reproduce CLUGP-S
//!   (no splitting) and CLUGP-G (greedy cluster assignment).
//! * [`baselines`] — Hashing, DBH, Grid, Greedy (PowerGraph oblivious),
//!   HDRF, and Mint, implemented from their original papers.
//! * [`edgecut`] — the complementary edge-cut family (LDG, FENNEL) with cut
//!   metrics, making the paper's §II-C power-law argument testable.
//! * [`partitioner::Partitioner`] — the common streaming interface; every
//!   algorithm consumes a [`clugp_graph::stream::RestreamableStream`] and
//!   produces a [`partition::PartitionRun`] bundling the edge assignment,
//!   wall-clock phase timings, and an honest memory report.
//! * [`metrics`] — replication factor and relative load balance (paper
//!   §II-B), computed from the edge assignment.
//!
//! # Quickstart
//!
//! ```
//! use clugp::clugp::{Clugp, ClugpConfig};
//! use clugp::metrics::PartitionQuality;
//! use clugp::partitioner::Partitioner;
//! use clugp_graph::gen::{generate_copying_model, CopyingModelConfig};
//! use clugp_graph::order::{ordered_edges, StreamOrder};
//! use clugp_graph::stream::InMemoryStream;
//!
//! let graph = generate_copying_model(&CopyingModelConfig {
//!     vertices: 2_000,
//!     ..Default::default()
//! });
//! let edges = ordered_edges(&graph, StreamOrder::Bfs);
//! let mut stream = InMemoryStream::new(graph.num_vertices(), edges.clone());
//!
//! let mut algo = Clugp::new(ClugpConfig::default());
//! let run = algo.partition(&mut stream, 8).unwrap();
//! let quality = PartitionQuality::compute(&edges, &run.partitioning);
//! assert!(quality.replication_factor >= 1.0);
//! assert!(quality.relative_balance <= 1.05);
//! ```

#![warn(missing_docs)]

pub mod ampc;
pub mod baselines;
pub mod clugp;
pub mod edgecut;
pub mod error;
pub mod memory;
pub mod metrics;
pub mod partition;
pub mod partition_io;
pub mod partitioner;
pub mod state;
pub mod vertex_table;

pub use error::{PartitionError, Result};
pub use partition::{PartitionRun, Partitioning, Timings};
pub use partitioner::Partitioner;
pub use vertex_table::VertexTable;

/// The observability substrate (spans, counters, Chrome trace export) the
/// AMPC engine records into — re-exported so downstream consumers of
/// [`ampc::DistOutcome::trace`] need no extra dependency edge.
pub use clugp_obs as obs;
