//! Transport abstraction for coordinator/worker exchange.
//!
//! A [`Transport`] is one duplex, ordered, reliable frame pipe. Two
//! implementations:
//!
//! * [`channel_pair`] — in-process bounded channels (the default). Frames
//!   are `Vec<u8>` handed over `std::sync::mpsc::sync_channel`, so
//!   backpressure comes for free and the path composes with the rayon
//!   pools the solvers already use.
//! * [`UnixTransport`] — a Unix stream socket with a 4-byte little-endian
//!   length prefix per frame, for multi-process `clugp-part --workers N`.
//!
//! Both count frames and payload bytes; the bench's bytes-exchanged
//! numbers come straight from these counters. Both honor a recv/send
//! deadline ([`Transport::set_deadline`]) so a dead peer surfaces as a
//! typed [`FaultKind::Timeout`] instead of a hang, and the socket framing
//! bounds frame lengths by [`MAX_FRAME_BYTES`] so a corrupt length prefix
//! fails as [`FaultKind::Corrupt`] instead of attempting a huge
//! allocation.

use crate::error::{FaultKind, PartitionError, Result};
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::time::{Duration, Instant};

/// Largest accepted frame payload (1 GiB). Every legitimate frame —
/// control messages, chunk routes, inline edge ranges — is far below
/// this; a length prefix beyond it can only come from a desynchronized
/// or corrupted stream.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// Message-tag slots tracked by the per-verb histogram: one per protocol
/// tag byte (see [`super::proto::Msg`]) plus a trailing "unknown" bucket
/// for tags outside the protocol (e.g. a fault-corrupted first byte).
pub const VERB_SLOTS: usize = 25;

/// Per-verb traffic tally (sent + received combined, per endpoint).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerbTally {
    /// Payload bytes of frames with this tag.
    pub bytes: u64,
    /// Frames with this tag.
    pub frames: u64,
}

/// Traffic counters for one transport endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Payload bytes sent (excluding framing).
    pub bytes_sent: u64,
    /// Payload bytes received (excluding framing).
    pub bytes_received: u64,
    /// Frames sent.
    pub frames_sent: u64,
    /// Frames received.
    pub frames_received: u64,
    /// Per-message-type histogram, indexed by the frame's first (tag)
    /// byte; index [`VERB_SLOTS`]` - 1` buckets unrecognized tags.
    pub by_verb: [VerbTally; VERB_SLOTS],
}

impl NetStats {
    /// Component-wise sum.
    pub fn merge(&mut self, other: NetStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        for (d, s) in self.by_verb.iter_mut().zip(other.by_verb.iter()) {
            d.bytes += s.bytes;
            d.frames += s.frames;
        }
    }

    /// The histogram slot a frame lands in, keyed on its tag byte.
    pub fn verb_slot(frame: &[u8]) -> usize {
        match frame.first() {
            Some(&tag) if (tag as usize) < VERB_SLOTS - 1 => tag as usize,
            _ => VERB_SLOTS - 1,
        }
    }

    fn tally(&mut self, frame: &[u8]) {
        let slot = Self::verb_slot(frame);
        self.by_verb[slot].bytes += frame.len() as u64;
        self.by_verb[slot].frames += 1;
    }
}

/// One end of a duplex, ordered, reliable frame pipe.
pub trait Transport: Send {
    /// Sends one frame.
    fn send(&mut self, frame: &[u8]) -> Result<()>;
    /// Receives the next frame, blocking until one arrives or the
    /// deadline (if any) expires.
    fn recv(&mut self) -> Result<Vec<u8>>;
    /// Bounds how long `recv` (and, where the medium can fill up, `send`)
    /// may block before failing with [`FaultKind::Timeout`]. `None`
    /// restores fully blocking behavior (the default).
    fn set_deadline(&mut self, timeout: Option<Duration>) {
        let _ = timeout;
    }
    /// Traffic counters for this endpoint.
    fn stats(&self) -> NetStats;
}

fn fault(kind: FaultKind, what: &str, e: impl std::fmt::Display) -> PartitionError {
    PartitionError::fault(kind, format!("transport {what}: {e}"))
}

/// Maps an io error to a fault kind: deadline expiries are `Timeout`,
/// everything else (EOF, reset, broken pipe) means the peer is gone.
fn io_fault(what: &str, e: std::io::Error) -> PartitionError {
    let kind = match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => FaultKind::Timeout,
        _ => FaultKind::Disconnected,
    };
    fault(kind, what, e)
}

/// In-process endpoint over a pair of bounded channels.
pub struct ChannelTransport {
    tx: SyncSender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    deadline: Option<Duration>,
    stats: NetStats,
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        match self.deadline {
            None => self
                .tx
                .send(frame.to_vec())
                .map_err(|_| fault(FaultKind::Disconnected, "send", "peer hung up"))?,
            Some(limit) => {
                // `SyncSender` has no bounded-wait send, so poll `try_send`
                // until the buffer drains or the deadline passes.
                let start = Instant::now();
                let mut pending = frame.to_vec();
                loop {
                    match self.tx.try_send(pending) {
                        Ok(()) => break,
                        Err(TrySendError::Disconnected(_)) => {
                            return Err(fault(FaultKind::Disconnected, "send", "peer hung up"))
                        }
                        Err(TrySendError::Full(back)) => {
                            if start.elapsed() >= limit {
                                return Err(fault(
                                    FaultKind::Timeout,
                                    "send",
                                    format!("peer not draining for {limit:?}"),
                                ));
                            }
                            pending = back;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
            }
        }
        self.stats.bytes_sent += frame.len() as u64;
        self.stats.frames_sent += 1;
        self.stats.tally(frame);
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        let frame = match self.deadline {
            None => self
                .rx
                .recv()
                .map_err(|_| fault(FaultKind::Disconnected, "recv", "peer hung up"))?,
            Some(limit) => self.rx.recv_timeout(limit).map_err(|e| match e {
                RecvTimeoutError::Timeout => fault(
                    FaultKind::Timeout,
                    "recv",
                    format!("no frame within {limit:?}"),
                ),
                RecvTimeoutError::Disconnected => {
                    fault(FaultKind::Disconnected, "recv", "peer hung up")
                }
            })?,
        };
        self.stats.bytes_received += frame.len() as u64;
        self.stats.frames_received += 1;
        self.stats.tally(&frame);
        Ok(frame)
    }

    fn set_deadline(&mut self, timeout: Option<Duration>) {
        self.deadline = timeout;
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

/// Builds a connected pair of in-process endpoints with `capacity` frames
/// of buffering per direction.
pub fn channel_pair(capacity: usize) -> (ChannelTransport, ChannelTransport) {
    let (a_tx, b_rx) = std::sync::mpsc::sync_channel(capacity.max(1));
    let (b_tx, a_rx) = std::sync::mpsc::sync_channel(capacity.max(1));
    (
        ChannelTransport {
            tx: a_tx,
            rx: a_rx,
            deadline: None,
            stats: NetStats::default(),
        },
        ChannelTransport {
            tx: b_tx,
            rx: b_rx,
            deadline: None,
            stats: NetStats::default(),
        },
    )
}

/// Unix-socket endpoint: each frame is a 4-byte little-endian payload
/// length followed by the payload. Zero-length and over-cap frames are
/// rejected — every protocol message carries at least a tag byte, so an
/// empty or huge frame can only mean a corrupted prefix.
pub struct UnixTransport {
    stream: UnixStream,
    stats: NetStats,
}

impl UnixTransport {
    /// Wraps a connected stream.
    pub fn new(stream: UnixStream) -> UnixTransport {
        UnixTransport {
            stream,
            stats: NetStats::default(),
        }
    }

    /// Builds a connected in-process socketpair (for tests exercising the
    /// socket framing without a filesystem path).
    pub fn pair() -> Result<(UnixTransport, UnixTransport)> {
        let (a, b) = UnixStream::pair().map_err(|e| io_fault("socketpair", e))?;
        Ok((UnixTransport::new(a), UnixTransport::new(b)))
    }
}

impl Transport for UnixTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        if frame.is_empty() || frame.len() > MAX_FRAME_BYTES {
            return Err(fault(
                FaultKind::Corrupt,
                "send",
                format!("frame length {} outside 1..={MAX_FRAME_BYTES}", frame.len()),
            ));
        }
        let len = frame.len() as u32;
        // One buffer, one write_all: avoids interleaving hazards and halves
        // syscalls for the small control frames that dominate.
        let mut buf = Vec::with_capacity(4 + frame.len());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(frame);
        self.stream
            .write_all(&buf)
            .map_err(|e| io_fault("send", e))?;
        self.stats.bytes_sent += frame.len() as u64;
        self.stats.frames_sent += 1;
        self.stats.tally(frame);
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        let mut len = [0u8; 4];
        self.stream
            .read_exact(&mut len)
            .map_err(|e| io_fault("recv", e))?;
        let len = u32::from_le_bytes(len) as usize;
        if len == 0 || len > MAX_FRAME_BYTES {
            // Do NOT allocate `len` bytes: a corrupt prefix must fail
            // cleanly, not OOM the coordinator.
            return Err(fault(
                FaultKind::Corrupt,
                "recv",
                format!("frame length prefix {len} outside 1..={MAX_FRAME_BYTES}"),
            ));
        }
        let mut frame = vec![0u8; len];
        self.stream
            .read_exact(&mut frame)
            .map_err(|e| io_fault("recv", e))?;
        self.stats.bytes_received += frame.len() as u64;
        self.stats.frames_received += 1;
        self.stats.tally(&frame);
        Ok(frame)
    }

    fn set_deadline(&mut self, timeout: Option<Duration>) {
        // A zero Duration means "block forever" to the socket API, so the
        // clamp below keeps tiny-but-nonzero deadlines meaningful.
        let t = timeout.map(|d| d.max(Duration::from_millis(1)));
        let _ = self.stream.set_read_timeout(t);
        let _ = self.stream.set_write_timeout(t);
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut a: impl Transport, mut b: impl Transport) {
        a.send(b"hello").unwrap();
        a.send(b"!").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        assert_eq!(b.recv().unwrap(), b"!");
        b.send(&[9u8; 100_000]).unwrap();
        assert_eq!(a.recv().unwrap().len(), 100_000);
        assert_eq!(a.stats().frames_sent, 2);
        assert_eq!(a.stats().bytes_sent, 6);
        assert_eq!(a.stats().bytes_received, 100_000);
        assert_eq!(b.stats().frames_received, 2);
    }

    #[test]
    fn channel_frames_round_trip() {
        let (a, b) = channel_pair(4);
        exercise(a, b);
    }

    #[test]
    fn per_verb_histogram_keys_on_the_tag_byte() {
        let (mut a, mut b) = channel_pair(4);
        a.send(&[7, 1, 2, 3]).unwrap(); // tag 7 (Route), 4 bytes
        a.send(&[7]).unwrap();
        a.send(&[200, 0]).unwrap(); // unknown tag → last bucket
        for _ in 0..3 {
            b.recv().unwrap();
        }
        for t in [a.stats(), b.stats()] {
            assert_eq!(t.by_verb[7].frames, 2);
            assert_eq!(t.by_verb[7].bytes, 5);
            assert_eq!(t.by_verb[VERB_SLOTS - 1].frames, 1);
            assert_eq!(t.by_verb[VERB_SLOTS - 1].bytes, 2);
        }
        let mut merged = a.stats();
        merged.merge(b.stats());
        assert_eq!(merged.by_verb[7].frames, 4);
    }

    #[test]
    fn unix_frames_round_trip() {
        let (a, b) = UnixTransport::pair().unwrap();
        exercise(a, b);
    }

    #[test]
    fn channel_disconnect_is_a_typed_fault() {
        let (mut a, b) = channel_pair(1);
        drop(b);
        let err = a.send(b"x").unwrap_err();
        assert!(matches!(
            err,
            PartitionError::Fault {
                kind: FaultKind::Disconnected,
                ..
            }
        ));
        assert!(err.is_retryable());
    }

    #[test]
    fn channel_deadline_bounds_recv_and_send() {
        let (mut a, mut b) = channel_pair(1);
        a.set_deadline(Some(Duration::from_millis(20)));
        let err = a.recv().unwrap_err();
        assert!(matches!(
            err,
            PartitionError::Fault {
                kind: FaultKind::Timeout,
                ..
            }
        ));
        // Fill the one-frame buffer; the bounded-wait send must time out
        // rather than block forever on the undrained peer.
        a.send(b"fill").unwrap();
        let err = a.send(b"over").unwrap_err();
        assert!(matches!(
            err,
            PartitionError::Fault {
                kind: FaultKind::Timeout,
                ..
            }
        ));
        b.set_deadline(Some(Duration::from_millis(20)));
        assert_eq!(b.recv().unwrap(), b"fill");
    }

    #[test]
    fn unix_deadline_bounds_recv() {
        let (mut a, _b) = UnixTransport::pair().unwrap();
        a.set_deadline(Some(Duration::from_millis(20)));
        let err = a.recv().unwrap_err();
        assert!(matches!(
            err,
            PartitionError::Fault {
                kind: FaultKind::Timeout,
                ..
            }
        ));
    }

    #[test]
    fn unix_eof_is_disconnected() {
        let (mut a, b) = UnixTransport::pair().unwrap();
        drop(b);
        let err = a.recv().unwrap_err();
        assert!(matches!(
            err,
            PartitionError::Fault {
                kind: FaultKind::Disconnected,
                ..
            }
        ));
    }

    #[test]
    fn unix_rejects_corrupt_length_prefix_without_allocating() {
        use std::io::Write as _;
        // Zero-length prefix: no protocol message encodes to zero bytes.
        let (mut a, b) = UnixTransport::pair().unwrap();
        let mut raw = b.stream.try_clone().unwrap();
        raw.write_all(&0u32.to_le_bytes()).unwrap();
        let err = a.recv().unwrap_err();
        assert!(matches!(
            err,
            PartitionError::Fault {
                kind: FaultKind::Corrupt,
                ..
            }
        ));
        assert!(err.to_string().contains("length prefix"));

        // A hand-corrupted huge prefix must fail cleanly, not OOM.
        let (mut a, b) = UnixTransport::pair().unwrap();
        let mut raw = b.stream.try_clone().unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let err = a.recv().unwrap_err();
        assert!(matches!(
            err,
            PartitionError::Fault {
                kind: FaultKind::Corrupt,
                ..
            }
        ));

        // And the cap is symmetric: empty frames cannot be sent either.
        let (mut a, _b) = UnixTransport::pair().unwrap();
        assert!(a.send(&[]).is_err());
    }
}
