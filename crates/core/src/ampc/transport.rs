//! Transport abstraction for coordinator/worker exchange.
//!
//! A [`Transport`] is one duplex, ordered, reliable frame pipe. Two
//! implementations:
//!
//! * [`channel_pair`] — in-process bounded channels (the default). Frames
//!   are `Vec<u8>` handed over `std::sync::mpsc::sync_channel`, so
//!   backpressure comes for free and the path composes with the rayon
//!   pools the solvers already use.
//! * [`UnixTransport`] — a Unix stream socket with a 4-byte little-endian
//!   length prefix per frame, for multi-process `clugp-part --workers N`.
//!
//! Both count frames and payload bytes; the bench's bytes-exchanged
//! numbers come straight from these counters.

use crate::error::{PartitionError, Result};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::sync::mpsc::{Receiver, SyncSender};

/// Traffic counters for one transport endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Payload bytes sent (excluding framing).
    pub bytes_sent: u64,
    /// Payload bytes received (excluding framing).
    pub bytes_received: u64,
    /// Frames sent.
    pub frames_sent: u64,
    /// Frames received.
    pub frames_received: u64,
}

impl NetStats {
    /// Component-wise sum.
    pub fn merge(&mut self, other: NetStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
    }
}

/// One end of a duplex, ordered, reliable frame pipe.
pub trait Transport: Send {
    /// Sends one frame.
    fn send(&mut self, frame: &[u8]) -> Result<()>;
    /// Receives the next frame, blocking until one arrives.
    fn recv(&mut self) -> Result<Vec<u8>>;
    /// Traffic counters for this endpoint.
    fn stats(&self) -> NetStats;
}

fn io_err(what: &str, e: impl std::fmt::Display) -> PartitionError {
    PartitionError::InvalidParam(format!("transport {what}: {e}"))
}

/// In-process endpoint over a pair of bounded channels.
pub struct ChannelTransport {
    tx: SyncSender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    stats: NetStats,
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.stats.bytes_sent += frame.len() as u64;
        self.stats.frames_sent += 1;
        self.tx
            .send(frame.to_vec())
            .map_err(|_| io_err("send", "peer hung up"))
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        let frame = self.rx.recv().map_err(|_| io_err("recv", "peer hung up"))?;
        self.stats.bytes_received += frame.len() as u64;
        self.stats.frames_received += 1;
        Ok(frame)
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

/// Builds a connected pair of in-process endpoints with `capacity` frames
/// of buffering per direction.
pub fn channel_pair(capacity: usize) -> (ChannelTransport, ChannelTransport) {
    let (a_tx, b_rx) = std::sync::mpsc::sync_channel(capacity.max(1));
    let (b_tx, a_rx) = std::sync::mpsc::sync_channel(capacity.max(1));
    (
        ChannelTransport {
            tx: a_tx,
            rx: a_rx,
            stats: NetStats::default(),
        },
        ChannelTransport {
            tx: b_tx,
            rx: b_rx,
            stats: NetStats::default(),
        },
    )
}

/// Unix-socket endpoint: each frame is a 4-byte little-endian payload
/// length followed by the payload.
pub struct UnixTransport {
    stream: UnixStream,
    stats: NetStats,
}

impl UnixTransport {
    /// Wraps a connected stream.
    pub fn new(stream: UnixStream) -> UnixTransport {
        UnixTransport {
            stream,
            stats: NetStats::default(),
        }
    }

    /// Builds a connected in-process socketpair (for tests exercising the
    /// socket framing without a filesystem path).
    pub fn pair() -> Result<(UnixTransport, UnixTransport)> {
        let (a, b) = UnixStream::pair().map_err(|e| io_err("socketpair", e))?;
        Ok((UnixTransport::new(a), UnixTransport::new(b)))
    }
}

impl Transport for UnixTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        let len = u32::try_from(frame.len()).map_err(|_| io_err("send", "frame over 4 GiB"))?;
        // One buffer, one write_all: avoids interleaving hazards and halves
        // syscalls for the small control frames that dominate.
        let mut buf = Vec::with_capacity(4 + frame.len());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(frame);
        self.stream.write_all(&buf).map_err(|e| io_err("send", e))?;
        self.stats.bytes_sent += frame.len() as u64;
        self.stats.frames_sent += 1;
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        let mut len = [0u8; 4];
        self.stream
            .read_exact(&mut len)
            .map_err(|e| io_err("recv", e))?;
        let len = u32::from_le_bytes(len) as usize;
        let mut frame = vec![0u8; len];
        self.stream
            .read_exact(&mut frame)
            .map_err(|e| io_err("recv", e))?;
        self.stats.bytes_received += frame.len() as u64;
        self.stats.frames_received += 1;
        Ok(frame)
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut a: impl Transport, mut b: impl Transport) {
        a.send(b"hello").unwrap();
        a.send(&[]).unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        assert_eq!(b.recv().unwrap(), Vec::<u8>::new());
        b.send(&[9u8; 100_000]).unwrap();
        assert_eq!(a.recv().unwrap().len(), 100_000);
        assert_eq!(a.stats().frames_sent, 2);
        assert_eq!(a.stats().bytes_sent, 5);
        assert_eq!(a.stats().bytes_received, 100_000);
        assert_eq!(b.stats().frames_received, 2);
    }

    #[test]
    fn channel_frames_round_trip() {
        let (a, b) = channel_pair(4);
        exercise(a, b);
    }

    #[test]
    fn unix_frames_round_trip() {
        let (a, b) = UnixTransport::pair().unwrap();
        exercise(a, b);
    }

    #[test]
    fn channel_disconnect_is_an_error() {
        let (mut a, b) = channel_pair(1);
        drop(b);
        assert!(a.send(b"x").is_err());
    }
}
