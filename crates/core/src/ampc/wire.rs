//! Little-endian binary wire codec for the coordinator/worker protocol.
//!
//! The vendored serde stand-in is serialize-only (no `Deserialize`
//! machinery), so frames are encoded by hand in the same style as the
//! repo's other on-disk formats (`CLUGPPA1`, `CLUGPZ`): fixed-width
//! little-endian scalars, length-prefixed sequences. DESIGN.md §7 records
//! this as the offline stand-in divergence from the issue's "serde-framed"
//! wording.

use crate::error::{PartitionError, Result};

/// Append-only frame writer.
#[derive(Debug, Default)]
pub struct Wr {
    buf: Vec<u8>,
}

impl Wr {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Wr { buf: Vec::new() }
    }

    /// Consumes the writer, returning the encoded frame.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a tag/enum discriminant byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` (LE bit pattern).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `u32` sequence.
    pub fn u32s(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u32(x);
        }
    }

    /// Appends a length-prefixed `u64` sequence.
    pub fn u64s(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }
}

/// Cursor-based frame reader; every accessor fails cleanly on truncation.
#[derive(Debug)]
pub struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn short() -> PartitionError {
    PartitionError::InvalidParam("truncated protocol frame".into())
}

impl<'a> Rd<'a> {
    /// Wraps a frame for reading.
    pub fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(short)?;
        if end > self.buf.len() {
            return Err(short());
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a tag byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte.
    pub fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length as usize, bounded by the remaining frame so a corrupt
    /// prefix cannot trigger a huge allocation.
    pub fn len(&mut self, elem_bytes: usize) -> Result<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if elem_bytes > 0 && n > remaining / (elem_bytes as u64).max(1) + 1 {
            return Err(short());
        }
        usize::try_from(n).map_err(|_| short())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PartitionError::InvalidParam("non-UTF-8 string in frame".into()))
    }

    /// Reads a length-prefixed `u32` sequence.
    pub fn u32s(&mut self) -> Result<Vec<u32>> {
        let n = self.len(4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `u64` sequence.
    pub fn u64s(&mut self) -> Result<Vec<u64>> {
        let n = self.len(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = Wr::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(2.5);
        w.str("shard");
        w.u32s(&[1, 2, 3]);
        w.u64s(&[]);
        let bytes = w.into_bytes();
        let mut r = Rd::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.str().unwrap(), "shard");
        assert_eq!(r.u32s().unwrap(), vec![1, 2, 3]);
        assert!(r.u64s().unwrap().is_empty());
        assert!(r.done());
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let mut w = Wr::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = Rd::new(&bytes[..5]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn corrupt_length_prefix_does_not_allocate() {
        let mut w = Wr::new();
        w.u64(u64::MAX); // claims ~2^64 elements
        let bytes = w.into_bytes();
        let mut r = Rd::new(&bytes);
        assert!(r.u32s().is_err());
    }
}
