//! Little-endian binary wire codec for the coordinator/worker protocol.
//!
//! The vendored serde stand-in is serialize-only (no `Deserialize`
//! machinery), so frames are encoded by hand in the same style as the
//! repo's other on-disk formats (`CLUGPPA1`, `CLUGPZ`): fixed-width
//! little-endian scalars, length-prefixed sequences. DESIGN.md §7 records
//! this as the offline stand-in divergence from the issue's "serde-framed"
//! wording.

use crate::error::{PartitionError, Result};

/// Append-only frame writer.
#[derive(Debug, Default)]
pub struct Wr {
    buf: Vec<u8>,
}

impl Wr {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Wr { buf: Vec::new() }
    }

    /// Reuses `buf`'s allocation for a new frame (hot paths encode into a
    /// per-link scratch vector instead of allocating per frame).
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Wr { buf }
    }

    /// Consumes the writer, returning the encoded frame.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a tag/enum discriminant byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` (LE bit pattern).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `u32` sequence.
    pub fn u32s(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u32(x);
        }
    }

    /// Appends a length-prefixed `u64` sequence.
    pub fn u64s(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }

    /// Appends a LEB128 varint (1 byte for values < 128, up to 10 for the
    /// full `u64` range) — the pack codec's integer idiom, reused on the
    /// route-relay hot path where rows are small counts and bitmasks.
    pub fn vu64(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Appends a varint-count-prefixed sequence of varint `u64`s.
    pub fn vu64s(&mut self, v: &[u64]) {
        self.vu64(v.len() as u64);
        for &x in v {
            self.vu64(x);
        }
    }

    /// Appends a key sequence as varint count + zigzag-varint deltas.
    /// Sorted-ascending keys (the per-chunk distinct-endpoint sets) encode
    /// as small positive gaps; zigzag keeps arbitrary sequences legal.
    pub fn delta_u64s(&mut self, v: &[u64]) {
        self.vu64(v.len() as u64);
        let mut prev = 0u64;
        for &x in v {
            self.vu64(zigzag(x.wrapping_sub(prev) as i64));
            prev = x;
        }
    }
}

/// Maps a signed delta onto the unsigned varint space (small magnitudes,
/// either sign, stay short).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Cursor-based frame reader; every accessor fails cleanly on truncation.
#[derive(Debug)]
pub struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn short() -> PartitionError {
    PartitionError::InvalidParam("truncated protocol frame".into())
}

impl<'a> Rd<'a> {
    /// Wraps a frame for reading.
    pub fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(short)?;
        if end > self.buf.len() {
            return Err(short());
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a tag byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte.
    pub fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length as usize, bounded by the remaining frame so a corrupt
    /// prefix cannot trigger a huge allocation.
    pub fn len(&mut self, elem_bytes: usize) -> Result<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if elem_bytes > 0 && n > remaining / (elem_bytes as u64).max(1) + 1 {
            return Err(short());
        }
        usize::try_from(n).map_err(|_| short())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PartitionError::InvalidParam("non-UTF-8 string in frame".into()))
    }

    /// Reads a length-prefixed `u32` sequence.
    pub fn u32s(&mut self) -> Result<Vec<u32>> {
        let n = self.len(4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `u64` sequence.
    pub fn u64s(&mut self) -> Result<Vec<u64>> {
        let n = self.len(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// Reads a LEB128 varint.
    pub fn vu64(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(short());
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a varint length, bounded by the remaining frame (every
    /// element costs at least one byte, so a corrupt count cannot trigger
    /// a huge allocation).
    fn vlen(&mut self) -> Result<usize> {
        let n = self.vu64()?;
        if n > (self.buf.len() - self.pos) as u64 {
            return Err(short());
        }
        usize::try_from(n).map_err(|_| short())
    }

    /// Reads a [`Wr::vu64s`] sequence.
    pub fn vu64s(&mut self) -> Result<Vec<u64>> {
        let n = self.vlen()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.vu64()?);
        }
        Ok(v)
    }

    /// Reads a [`Wr::delta_u64s`] key sequence.
    pub fn delta_u64s(&mut self) -> Result<Vec<u64>> {
        let n = self.vlen()?;
        let mut v = Vec::with_capacity(n);
        let mut prev = 0u64;
        for _ in 0..n {
            prev = prev.wrapping_add(unzigzag(self.vu64()?) as u64);
            v.push(prev);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = Wr::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(2.5);
        w.str("shard");
        w.u32s(&[1, 2, 3]);
        w.u64s(&[]);
        let bytes = w.into_bytes();
        let mut r = Rd::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.str().unwrap(), "shard");
        assert_eq!(r.u32s().unwrap(), vec![1, 2, 3]);
        assert!(r.u64s().unwrap().is_empty());
        assert!(r.done());
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let mut w = Wr::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = Rd::new(&bytes[..5]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn corrupt_length_prefix_does_not_allocate() {
        let mut w = Wr::new();
        w.u64(u64::MAX); // claims ~2^64 elements
        let bytes = w.into_bytes();
        let mut r = Rd::new(&bytes);
        assert!(r.u32s().is_err());
    }

    #[test]
    fn varints_round_trip_across_the_range() {
        let vals = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX - 1, u64::MAX];
        let mut w = Wr::new();
        for &v in &vals {
            w.vu64(v);
        }
        w.vu64s(&vals);
        let bytes = w.into_bytes();
        let mut r = Rd::new(&bytes);
        for &v in &vals {
            assert_eq!(r.vu64().unwrap(), v);
        }
        assert_eq!(r.vu64s().unwrap(), vals);
        assert!(r.done());
    }

    #[test]
    fn delta_keys_round_trip_and_compress_sorted_runs() {
        // Sorted ascending with small gaps: the chunk-endpoint shape.
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 3 + 7).collect();
        let mut w = Wr::new();
        w.delta_u64s(&keys);
        let delta_len = w.into_bytes().len();
        let mut w = Wr::new();
        w.u64s(&keys);
        let plain_len = w.into_bytes().len();
        assert!(delta_len * 3 < plain_len, "{delta_len} vs {plain_len}");

        let mut w = Wr::new();
        w.delta_u64s(&keys);
        let bytes = w.into_bytes();
        assert_eq!(Rd::new(&bytes).delta_u64s().unwrap(), keys);

        // Non-monotone sequences stay legal through zigzag.
        let wild = vec![5u64, 2, u64::MAX, 0, 7];
        let mut w = Wr::new();
        w.delta_u64s(&wild);
        let bytes = w.into_bytes();
        assert_eq!(Rd::new(&bytes).delta_u64s().unwrap(), wild);
    }

    #[test]
    fn overlong_and_truncated_varints_fail_cleanly() {
        // 11 continuation bytes overflow the 64-bit shift budget.
        let bytes = [0xFFu8; 11];
        assert!(Rd::new(&bytes).vu64().is_err());
        // A continuation bit with nothing after it is a truncation.
        let bytes = [0x80u8];
        assert!(Rd::new(&bytes).vu64().is_err());
        // A huge varint count cannot allocate past the frame.
        let mut w = Wr::new();
        w.vu64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(Rd::new(&bytes).vu64s().is_err());
    }

    #[test]
    fn from_vec_reuses_the_allocation() {
        let mut w = Wr::new();
        w.u64s(&[1, 2, 3]);
        let buf = w.into_bytes();
        let cap = buf.capacity();
        let mut w = Wr::from_vec(buf);
        w.u8(9);
        let out = w.into_bytes();
        assert_eq!(out, [9]);
        assert_eq!(out.capacity(), cap);
    }
}
