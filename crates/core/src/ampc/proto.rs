//! Coordinator ↔ worker message set.
//!
//! Every exchange is a [`Msg`] encoded with the [`super::wire`] codec and
//! shipped as one transport frame. The conversation is strictly
//! request/reply from the coordinator's point of view:
//!
//! ```text
//! coordinator → worker:  Configure, RunStage, StateReq, Scan, Shutdown
//! worker → coordinator:  Hello, ConfigureOk, StageDone, StateResp,
//!                        ScanResp, Route (only while running a stage), Err
//! ```
//!
//! `Route` is the star-topology relay: the active worker asks the
//! coordinator to forward a [`StateOp`] to the worker owning a remote key
//! range; the coordinator issues the matching `StateReq` and forwards the
//! `StateResp` back. Upserts are acked (empty `StateResp`) so a stage
//! cannot finish with state writes still in flight.
//!
//! [`Msg::RouteBatch`] is the windowed, batched form of that relay
//! (DESIGN.md §11): one frame per chunk per owner carries every get and
//! writeback for that owner, with delta-encoded keys (varint gaps over
//! the sorted endpoint set) and varint value runs. Pure-writeback batches
//! are unacknowledged — frame ordering through the coordinator guarantees
//! they are applied before any later dependent read — which is what lets
//! the worker keep several of them in flight behind the transport's
//! bounded window. The `Epoch*` messages and [`Msg::TableCast`] belong to
//! the relaxed concurrent mode, where every worker streams at once and
//! state is reconciled at epoch barriers instead of per chunk.
//!
//! [`Msg::TraceEvents`] is the observability side-channel (DESIGN.md
//! §12): when the run is traced, workers flush their buffered
//! [`clugp_obs::Event`]s to the coordinator just before each `StageDone`,
//! as one frame carrying a per-frame name table (each distinct event name
//! once) plus varint-packed timestamps. The frame also stamps the
//! sender's monotonic clock so the coordinator can re-base multi-process
//! lanes onto its own timeline. The verb is fire-and-forget and carries
//! no partitioning state, so tracing cannot perturb placement decisions.

use super::table::{Layout, MergeOp};
use super::wire::{Rd, Wr};
use super::AmpcMode;
use crate::error::{PartitionError, Result};
use clugp_graph::types::Edge;
use clugp_obs::{Event, EventKind};

fn bad(what: &str) -> PartitionError {
    PartitionError::InvalidParam(format!("malformed protocol frame: {what}"))
}

/// A read or merge request against one table's shard.
#[derive(Debug, Clone, PartialEq)]
pub enum StateOp {
    /// Fetch rows for `keys`; the reply is `keys.len() * width` words
    /// (absent rows read as zeros).
    Get {
        /// Keys to fetch.
        keys: Vec<u64>,
    },
    /// Merge a batch of rows (`keys.len() * width` words, flattened).
    Upsert {
        /// Word-wise combine rule.
        merge: MergeOp,
        /// Row keys.
        keys: Vec<u64>,
        /// Flattened row payload.
        rows: Vec<u64>,
    },
}

/// One operation inside a [`Msg::RouteBatch`] / [`Msg::StateReqBatch`],
/// applied against the batch's shared key set.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOp {
    /// Fetch the batch keys' rows from `table`.
    Get {
        /// Table slot index.
        table: u8,
    },
    /// Merge one flattened row per batch key into `table`.
    Put {
        /// Table slot index.
        table: u8,
        /// Word-wise combine rule.
        merge: MergeOp,
        /// Flattened rows, `keys.len() * width` words.
        vals: Vec<u64>,
    },
}

/// One table's contribution to an epoch exchange (relaxed mode): the
/// keys a worker touched this epoch and either its local deltas
/// ([`Msg::EpochDone`], folded under `merge`) or the merged authoritative
/// rows ([`Msg::EpochSync`], always overwritten).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochTable {
    /// Table slot index.
    pub table: u8,
    /// How the rows fold into the committed state (`Add` deltas for
    /// counters, `BitOr` for replica masks).
    pub merge: MergeOp,
    /// Touched keys, sorted ascending.
    pub keys: Vec<u64>,
    /// Flattened rows, `keys.len() * width` words.
    pub rows: Vec<u64>,
}

/// One barrier-delimited pass over a worker's edge range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stage {
    /// Single-pass baselines (hashing/grid/dbh/greedy/hdrf/mint).
    Baseline,
    /// CLUGP streaming clustering (pass 1).
    ClugpPass1 {
        /// Maximum cluster volume.
        vmax: u64,
    },
    /// CLUGP cluster-graph pair aggregation (between passes 1 and 2).
    ClugpPairs {
        /// Compacted cluster count, fixed by the coordinator.
        num_clusters: u64,
    },
    /// CLUGP partition transformation (pass 3).
    ClugpTransform {
        /// Per-partition load cap `Lmax`.
        lmax: u64,
    },
}

/// Streaming state threaded through the sequenced workers within one
/// stage. Exactly the scalars the monolithic loops carry between chunks;
/// a worker receives the token, runs its edge range, and returns the
/// updated token with `StageDone`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Token {
    /// Per-partition edge loads.
    pub loads: Vec<u64>,
    /// Monotone rebalance cursor (CLUGP transform).
    pub cursor: u32,
    /// Raw cluster ids allocated so far (CLUGP pass 1).
    pub next_raw: u64,
    /// Split count (CLUGP pass 1).
    pub splits: u64,
    /// Migration count (CLUGP pass 1).
    pub migrations: u64,
    /// Balance reroute count (CLUGP transform).
    pub reroutes: u64,
    /// Vertex-table watermark: `max(seen id)+1` across sequenced workers.
    pub table_len: u64,
    /// Edges carried into the next worker's range (Mint partial waves).
    pub carry: Vec<Edge>,
}

/// Sharding descriptor for one named table slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableDef {
    /// Key → worker mapping.
    pub layout: Layout,
    /// Words per row.
    pub width: u32,
}

/// Where a worker's edge range comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum InputSpec {
    /// Edges shipped inline with the setup (channel transport, tests).
    Inline {
        /// Edges of this worker's contiguous range.
        edges: Vec<Edge>,
    },
    /// A contiguous block range of an on-disk CLUGPZ pack the worker
    /// opens itself (multi-process mode).
    Pack {
        /// Pack file path.
        path: String,
        /// First block (inclusive).
        block_start: u64,
        /// Last block (exclusive).
        block_end: u64,
        /// Edge count of the range.
        edges: u64,
    },
}

/// Which per-edge kernel the worker runs, plus the config it needs.
/// Coordinator-only parameters (the CLUGP game, tau) stay out.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgoSpec {
    /// Stateless edge hashing.
    Hashing {
        /// Hash seed.
        seed: u64,
    },
    /// Grid / constrained hashing.
    Grid {
        /// Hash seed.
        seed: u64,
    },
    /// Degree-based hashing.
    Dbh {
        /// Hash seed.
        seed: u64,
        /// Vertex-id cap.
        max_vertices: u64,
    },
    /// PowerGraph greedy.
    Greedy {
        /// Vertex-id cap.
        max_vertices: u64,
    },
    /// HDRF.
    Hdrf {
        /// Replication-score weight λ.
        lambda: f64,
        /// Load-imbalance guard ε.
        epsilon: f64,
        /// Vertex-id cap.
        max_vertices: u64,
    },
    /// Mint game-theoretic batches.
    Mint {
        /// Edges per batch.
        batch: u64,
        /// Batches solved concurrently per wave.
        wave: u64,
        /// Rayon threads (0 = global pool).
        threads: u64,
        /// Best-response round cap.
        rounds: u64,
        /// Balance weight.
        alpha: f64,
        /// Initial-placement seed.
        seed: u64,
    },
    /// CLUGP passes 1 and 3 (pass 2 runs at the coordinator).
    Clugp {
        /// Splitting enabled.
        splitting: bool,
        /// `MigrationPolicy` as a wire tag (0 Anchored, 1 Headroom, 2 Paper).
        migration: u8,
        /// Vertex-id cap.
        max_vertices: u64,
    },
}

/// Everything a worker needs before the first stage.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSetup {
    /// This worker's index.
    pub worker: u32,
    /// Total workers.
    pub workers: u32,
    /// Partition count.
    pub k: u32,
    /// Streaming chunk size in edges.
    pub chunk: u32,
    /// Minimum interval between keep-alive [`Msg::Heartbeat`] frames the
    /// worker emits at chunk boundaries while running a stage (0 = no
    /// heartbeats). Set by the coordinator from its supervision policy.
    pub heartbeat_ms: u32,
    /// Kernel selection.
    pub algo: AlgoSpec,
    /// Edge range source.
    pub input: InputSpec,
    /// Table slots, referenced by index in [`StateOp`] messages.
    pub tables: Vec<TableDef>,
    /// Record spans/instants and flush them as [`Msg::TraceEvents`]
    /// frames before every `StageDone`. Off by default; carried in the
    /// handshake (not a CLI flag on respawned processes) so every
    /// incarnation of a worker agrees with the coordinator.
    pub trace: bool,
}

/// A worker's partial cluster-graph aggregation (CLUGP pairs stage).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PairsPayload {
    /// Sparse intra-cluster edge counts `(cluster, count)`.
    pub intra: Vec<(u64, u64)>,
    /// Sorted, deduplicated packed pair keys `(lo<<32|hi, weight)`.
    pub agg: Vec<(u64, u32)>,
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker greeting (multi-process mode identifies the socket).
    Hello {
        /// Worker index.
        worker: u32,
    },
    /// Coordinator → worker setup.
    Configure(Box<WorkerSetup>),
    /// Worker ack for `Configure`.
    ConfigureOk,
    /// Run one stage over the worker's edge range.
    RunStage {
        /// Stage selector.
        stage: Stage,
        /// Streaming state from the previous worker (sequenced mode) or
        /// the stage-start state (relaxed mode).
        token: Token,
        /// Consistency mode for this stage.
        mode: AmpcMode,
        /// Relaxed mode: chunks streamed between epoch barriers (0 in
        /// sequenced mode and for stages that do not epoch-sync).
        epoch: u32,
    },
    /// Stage finished.
    StageDone {
        /// Updated streaming state.
        token: Token,
        /// Assignments produced for this worker's edges, in stream order.
        assignments: Vec<u32>,
        /// Cluster-graph partials (CLUGP pairs stage only).
        pairs: Option<PairsPayload>,
    },
    /// State service request against the receiver's shard of `table`.
    StateReq {
        /// Table slot index.
        table: u8,
        /// Operation.
        op: StateOp,
    },
    /// State service reply: flattened rows for `Get`, empty ack for
    /// `Upsert`.
    StateResp {
        /// Flattened row words.
        rows: Vec<u64>,
    },
    /// Active worker → coordinator: forward `op` to worker `to`.
    Route {
        /// Target worker.
        to: u32,
        /// Table slot index.
        table: u8,
        /// Operation.
        op: StateOp,
    },
    /// Dump the receiver's shard of `table`.
    Scan {
        /// Table slot index.
        table: u8,
    },
    /// Scan reply.
    ScanResp {
        /// Row keys, ascending.
        keys: Vec<u64>,
        /// Flattened row words.
        rows: Vec<u64>,
    },
    /// Tear down the worker.
    Shutdown,
    /// Fatal worker-side error.
    Err {
        /// Description.
        msg: String,
    },
    /// Worker → coordinator keep-alive while a long stage chunk makes no
    /// other traffic; the coordinator's recv deadline treats it as proof
    /// of life and keeps waiting.
    Heartbeat,
    /// Coordinator → worker: drop all table shards and rebuild them
    /// empty from the configured [`TableDef`]s (recovery restores rows
    /// afterwards from a checkpoint). Doubles as the supervisor's
    /// liveness probe.
    ResetTables,
    /// Worker ack for `ResetTables`.
    ResetOk,
    /// Active worker → coordinator: forward every op in the batch to
    /// worker `to`, against the shared (delta-encoded) key set. Batches
    /// containing a `Get` are answered with one [`Msg::RouteReply`];
    /// pure-writeback batches are unacknowledged.
    RouteBatch {
        /// Target worker.
        to: u32,
        /// Shared key set, sorted ascending.
        keys: Vec<u64>,
        /// Operations against those keys.
        ops: Vec<BatchOp>,
    },
    /// Coordinator → owning worker: the relayed body of a
    /// [`Msg::RouteBatch`].
    StateReqBatch {
        /// Shared key set.
        keys: Vec<u64>,
        /// Operations against those keys.
        ops: Vec<BatchOp>,
    },
    /// Owning worker → coordinator: rows for each `Get` in the batch,
    /// concatenated in op order. Only sent when the batch held a `Get`.
    StateRespBatch {
        /// Flattened row words.
        rows: Vec<u64>,
    },
    /// Coordinator → active worker: the relayed [`Msg::StateRespBatch`].
    RouteReply {
        /// Flattened row words.
        rows: Vec<u64>,
    },
    /// Relaxed mode, worker → coordinator: this worker reached an epoch
    /// barrier; here are its per-partition load deltas and per-table
    /// local contributions since the last barrier.
    EpochDone {
        /// No more chunks after this barrier.
        last: bool,
        /// Per-partition load deltas.
        loads: Vec<u64>,
        /// Per-table touched keys + local deltas.
        tables: Vec<EpochTable>,
    },
    /// Relaxed mode, coordinator → worker: the merged global state after
    /// an epoch barrier (authoritative loads, merged rows for every key
    /// any worker touched this epoch).
    EpochSync {
        /// Every worker is done; send `StageDone` next.
        done: bool,
        /// Merged per-partition loads.
        loads: Vec<u64>,
        /// Merged rows (applied as overwrites).
        tables: Vec<EpochTable>,
    },
    /// Relaxed CLUGP pass 1, worker → coordinator (just before
    /// `StageDone`): the worker's locally-clustered frontier — per
    /// touched vertex a width-3 row (local cluster id + 1 or 0, partial
    /// degree, divided flag) plus the local raw-cluster volume table.
    Pass1Frontier {
        /// Touched vertex ids, ascending.
        keys: Vec<u64>,
        /// Flattened width-3 rows.
        rows: Vec<u64>,
        /// Volume per local raw cluster id.
        vol: Vec<u64>,
    },
    /// Relaxed mode, coordinator → worker: a read-only mirror of one
    /// whole table for the next stage (cluster maps for the CLUGP pairs
    /// and transform stages), replacing per-chunk fetches.
    TableCast {
        /// Table slot index.
        table: u8,
        /// Row keys, ascending.
        keys: Vec<u64>,
        /// Flattened row words.
        rows: Vec<u64>,
    },
    /// Worker → coordinator (traced runs only): the worker's buffered
    /// observability events, flushed just before `StageDone`. Carries no
    /// partitioning state; the coordinator absorbs it on any receive
    /// path and keeps waiting for the frame it actually asked for.
    TraceEvents {
        /// The sender's monotonic clock at flush time, for re-basing
        /// event timestamps onto the coordinator's clock.
        now_us: u64,
        /// Events the sender lost to its buffer cap.
        dropped: u64,
        /// The buffered events, oldest first.
        events: Vec<Event>,
    },
}

fn put_edges(w: &mut Wr, edges: &[Edge]) {
    w.u64(edges.len() as u64);
    for e in edges {
        w.u32(e.src);
        w.u32(e.dst);
    }
}

fn get_edges(r: &mut Rd<'_>) -> Result<Vec<Edge>> {
    let n = r.len(8)?;
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        let src = r.u32()?;
        let dst = r.u32()?;
        edges.push(Edge::new(src, dst));
    }
    Ok(edges)
}

fn put_op(w: &mut Wr, op: &StateOp) {
    match op {
        StateOp::Get { keys } => {
            w.u8(0);
            w.u64s(keys);
        }
        StateOp::Upsert { merge, keys, rows } => {
            w.u8(1);
            w.u8(merge.tag());
            w.u64s(keys);
            w.u64s(rows);
        }
    }
}

fn get_op(r: &mut Rd<'_>) -> Result<StateOp> {
    Ok(match r.u8()? {
        0 => StateOp::Get { keys: r.u64s()? },
        1 => {
            let merge = MergeOp::from_tag(r.u8()?).ok_or_else(|| bad("merge op"))?;
            StateOp::Upsert {
                merge,
                keys: r.u64s()?,
                rows: r.u64s()?,
            }
        }
        _ => return Err(bad("state op tag")),
    })
}

pub(crate) fn put_token(w: &mut Wr, t: &Token) {
    w.u64s(&t.loads);
    w.u32(t.cursor);
    w.u64(t.next_raw);
    w.u64(t.splits);
    w.u64(t.migrations);
    w.u64(t.reroutes);
    w.u64(t.table_len);
    put_edges(w, &t.carry);
}

pub(crate) fn get_token(r: &mut Rd<'_>) -> Result<Token> {
    Ok(Token {
        loads: r.u64s()?,
        cursor: r.u32()?,
        next_raw: r.u64()?,
        splits: r.u64()?,
        migrations: r.u64()?,
        reroutes: r.u64()?,
        table_len: r.u64()?,
        carry: get_edges(r)?,
    })
}

pub(crate) fn put_stage(w: &mut Wr, stage: Stage) {
    match stage {
        Stage::Baseline => w.u8(0),
        Stage::ClugpPass1 { vmax } => {
            w.u8(1);
            w.u64(vmax);
        }
        Stage::ClugpPairs { num_clusters } => {
            w.u8(2);
            w.u64(num_clusters);
        }
        Stage::ClugpTransform { lmax } => {
            w.u8(3);
            w.u64(lmax);
        }
    }
}

pub(crate) fn get_stage(r: &mut Rd<'_>) -> Result<Stage> {
    Ok(match r.u8()? {
        0 => Stage::Baseline,
        1 => Stage::ClugpPass1 { vmax: r.u64()? },
        2 => Stage::ClugpPairs {
            num_clusters: r.u64()?,
        },
        3 => Stage::ClugpTransform { lmax: r.u64()? },
        _ => return Err(bad("stage tag")),
    })
}

fn put_layout(w: &mut Wr, l: Layout) {
    match l {
        Layout::Range { span } => {
            w.u8(0);
            w.u64(span);
        }
        Layout::Striped { stripe } => {
            w.u8(1);
            w.u64(stripe);
        }
    }
}

fn get_layout(r: &mut Rd<'_>) -> Result<Layout> {
    Ok(match r.u8()? {
        0 => Layout::Range { span: r.u64()? },
        1 => Layout::Striped { stripe: r.u64()? },
        _ => return Err(bad("layout tag")),
    })
}

fn put_setup(w: &mut Wr, s: &WorkerSetup) {
    w.u32(s.worker);
    w.u32(s.workers);
    w.u32(s.k);
    w.u32(s.chunk);
    w.u32(s.heartbeat_ms);
    match &s.algo {
        AlgoSpec::Hashing { seed } => {
            w.u8(0);
            w.u64(*seed);
        }
        AlgoSpec::Grid { seed } => {
            w.u8(1);
            w.u64(*seed);
        }
        AlgoSpec::Dbh { seed, max_vertices } => {
            w.u8(2);
            w.u64(*seed);
            w.u64(*max_vertices);
        }
        AlgoSpec::Greedy { max_vertices } => {
            w.u8(3);
            w.u64(*max_vertices);
        }
        AlgoSpec::Hdrf {
            lambda,
            epsilon,
            max_vertices,
        } => {
            w.u8(4);
            w.f64(*lambda);
            w.f64(*epsilon);
            w.u64(*max_vertices);
        }
        AlgoSpec::Mint {
            batch,
            wave,
            threads,
            rounds,
            alpha,
            seed,
        } => {
            w.u8(5);
            w.u64(*batch);
            w.u64(*wave);
            w.u64(*threads);
            w.u64(*rounds);
            w.f64(*alpha);
            w.u64(*seed);
        }
        AlgoSpec::Clugp {
            splitting,
            migration,
            max_vertices,
        } => {
            w.u8(6);
            w.bool(*splitting);
            w.u8(*migration);
            w.u64(*max_vertices);
        }
    }
    match &s.input {
        InputSpec::Inline { edges } => {
            w.u8(0);
            put_edges(w, edges);
        }
        InputSpec::Pack {
            path,
            block_start,
            block_end,
            edges,
        } => {
            w.u8(1);
            w.str(path);
            w.u64(*block_start);
            w.u64(*block_end);
            w.u64(*edges);
        }
    }
    w.u64(s.tables.len() as u64);
    for t in &s.tables {
        put_layout(w, t.layout);
        w.u32(t.width);
    }
    w.bool(s.trace);
}

fn get_setup(r: &mut Rd<'_>) -> Result<WorkerSetup> {
    let worker = r.u32()?;
    let workers = r.u32()?;
    let k = r.u32()?;
    let chunk = r.u32()?;
    let heartbeat_ms = r.u32()?;
    let algo = match r.u8()? {
        0 => AlgoSpec::Hashing { seed: r.u64()? },
        1 => AlgoSpec::Grid { seed: r.u64()? },
        2 => AlgoSpec::Dbh {
            seed: r.u64()?,
            max_vertices: r.u64()?,
        },
        3 => AlgoSpec::Greedy {
            max_vertices: r.u64()?,
        },
        4 => AlgoSpec::Hdrf {
            lambda: r.f64()?,
            epsilon: r.f64()?,
            max_vertices: r.u64()?,
        },
        5 => AlgoSpec::Mint {
            batch: r.u64()?,
            wave: r.u64()?,
            threads: r.u64()?,
            rounds: r.u64()?,
            alpha: r.f64()?,
            seed: r.u64()?,
        },
        6 => AlgoSpec::Clugp {
            splitting: r.bool()?,
            migration: r.u8()?,
            max_vertices: r.u64()?,
        },
        _ => return Err(bad("algo tag")),
    };
    let input = match r.u8()? {
        0 => InputSpec::Inline {
            edges: get_edges(r)?,
        },
        1 => InputSpec::Pack {
            path: r.str()?,
            block_start: r.u64()?,
            block_end: r.u64()?,
            edges: r.u64()?,
        },
        _ => return Err(bad("input tag")),
    };
    let n_tables = r.len(9)?;
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let layout = get_layout(r)?;
        tables.push(TableDef {
            layout,
            width: r.u32()?,
        });
    }
    let trace = r.bool()?;
    Ok(WorkerSetup {
        worker,
        workers,
        k,
        chunk,
        heartbeat_ms,
        algo,
        input,
        tables,
        trace,
    })
}

fn put_trace_events(w: &mut Wr, now_us: u64, dropped: u64, events: &[Event]) {
    w.vu64(now_us);
    w.vu64(dropped);
    // Per-frame name table: each distinct name shipped once, in
    // first-seen order; events refer to names by index. A worker emits a
    // handful of distinct names per stage, so linear lookup beats a map.
    let mut names: Vec<&str> = Vec::new();
    for e in events {
        if !names.contains(&e.name.as_str()) {
            names.push(&e.name);
        }
    }
    w.vu64(names.len() as u64);
    for name in &names {
        w.str(name);
    }
    w.vu64(events.len() as u64);
    for e in events {
        let idx = names.iter().position(|n| *n == e.name).unwrap();
        w.vu64(idx as u64);
        w.u8(e.kind.tag());
        w.vu64(e.ts_us);
        w.vu64(e.dur_us);
        w.vu64(e.arg);
    }
}

fn get_trace_events(r: &mut Rd<'_>) -> Result<(u64, u64, Vec<Event>)> {
    let now_us = r.vu64()?;
    let dropped = r.vu64()?;
    let n_names = r.vu64()?;
    if n_names > 4096 {
        return Err(bad("trace name count"));
    }
    let mut names = Vec::with_capacity(n_names as usize);
    for _ in 0..n_names {
        names.push(r.str()?);
    }
    let n_events = r.vu64()?;
    if n_events > clugp_obs::EVENT_CAP as u64 {
        return Err(bad("trace event count"));
    }
    // No capacity from the untrusted count: a lying count runs out of
    // frame bytes long before it runs out of memory.
    let mut events = Vec::new();
    for _ in 0..n_events {
        let idx = r.vu64()? as usize;
        let name = names.get(idx).ok_or_else(|| bad("trace name index"))?;
        let kind = EventKind::from_tag(r.u8()?).ok_or_else(|| bad("trace event kind"))?;
        events.push(Event {
            name: name.clone(),
            kind,
            ts_us: r.vu64()?,
            dur_us: r.vu64()?,
            arg: r.vu64()?,
        });
    }
    Ok((now_us, dropped, events))
}

fn put_batch_ops(w: &mut Wr, ops: &[BatchOp]) {
    w.vu64(ops.len() as u64);
    for op in ops {
        match op {
            BatchOp::Get { table } => {
                w.u8(0);
                w.u8(*table);
            }
            BatchOp::Put { table, merge, vals } => {
                w.u8(1);
                w.u8(*table);
                w.u8(merge.tag());
                w.vu64s(vals);
            }
        }
    }
}

fn get_batch_ops(r: &mut Rd<'_>) -> Result<Vec<BatchOp>> {
    let n = r.vu64()?;
    if n > 512 {
        // A batch touches at most a handful of tables; a larger count can
        // only be a corrupt frame.
        return Err(bad("batch op count"));
    }
    let mut ops = Vec::with_capacity(n as usize);
    for _ in 0..n {
        ops.push(match r.u8()? {
            0 => BatchOp::Get { table: r.u8()? },
            1 => {
                let table = r.u8()?;
                let merge = MergeOp::from_tag(r.u8()?).ok_or_else(|| bad("merge op"))?;
                BatchOp::Put {
                    table,
                    merge,
                    vals: r.vu64s()?,
                }
            }
            _ => return Err(bad("batch op tag")),
        });
    }
    Ok(ops)
}

fn put_epoch_tables(w: &mut Wr, tables: &[EpochTable]) {
    w.vu64(tables.len() as u64);
    for t in tables {
        w.u8(t.table);
        w.u8(t.merge.tag());
        w.delta_u64s(&t.keys);
        w.vu64s(&t.rows);
    }
}

fn get_epoch_tables(r: &mut Rd<'_>) -> Result<Vec<EpochTable>> {
    let n = r.vu64()?;
    if n > 512 {
        return Err(bad("epoch table count"));
    }
    let mut tables = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let table = r.u8()?;
        let merge = MergeOp::from_tag(r.u8()?).ok_or_else(|| bad("merge op"))?;
        tables.push(EpochTable {
            table,
            merge,
            keys: r.delta_u64s()?,
            rows: r.vu64s()?,
        });
    }
    Ok(tables)
}

fn put_pairs(w: &mut Wr, p: &PairsPayload) {
    w.u64(p.intra.len() as u64);
    for &(c, n) in &p.intra {
        w.u64(c);
        w.u64(n);
    }
    w.u64(p.agg.len() as u64);
    for &(key, weight) in &p.agg {
        w.u64(key);
        w.u32(weight);
    }
}

fn get_pairs(r: &mut Rd<'_>) -> Result<PairsPayload> {
    let n = r.len(16)?;
    let mut intra = Vec::with_capacity(n);
    for _ in 0..n {
        let c = r.u64()?;
        let cnt = r.u64()?;
        intra.push((c, cnt));
    }
    let n = r.len(12)?;
    let mut agg = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.u64()?;
        let weight = r.u32()?;
        agg.push((key, weight));
    }
    Ok(PairsPayload { intra, agg })
}

impl Msg {
    /// The message's wire name, for protocol-error reporting.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Hello { .. } => "Hello",
            Msg::Configure(_) => "Configure",
            Msg::ConfigureOk => "ConfigureOk",
            Msg::RunStage { .. } => "RunStage",
            Msg::StageDone { .. } => "StageDone",
            Msg::StateReq { .. } => "StateReq",
            Msg::StateResp { .. } => "StateResp",
            Msg::Route { .. } => "Route",
            Msg::Scan { .. } => "Scan",
            Msg::ScanResp { .. } => "ScanResp",
            Msg::Shutdown => "Shutdown",
            Msg::Err { .. } => "Err",
            Msg::Heartbeat => "Heartbeat",
            Msg::ResetTables => "ResetTables",
            Msg::ResetOk => "ResetOk",
            Msg::RouteBatch { .. } => "RouteBatch",
            Msg::StateReqBatch { .. } => "StateReqBatch",
            Msg::StateRespBatch { .. } => "StateRespBatch",
            Msg::RouteReply { .. } => "RouteReply",
            Msg::EpochDone { .. } => "EpochDone",
            Msg::EpochSync { .. } => "EpochSync",
            Msg::Pass1Frontier { .. } => "Pass1Frontier",
            Msg::TableCast { .. } => "TableCast",
            Msg::TraceEvents { .. } => "TraceEvents",
        }
    }

    /// The wire name of tag byte `tag` (the [`NetStats`] per-verb
    /// histogram slot), or `"unknown"` for out-of-protocol tags.
    ///
    /// [`NetStats`]: super::transport::NetStats
    pub fn verb_name(tag: usize) -> &'static str {
        const NAMES: [&str; 24] = [
            "Hello",
            "Configure",
            "ConfigureOk",
            "RunStage",
            "StageDone",
            "StateReq",
            "StateResp",
            "Route",
            "Scan",
            "ScanResp",
            "Shutdown",
            "Err",
            "Heartbeat",
            "ResetTables",
            "ResetOk",
            "RouteBatch",
            "StateReqBatch",
            "StateRespBatch",
            "RouteReply",
            "EpochDone",
            "EpochSync",
            "Pass1Frontier",
            "TableCast",
            "TraceEvents",
        ];
        NAMES.get(tag).copied().unwrap_or("unknown")
    }

    /// Encodes the message as one transport frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Wr::new();
        self.put(&mut w);
        w.into_bytes()
    }

    /// Encodes into `buf`, reusing its allocation (per-link scratch on
    /// the relay hot path).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = Wr::from_vec(std::mem::take(buf));
        self.put(&mut w);
        *buf = w.into_bytes();
    }

    fn put(&self, w: &mut Wr) {
        match self {
            Msg::Hello { worker } => {
                w.u8(0);
                w.u32(*worker);
            }
            Msg::Configure(setup) => {
                w.u8(1);
                put_setup(w, setup);
            }
            Msg::ConfigureOk => w.u8(2),
            Msg::RunStage {
                stage,
                token,
                mode,
                epoch,
            } => {
                w.u8(3);
                put_stage(w, *stage);
                put_token(w, token);
                w.u8(mode.tag());
                w.u32(*epoch);
            }
            Msg::StageDone {
                token,
                assignments,
                pairs,
            } => {
                w.u8(4);
                put_token(w, token);
                w.u32s(assignments);
                match pairs {
                    Some(p) => {
                        w.bool(true);
                        put_pairs(w, p);
                    }
                    None => w.bool(false),
                }
            }
            Msg::StateReq { table, op } => {
                w.u8(5);
                w.u8(*table);
                put_op(w, op);
            }
            Msg::StateResp { rows } => {
                w.u8(6);
                w.u64s(rows);
            }
            Msg::Route { to, table, op } => {
                w.u8(7);
                w.u32(*to);
                w.u8(*table);
                put_op(w, op);
            }
            Msg::Scan { table } => {
                w.u8(8);
                w.u8(*table);
            }
            Msg::ScanResp { keys, rows } => {
                w.u8(9);
                w.u64s(keys);
                w.u64s(rows);
            }
            Msg::Shutdown => w.u8(10),
            Msg::Err { msg } => {
                w.u8(11);
                w.str(msg);
            }
            Msg::Heartbeat => w.u8(12),
            Msg::ResetTables => w.u8(13),
            Msg::ResetOk => w.u8(14),
            Msg::RouteBatch { to, keys, ops } => {
                w.u8(15);
                w.u32(*to);
                w.delta_u64s(keys);
                put_batch_ops(w, ops);
            }
            Msg::StateReqBatch { keys, ops } => {
                w.u8(16);
                w.delta_u64s(keys);
                put_batch_ops(w, ops);
            }
            Msg::StateRespBatch { rows } => {
                w.u8(17);
                w.vu64s(rows);
            }
            Msg::RouteReply { rows } => {
                w.u8(18);
                w.vu64s(rows);
            }
            Msg::EpochDone {
                last,
                loads,
                tables,
            } => {
                w.u8(19);
                w.bool(*last);
                w.vu64s(loads);
                put_epoch_tables(w, tables);
            }
            Msg::EpochSync {
                done,
                loads,
                tables,
            } => {
                w.u8(20);
                w.bool(*done);
                w.vu64s(loads);
                put_epoch_tables(w, tables);
            }
            Msg::Pass1Frontier { keys, rows, vol } => {
                w.u8(21);
                w.delta_u64s(keys);
                w.vu64s(rows);
                w.vu64s(vol);
            }
            Msg::TableCast { table, keys, rows } => {
                w.u8(22);
                w.u8(*table);
                w.delta_u64s(keys);
                w.vu64s(rows);
            }
            Msg::TraceEvents {
                now_us,
                dropped,
                events,
            } => {
                w.u8(23);
                put_trace_events(w, *now_us, *dropped, events);
            }
        }
    }

    /// Decodes one frame.
    pub fn decode(buf: &[u8]) -> Result<Msg> {
        let mut r = Rd::new(buf);
        let msg = match r.u8()? {
            0 => Msg::Hello { worker: r.u32()? },
            1 => Msg::Configure(Box::new(get_setup(&mut r)?)),
            2 => Msg::ConfigureOk,
            3 => {
                let stage = get_stage(&mut r)?;
                let token = get_token(&mut r)?;
                let mode = AmpcMode::from_tag(r.u8()?).ok_or_else(|| bad("mode tag"))?;
                Msg::RunStage {
                    stage,
                    token,
                    mode,
                    epoch: r.u32()?,
                }
            }
            4 => {
                let token = get_token(&mut r)?;
                let assignments = r.u32s()?;
                let pairs = if r.bool()? {
                    Some(get_pairs(&mut r)?)
                } else {
                    None
                };
                Msg::StageDone {
                    token,
                    assignments,
                    pairs,
                }
            }
            5 => Msg::StateReq {
                table: r.u8()?,
                op: get_op(&mut r)?,
            },
            6 => Msg::StateResp { rows: r.u64s()? },
            7 => Msg::Route {
                to: r.u32()?,
                table: r.u8()?,
                op: get_op(&mut r)?,
            },
            8 => Msg::Scan { table: r.u8()? },
            9 => Msg::ScanResp {
                keys: r.u64s()?,
                rows: r.u64s()?,
            },
            10 => Msg::Shutdown,
            11 => Msg::Err { msg: r.str()? },
            12 => Msg::Heartbeat,
            13 => Msg::ResetTables,
            14 => Msg::ResetOk,
            15 => Msg::RouteBatch {
                to: r.u32()?,
                keys: r.delta_u64s()?,
                ops: get_batch_ops(&mut r)?,
            },
            16 => Msg::StateReqBatch {
                keys: r.delta_u64s()?,
                ops: get_batch_ops(&mut r)?,
            },
            17 => Msg::StateRespBatch { rows: r.vu64s()? },
            18 => Msg::RouteReply { rows: r.vu64s()? },
            19 => Msg::EpochDone {
                last: r.bool()?,
                loads: r.vu64s()?,
                tables: get_epoch_tables(&mut r)?,
            },
            20 => Msg::EpochSync {
                done: r.bool()?,
                loads: r.vu64s()?,
                tables: get_epoch_tables(&mut r)?,
            },
            21 => Msg::Pass1Frontier {
                keys: r.delta_u64s()?,
                rows: r.vu64s()?,
                vol: r.vu64s()?,
            },
            22 => Msg::TableCast {
                table: r.u8()?,
                keys: r.delta_u64s()?,
                rows: r.vu64s()?,
            },
            23 => {
                let (now_us, dropped, events) = get_trace_events(&mut r)?;
                Msg::TraceEvents {
                    now_us,
                    dropped,
                    events,
                }
            }
            _ => return Err(bad("message tag")),
        };
        if !r.done() {
            return Err(bad("trailing bytes"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Msg) {
        let bytes = msg.encode();
        assert_eq!(Msg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn all_messages_round_trip() {
        round_trip(Msg::Hello { worker: 3 });
        round_trip(Msg::Configure(Box::new(WorkerSetup {
            worker: 1,
            workers: 4,
            k: 8,
            chunk: 4096,
            heartbeat_ms: 250,
            algo: AlgoSpec::Hdrf {
                lambda: 1.0,
                epsilon: 1.5,
                max_vertices: 1 << 20,
            },
            input: InputSpec::Inline {
                edges: vec![Edge::new(0, 1), Edge::new(2, 2)],
            },
            tables: vec![
                TableDef {
                    layout: Layout::Range { span: 100 },
                    width: 2,
                },
                TableDef {
                    layout: Layout::Striped { stripe: 512 },
                    width: 1,
                },
            ],
            trace: true,
        })));
        round_trip(Msg::ConfigureOk);
        round_trip(Msg::RunStage {
            stage: Stage::ClugpPass1 { vmax: 77 },
            token: Token {
                loads: vec![1, 2, 3],
                cursor: 1,
                next_raw: 9,
                splits: 2,
                migrations: 5,
                reroutes: 0,
                table_len: 44,
                carry: vec![Edge::new(7, 9)],
            },
            mode: AmpcMode::Relaxed,
            epoch: 16,
        });
        round_trip(Msg::StageDone {
            token: Token::default(),
            assignments: vec![0, 1, 0, 2],
            pairs: Some(PairsPayload {
                intra: vec![(0, 3), (5, 1)],
                agg: vec![(1 << 32 | 2, 4)],
            }),
        });
        round_trip(Msg::StateReq {
            table: 0,
            op: StateOp::Get { keys: vec![5, 6] },
        });
        round_trip(Msg::StateResp { rows: vec![1, 0] });
        round_trip(Msg::Route {
            to: 2,
            table: 1,
            op: StateOp::Upsert {
                merge: MergeOp::Add,
                keys: vec![8],
                rows: vec![3],
            },
        });
        round_trip(Msg::Scan { table: 2 });
        round_trip(Msg::ScanResp {
            keys: vec![0, 4],
            rows: vec![7, 8],
        });
        round_trip(Msg::Shutdown);
        round_trip(Msg::Err { msg: "boom".into() });
        round_trip(Msg::Heartbeat);
        round_trip(Msg::ResetTables);
        round_trip(Msg::ResetOk);
    }

    #[test]
    fn batched_relay_messages_round_trip() {
        let ops = vec![
            BatchOp::Get { table: 0 },
            BatchOp::Get { table: 1 },
            BatchOp::Put {
                table: 0,
                merge: MergeOp::Put,
                vals: vec![3, 0, u64::MAX, 17],
            },
        ];
        round_trip(Msg::RouteBatch {
            to: 2,
            keys: vec![4, 9, 10, 4000],
            ops: ops.clone(),
        });
        round_trip(Msg::StateReqBatch {
            keys: vec![0, 1],
            ops,
        });
        round_trip(Msg::StateRespBatch {
            rows: vec![1, 2, 3],
        });
        round_trip(Msg::RouteReply { rows: Vec::new() });
    }

    #[test]
    fn relaxed_mode_messages_round_trip() {
        let tables = vec![
            EpochTable {
                table: 1,
                merge: MergeOp::Add,
                keys: vec![2, 5, 6],
                rows: vec![1, 1, 4],
            },
            EpochTable {
                table: 0,
                merge: MergeOp::BitOr,
                keys: vec![9],
                rows: vec![0b1010],
            },
        ];
        round_trip(Msg::EpochDone {
            last: false,
            loads: vec![1, 0, 7],
            tables: tables.clone(),
        });
        round_trip(Msg::EpochSync {
            done: true,
            loads: vec![9, 9, 9],
            tables,
        });
        round_trip(Msg::Pass1Frontier {
            keys: vec![0, 3, 4],
            rows: vec![1, 2, 0, 0, 1, 1, 2, 4, 0],
            vol: vec![6, 4],
        });
        round_trip(Msg::TableCast {
            table: 2,
            keys: vec![0, 1, 2],
            rows: vec![3, 1, 0],
        });
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_the_buffer() {
        let msg = Msg::RouteBatch {
            to: 1,
            keys: vec![10, 11, 12],
            ops: vec![BatchOp::Get { table: 0 }],
        };
        let mut buf = Msg::Heartbeat.encode();
        msg.encode_into(&mut buf);
        assert_eq!(buf, msg.encode());
        // A second encode into the same scratch must not accumulate.
        msg.encode_into(&mut buf);
        assert_eq!(buf, msg.encode());
    }

    #[test]
    fn verb_names_cover_every_tag() {
        for tag in 0..24usize {
            assert_ne!(Msg::verb_name(tag), "unknown", "tag {tag}");
        }
        assert_eq!(Msg::verb_name(24), "unknown");
        assert_eq!(Msg::verb_name(7), "Route");
        assert_eq!(Msg::verb_name(15), "RouteBatch");
        assert_eq!(Msg::verb_name(23), "TraceEvents");
    }

    #[test]
    fn pack_input_round_trips() {
        round_trip(Msg::Configure(Box::new(WorkerSetup {
            worker: 0,
            workers: 2,
            k: 4,
            chunk: 1024,
            heartbeat_ms: 0,
            algo: AlgoSpec::Clugp {
                splitting: true,
                migration: 0,
                max_vertices: 1 << 30,
            },
            input: InputSpec::Pack {
                path: "/tmp/g.clugpz".into(),
                block_start: 3,
                block_end: 9,
                edges: 5000,
            },
            tables: Vec::new(),
            trace: false,
        })));
    }

    #[test]
    fn rejects_unknown_tag() {
        assert!(Msg::decode(&[250]).is_err());
        assert!(Msg::decode(&[]).is_err());
    }

    #[test]
    fn trace_events_round_trip() {
        round_trip(Msg::TraceEvents {
            now_us: 0,
            dropped: 0,
            events: Vec::new(),
        });
        // Repeated names exercise the per-frame name table.
        round_trip(Msg::TraceEvents {
            now_us: 123_456_789,
            dropped: 7,
            events: vec![
                Event {
                    name: "chunk".into(),
                    kind: EventKind::Span,
                    ts_us: 1_000,
                    dur_us: 250,
                    arg: 4096,
                },
                Event {
                    name: "route_batch".into(),
                    kind: EventKind::Span,
                    ts_us: 1_100,
                    dur_us: 40,
                    arg: 128,
                },
                Event {
                    name: "chunk".into(),
                    kind: EventKind::Span,
                    ts_us: 1_300,
                    dur_us: u64::MAX,
                    arg: 0,
                },
                Event {
                    name: "decode_stall".into(),
                    kind: EventKind::Instant,
                    ts_us: 1_350,
                    dur_us: 0,
                    arg: 999,
                },
            ],
        });
    }

    #[test]
    fn trace_events_rejects_bad_frames() {
        let good = Msg::TraceEvents {
            now_us: 5,
            dropped: 0,
            events: vec![Event {
                name: "x".into(),
                kind: EventKind::Span,
                ts_us: 1,
                dur_us: 2,
                arg: 3,
            }],
        }
        .encode();
        // Truncation anywhere inside the frame must error, never panic.
        for cut in 1..good.len() {
            assert!(Msg::decode(&good[..cut]).is_err(), "cut {cut}");
        }
    }
}
