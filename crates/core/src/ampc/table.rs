//! Keyspace-sharded state tables.
//!
//! A distributed run replaces the monolith's private `VertexTable`s /
//! `ReplicaTable` with named tables whose rows (fixed-width `u64` words)
//! are spread across workers. Each worker holds one [`StateShard`] per
//! table; a [`Layout`] maps every key to its owning worker. Rows default
//! to all-zero words, so tables encode "absent" as zero (e.g. the CLUGP
//! vertex table stores `cluster + 1` in word 0).

use crate::vertex_table::VertexTable;
use rustc_hash::FxHashMap;

/// Default stripe length for [`Layout::Striped`] tables.
pub const DEFAULT_STRIPE: u64 = 512;

/// How a table's key space maps onto `workers` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Contiguous dense ranges: worker `w` owns `[w*span, (w+1)*span)`,
    /// with the last worker open-ended so keys past the vertex-count hint
    /// still have an owner.
    Range {
        /// Keys per shard (`ceil(max(hint,1)/workers)`).
        span: u64,
    },
    /// Interleaved stripes of `stripe` consecutive keys, round-robin over
    /// workers. Used for tables keyed by allocation order (cluster ids),
    /// where a dense range split would put all growth on the last worker.
    Striped {
        /// Stripe length in keys.
        stripe: u64,
    },
}

impl Layout {
    /// Range layout sized so `workers` shards cover `hint` keys.
    pub fn range_for(hint: u64, workers: u32) -> Layout {
        let span = hint.max(1).div_ceil(u64::from(workers.max(1))).max(1);
        Layout::Range { span }
    }

    /// The worker that owns `key`.
    pub fn owner(&self, key: u64, workers: u32) -> u32 {
        let w = u64::from(workers.max(1));
        match *self {
            Layout::Range { span } => ((key / span.max(1)).min(w - 1)) as u32,
            Layout::Striped { stripe } => ((key / stripe.max(1)) % w) as u32,
        }
    }

    /// The first key of the shard `worker` owns under a range layout
    /// (striped shards have no single base and return 0).
    pub fn base(&self, worker: u32) -> u64 {
        match *self {
            Layout::Range { span } => u64::from(worker) * span,
            Layout::Striped { .. } => 0,
        }
    }
}

/// How an upsert combines an incoming row with the stored row, word by
/// word. `Add`, `Max`, and `BitOr` are commutative and associative, so
/// batches carrying only those ops may be applied in any order without
/// changing the final table — the property the distributed equivalence
/// proptest pins down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// Overwrite the row.
    Put,
    /// Wrapping per-word addition.
    Add,
    /// Per-word maximum.
    Max,
    /// Per-word bitwise OR.
    BitOr,
}

impl MergeOp {
    /// Wire tag for this op.
    pub fn tag(self) -> u8 {
        match self {
            MergeOp::Put => 0,
            MergeOp::Add => 1,
            MergeOp::Max => 2,
            MergeOp::BitOr => 3,
        }
    }

    /// Decodes a wire tag; `None` for unknown tags.
    pub fn from_tag(t: u8) -> Option<MergeOp> {
        Some(match t {
            0 => MergeOp::Put,
            1 => MergeOp::Add,
            2 => MergeOp::Max,
            3 => MergeOp::BitOr,
            _ => return None,
        })
    }

    pub(crate) fn apply(self, dst: &mut [u64], src: &[u64]) {
        match self {
            MergeOp::Put => dst.copy_from_slice(src),
            MergeOp::Add => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = d.wrapping_add(*s);
                }
            }
            MergeOp::Max => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = (*d).max(*s);
                }
            }
            MergeOp::BitOr => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d |= *s;
                }
            }
        }
    }
}

/// One worker's slice of a sharded table: fixed-width rows of `u64`
/// words, keyed by the global key. Range shards store rows densely in a
/// [`VertexTable`] offset by the shard base; striped shards use a hash
/// map because their key set is interleaved.
#[derive(Debug)]
pub struct StateShard {
    width: usize,
    store: Store,
}

#[derive(Debug)]
enum Store {
    Range { lo: u64, rows: VertexTable<u64> },
    Striped { rows: FxHashMap<u64, Vec<u64>> },
}

impl StateShard {
    /// Dense shard owning keys `>= lo`, `width` words per row.
    pub fn range(lo: u64, width: usize) -> StateShard {
        StateShard {
            width: width.max(1),
            store: Store::Range {
                lo,
                rows: VertexTable::new(0, 0).expect("zero-hint table always fits"),
            },
        }
    }

    /// Sparse shard for interleaved stripes, `width` words per row.
    pub fn striped(width: usize) -> StateShard {
        StateShard {
            width: width.max(1),
            store: Store::Striped {
                rows: FxHashMap::default(),
            },
        }
    }

    /// Words per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Reads `key`'s row into `out` (appending `width` words); absent rows
    /// read as zeros.
    pub fn get_into(&self, key: u64, out: &mut Vec<u64>) {
        match &self.store {
            Store::Range { lo, rows } => {
                let start = (key - lo) * self.width as u64;
                let end = start + self.width as u64;
                if end <= rows.len() {
                    let s = start as usize;
                    out.extend_from_slice(&rows.as_slice()[s..s + self.width]);
                } else {
                    out.resize(out.len() + self.width, 0);
                }
            }
            Store::Striped { rows } => match rows.get(&key) {
                Some(row) => out.extend_from_slice(row),
                None => out.resize(out.len() + self.width, 0),
            },
        }
    }

    /// Merges one row into the shard.
    pub fn upsert(&mut self, key: u64, merge: MergeOp, vals: &[u64]) {
        let width = self.width;
        debug_assert_eq!(vals.len(), width);
        match &mut self.store {
            Store::Range { lo, rows } => {
                let start = (key - *lo) * width as u64;
                rows.ensure_len(start + width as u64)
                    .expect("shard row storage exceeds the vertex-table limit");
                let s = start as usize;
                merge.apply(&mut rows.as_mut_slice()[s..s + width], vals);
            }
            Store::Striped { rows } => {
                let row = rows.entry(key).or_insert_with(|| vec![0; width]);
                merge.apply(row, vals);
            }
        }
    }

    /// Merges a batch: `rows` is `keys.len()` rows of `width` words,
    /// flattened. This is the unit the wire protocol ships.
    pub fn upsert_batch(&mut self, merge: MergeOp, keys: &[u64], rows: &[u64]) {
        debug_assert_eq!(rows.len(), keys.len() * self.width);
        for (i, &key) in keys.iter().enumerate() {
            self.upsert(key, merge, &rows[i * self.width..(i + 1) * self.width]);
        }
    }

    /// Visits every stored row in ascending key order.
    pub fn scan(&self, mut f: impl FnMut(u64, &[u64])) {
        match &self.store {
            Store::Range { lo, rows } => {
                let n = (rows.len() / self.width as u64) as usize;
                let flat = rows.as_slice();
                for r in 0..n {
                    f(lo + r as u64, &flat[r * self.width..(r + 1) * self.width]);
                }
            }
            Store::Striped { rows } => {
                let mut keys: Vec<u64> = rows.keys().copied().collect();
                keys.sort_unstable();
                for key in keys {
                    f(key, &rows[&key]);
                }
            }
        }
    }

    /// Number of stored rows.
    pub fn rows(&self) -> u64 {
        match &self.store {
            Store::Range { rows, .. } => rows.len() / self.width as u64,
            Store::Striped { rows } => rows.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_owner_covers_tail() {
        let l = Layout::range_for(10, 4);
        assert_eq!(l, Layout::Range { span: 3 });
        assert_eq!(l.owner(0, 4), 0);
        assert_eq!(l.owner(9, 4), 3);
        // Keys past the hint still route to the last shard.
        assert_eq!(l.owner(1_000_000, 4), 3);
    }

    #[test]
    fn striped_owner_interleaves() {
        let l = Layout::Striped { stripe: 4 };
        assert_eq!(l.owner(0, 2), 0);
        assert_eq!(l.owner(3, 2), 0);
        assert_eq!(l.owner(4, 2), 1);
        assert_eq!(l.owner(8, 2), 0);
    }

    #[test]
    fn absent_rows_read_as_zero() {
        let shard = StateShard::range(100, 2);
        let mut out = Vec::new();
        shard.get_into(105, &mut out);
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn upsert_merges_per_word() {
        let mut s = StateShard::striped(2);
        s.upsert(7, MergeOp::Add, &[3, 1]);
        s.upsert(7, MergeOp::Add, &[4, 0]);
        s.upsert(7, MergeOp::Max, &[5, 9]);
        s.upsert(7, MergeOp::BitOr, &[0b1000, 0]);
        let mut out = Vec::new();
        s.get_into(7, &mut out);
        assert_eq!(out, vec![7 | 0b1000, 9]);
    }

    #[test]
    fn scan_is_ascending_for_both_stores() {
        let mut r = StateShard::range(10, 1);
        r.upsert(12, MergeOp::Put, &[2]);
        r.upsert(10, MergeOp::Put, &[1]);
        let mut seen = Vec::new();
        r.scan(|k, row| seen.push((k, row[0])));
        assert_eq!(seen, vec![(10, 1), (11, 0), (12, 2)]);

        let mut s = StateShard::striped(1);
        s.upsert(40, MergeOp::Put, &[4]);
        s.upsert(8, MergeOp::Put, &[1]);
        let mut seen = Vec::new();
        s.scan(|k, row| seen.push((k, row[0])));
        assert_eq!(seen, vec![(8, 1), (40, 4)]);
    }
}
